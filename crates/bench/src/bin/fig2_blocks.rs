//! Figure 2 — distribution of ungapped alignment block sizes in the
//! top-10 chains, close vs distant species pair.
//!
//! The paper plots, for human–chimp (close) and human–mouse (distant)
//! LASTZ alignments, the distribution of gap-free block lengths before an
//! indel interrupts the alignment: ~641 bp mean for chimp, ~31 bp for
//! mouse. Everything left of the 30-bp line is invisible to ungapped
//! filtering. We regenerate the figure with synthetic pairs at a
//! chimp-like and a mouse-like distance.
//!
//! Run with: `cargo run --release -p wga-bench --bin fig2_blocks`

use chain::metrics::BlockLengthHistogram;
use wga_bench::{pair_at_distance, run_and_measure};
use wga_core::config::WgaParams;

fn histogram_for(distance: f64, label: &str, len: usize, seed: u64) -> BlockLengthHistogram {
    // Indel-free block structure is a property of the *true* alignment;
    // we measure it from the most sensitive pipeline's top-10 chains, as
    // the paper measures it from LASTZ's.
    let pair = pair_at_distance(distance, len, seed);
    let m = run_and_measure(WgaParams::darwin_wga(), &pair);
    let alignments = m.report.forward_alignments();
    let hist = BlockLengthHistogram::from_chains(&m.chains, &alignments, 10);
    println!(
        "{label}: distance {distance} → mean ungapped block {:.0} bp over {} blocks",
        hist.mean_length(),
        hist.total_blocks()
    );
    hist
}

fn main() {
    println!("Figure 2 — ungapped block length distribution (top-10 chains)\n");
    let close = histogram_for(0.04, "chimp-like (close)  ", 120_000, 21);
    let distant = histogram_for(0.45, "mouse-like (distant)", 120_000, 22);

    println!("\n{:>12} | {:>12} {:>12}", "block length", "close", "distant");
    let bins = close.bins().len().max(distant.bins().len());
    for b in 0..bins {
        let lo = 1u64 << b;
        let hi = (1u64 << (b + 1)) - 1;
        let c = close.bins().get(b).copied().unwrap_or(0);
        let d = distant.bins().get(b).copied().unwrap_or(0);
        let cf = c as f64 / close.total_blocks().max(1) as f64;
        let df = d as f64 / distant.total_blocks().max(1) as f64;
        let marker = if lo <= 30 && hi >= 30 { "  <-- 30 bp (red line)" } else { "" };
        println!(
            "{:>5}-{:<6} | {:>5.1}% {:<12} {:>5.1}% {:<12}{}",
            lo,
            hi,
            cf * 100.0,
            "*".repeat((cf * 40.0) as usize),
            df * 100.0,
            "*".repeat((df * 40.0) as usize),
            marker
        );
    }

    println!(
        "\nFraction of blocks below the 30-bp ungapped-filter line (LASTZ default):"
    );
    println!("  close pair:   {:>5.1}%", close.fraction_below(30) * 100.0);
    println!("  distant pair: {:>5.1}%", distant.fraction_below(30) * 100.0);
    println!("\nShape check: for the distant pair, a substantial fraction of all");
    println!("matching sequence sits in blocks the ungapped filter cannot see (§I).");
}
