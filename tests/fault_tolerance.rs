//! Fault-tolerance integration tests: checkpoint/resume equivalence,
//! budget degradation, and typed errors through the assembly driver.

use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::genome_pipeline::{align_assemblies_with, AlignOptions};
use darwin_wga::core::report::RunOutcome;
use darwin_wga::core::{config::WgaParams, WgaError};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn two_chrom_assemblies() -> (Assembly, Assembly) {
    let mut rng = StdRng::seed_from_u64(77);
    let p1 = SyntheticPair::generate(9_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let p2 = SyntheticPair::generate(7_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let mut target = Assembly::new("t");
    target.push("chrI", p1.target.sequence.clone());
    target.push("chrII", p2.target.sequence.clone());
    let mut query = Assembly::new("q");
    query.push("chr1", p1.query.sequence.clone());
    query.push("chr2", p2.query.sequence.clone());
    (target, query)
}

fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "wga-fault-{}-{}.jsonl",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// The acceptance test for checkpoint/resume: a run interrupted after k
/// completed pairs, then resumed, must produce a final report that is
/// byte-identical (excluding wall-clock timings) to an uninterrupted run.
#[test]
fn kill_after_k_pairs_then_resume_is_equivalent() {
    let (target, query) = two_chrom_assemblies();
    let params = WgaParams::darwin_wga();
    let opts_plain = AlignOptions {
        threads: 2,
        ..AlignOptions::default()
    };
    let uninterrupted = align_assemblies_with(&params, &target, &query, &opts_plain).unwrap();
    assert_eq!(uninterrupted.pairs.len(), 4);

    // Full checkpointed run, then simulate a kill by truncating the
    // journal back to the header + the first k=2 completed pairs, with a
    // torn partial record at the tail (the crash-mid-append signature).
    let path = journal_path("kill-resume");
    let opts_ckpt = AlignOptions {
        threads: 2,
        checkpoint: Some(path.clone()),
        ..AlignOptions::default()
    };
    let full = align_assemblies_with(&params, &target, &query, &opts_ckpt).unwrap();
    assert_eq!(full.resumed_pairs, 0);
    assert_eq!(full.canonical_text(), uninterrupted.canonical_text());

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 pair records");
    let truncated = format!(
        "{}\n{}\n{}\n{{\"target_chrom\":\"chr",
        lines[0], lines[1], lines[2]
    );
    std::fs::write(&path, truncated).unwrap();

    let resumed = align_assemblies_with(&params, &target, &query, &opts_ckpt).unwrap();
    assert_eq!(resumed.resumed_pairs, 2);
    assert_eq!(resumed.canonical_text(), uninterrupted.canonical_text());
    assert_eq!(resumed.workload, uninterrupted.workload);

    // After the resume the journal is whole again: a third run replays
    // every pair.
    let replayed = align_assemblies_with(&params, &target, &query, &opts_ckpt).unwrap();
    assert_eq!(replayed.resumed_pairs, 4);
    assert_eq!(replayed.canonical_text(), uninterrupted.canonical_text());
    let _ = std::fs::remove_file(&path);
}

/// Same kill/resume scenario driven by the streaming dataflow executor:
/// pairs are journalled as they drain from the extension pool, so a
/// truncated journal (header + 2 records + torn tail) must resume into
/// the same bytes an uninterrupted barrier run produces.
#[test]
fn dataflow_kill_after_k_pairs_then_resume_is_equivalent() {
    let (target, query) = two_chrom_assemblies();
    let params = WgaParams::darwin_wga();
    let uninterrupted =
        align_assemblies_with(&params, &target, &query, &AlignOptions::default()).unwrap();

    let path = journal_path("dataflow-kill-resume");
    let opts = AlignOptions {
        threads: 3,
        checkpoint: Some(path.clone()),
        executor: ExecutorKind::Dataflow,
        queue_depth: 2,
        ..AlignOptions::default()
    };
    let full = align_assemblies_with(&params, &target, &query, &opts).unwrap();
    assert_eq!(full.resumed_pairs, 0);
    assert_eq!(full.canonical_text(), uninterrupted.canonical_text());

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 pair records");
    let truncated = format!(
        "{}\n{}\n{}\n{{\"target_chrom\":\"chr",
        lines[0], lines[1], lines[2]
    );
    std::fs::write(&path, truncated).unwrap();

    let resumed = align_assemblies_with(&params, &target, &query, &opts).unwrap();
    assert_eq!(resumed.resumed_pairs, 2);
    assert_eq!(resumed.canonical_text(), uninterrupted.canonical_text());
    assert_eq!(resumed.workload, uninterrupted.workload);
    let _ = std::fs::remove_file(&path);
}

/// A single flipped byte inside an interior journal record (disk rot,
/// not a torn tail) must fail that record's CRC, be skipped with a
/// counted warning, and cause only the damaged pair to be re-run: the
/// resumed report is still byte-identical to an uninterrupted run.
#[test]
fn byte_flip_in_journal_interior_rerunds_only_that_pair() {
    let (target, query) = two_chrom_assemblies();
    let params = WgaParams::darwin_wga();
    let uninterrupted =
        align_assemblies_with(&params, &target, &query, &AlignOptions::default()).unwrap();

    let path = journal_path("byte-flip");
    let opts = AlignOptions {
        threads: 2,
        checkpoint: Some(path.clone()),
        ..AlignOptions::default()
    };
    align_assemblies_with(&params, &target, &query, &opts).unwrap();

    // Flip one byte in the second pair record (an interior line, so this
    // is corruption, not a crash-torn tail). The payload stays valid
    // JSON; only the CRC can catch it.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 pair records");
    let flipped = lines[2].replacen("\"target_chrom\":\"chr", "\"target_chrom\":\"Chr", 1);
    assert_ne!(flipped, lines[2], "mutation must change the record");
    let corrupted = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        lines[0], lines[1], flipped, lines[3], lines[4]
    );
    std::fs::write(&path, corrupted).unwrap();

    let resumed = align_assemblies_with(&params, &target, &query, &opts).unwrap();
    assert_eq!(resumed.resumed_pairs, 3, "only the damaged pair re-runs");
    assert_eq!(resumed.canonical_text(), uninterrupted.canonical_text());
    let stats = resumed.journal_stats.expect("checkpointed run records stats");
    assert_eq!(stats.records_recovered, 3);
    assert_eq!(stats.corrupt_records_skipped, 1);
    assert!(!stats.torn_tail_dropped);
    let _ = std::fs::remove_file(&path);
}

/// A journal written under different parameters must be rejected, not
/// silently mixed into the new run.
#[test]
fn resume_with_different_params_is_rejected() {
    let (target, query) = two_chrom_assemblies();
    let path = journal_path("fingerprint");
    let opts = AlignOptions {
        threads: 1,
        checkpoint: Some(path.clone()),
        ..AlignOptions::default()
    };
    align_assemblies_with(&WgaParams::darwin_wga(), &target, &query, &opts).unwrap();
    let err =
        align_assemblies_with(&WgaParams::lastz_baseline(), &target, &query, &opts).unwrap_err();
    assert!(matches!(err, WgaError::Checkpoint { .. }), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// A repeat-dense pair under tight budgets completes with a Degraded
/// outcome and bounded work, instead of running unbounded or aborting.
#[test]
fn budget_capped_repeat_dense_pair_degrades_gracefully() {
    // A tandem-repeat sequence: every seed matches hundreds of diagonals,
    // the classic workload explosion budgets exist to contain.
    let motif = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC";
    let mut target = Assembly::new("t");
    target.push("chrR", motif.repeat(150).parse().unwrap());
    let mut query = Assembly::new("q");
    query.push("chrR", motif.repeat(150).parse().unwrap());

    let params = WgaParams::darwin_wga();
    let unbounded =
        align_assemblies_with(&params, &target, &query, &AlignOptions::default()).unwrap();
    assert_eq!(unbounded.degraded_pairs(), 0);
    assert!(unbounded.workload.filter_tiles > 50);

    let mut capped_params = params.clone();
    capped_params.budget.max_filter_tiles = Some(50);
    capped_params.budget.max_extension_cells =
        Some((unbounded.workload.extension_cells / 10).max(1));
    let capped =
        align_assemblies_with(&capped_params, &target, &query, &AlignOptions::default()).unwrap();

    assert_eq!(capped.pairs.len(), 1);
    assert!(
        matches!(capped.pairs[0].outcome, RunOutcome::Degraded { .. }),
        "{:?}",
        capped.pairs[0].outcome
    );
    assert!(capped.workload.filter_tiles <= 50, "{:?}", capped.workload);
    assert!(
        capped.workload.extension_cells < unbounded.workload.extension_cells,
        "capped {:?} vs unbounded {:?}",
        capped.workload,
        unbounded.workload
    );
    // Degraded, not failed: the pair still produced usable output.
    assert!(capped.pairs[0].outcome.has_results());
}

/// Budget-capped truncation is deterministic across thread counts: the
/// serial and parallel drivers share the same clamp/extend logic.
#[test]
fn budget_capped_runs_match_across_thread_counts() {
    let (target, query) = two_chrom_assemblies();
    let mut params = WgaParams::darwin_wga();
    params.budget.max_filter_tiles = Some(120);
    params.budget.max_seed_hits = Some(400);
    let serial = align_assemblies_with(
        &params,
        &target,
        &query,
        &AlignOptions {
            threads: 1,
            ..AlignOptions::default()
        },
    )
    .unwrap();
    let parallel = align_assemblies_with(
        &params,
        &target,
        &query,
        &AlignOptions {
            threads: 3,
            ..AlignOptions::default()
        },
    )
    .unwrap();
    assert_eq!(serial.canonical_text(), parallel.canonical_text());
}

#[test]
fn zero_threads_and_degenerate_params_are_typed_errors() {
    let (target, query) = two_chrom_assemblies();
    let err = align_assemblies_with(
        &WgaParams::darwin_wga(),
        &target,
        &query,
        &AlignOptions {
            threads: 0,
            ..AlignOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WgaError::Config(_)), "{err}");

    let mut params = WgaParams::darwin_wga();
    params.extension_threshold = -1;
    let err =
        align_assemblies_with(&params, &target, &query, &AlignOptions::default()).unwrap_err();
    assert!(matches!(err, WgaError::Config(_)), "{err}");
}
