//! Cycle model of the GACT-X extension array (§IV, Fig. 7).
//!
//! A GACT-X tile is processed in stripes of `Npe` rows; within a stripe
//! the computed column range follows the X-drop band, so cycles track the
//! number of live DP cells rather than the full tile area. After score
//! computation the traceback logic walks the stored pointers at one step
//! per cycle, and the sequences for the tile are fetched from DRAM.
//!
//! The model consumes the *measured* cell/row counts produced by the
//! software kernel ([`align::gactx::ExtensionStats`]), so hardware time
//! reflects the actual workload of the run being simulated.

use crate::systolic::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Per-tile traceback SRAM provisioned in hardware (Table IV: 16 KB per
/// PE; 64 PEs × 16 KB = 1 MB per array).
pub const TRACEBACK_BYTES_PER_PE: u64 = 16 * 1024;

/// A bank of GACT-X extension arrays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GactXBank {
    /// Per-array configuration.
    pub array: ArrayConfig,
    /// Number of arrays operating in parallel.
    pub num_arrays: usize,
}

impl GactXBank {
    /// The paper's FPGA configuration: 2 arrays × 32 PEs at 150 MHz.
    pub fn fpga() -> GactXBank {
        GactXBank {
            array: ArrayConfig::fpga(),
            num_arrays: 2,
        }
    }

    /// The paper's ASIC configuration: 12 arrays × 64 PEs at 1 GHz.
    pub fn asic() -> GactXBank {
        GactXBank {
            array: ArrayConfig::asic(),
            num_arrays: 12,
        }
    }

    /// Traceback SRAM available per array.
    pub fn traceback_capacity(&self) -> u64 {
        self.array.num_pe as u64 * TRACEBACK_BYTES_PER_PE
    }

    /// Cycles one array spends on a tile with the given measured DP
    /// workload.
    ///
    /// * compute: live cells stream through `Npe` PEs (`cells / Npe`), and
    ///   every stripe pays a pipeline fill of `Npe` cycles;
    /// * traceback: one pointer per cycle along the alignment path, bounded
    ///   by the number of rows;
    /// * DRAM fetch: the two sequence windows at one byte per cycle
    ///   (the sequences stream in while the first stripe loads).
    pub fn cycles_for_tile(&self, cells: u64, rows: u64) -> u64 {
        self.array.validate();
        let npe = self.array.num_pe as u64;
        let compute = cells.div_ceil(npe) + self.array.stripes(rows) * npe;
        let traceback = 2 * rows; // path length ≤ rows + cols ≈ 2·rows
        let fetch = 2 * rows; // both windows, 1 B/cycle, ≈ rows bases each
        compute + traceback + fetch + self.array.tile_overhead_cycles
    }

    /// Aggregate extension throughput in tiles/second for the *average*
    /// tile of a measured workload.
    pub fn tiles_per_second(&self, avg_cells_per_tile: f64, avg_rows_per_tile: f64) -> f64 {
        let cycles = self.cycles_for_tile(avg_cells_per_tile as u64, avg_rows_per_tile as u64);
        self.num_arrays as f64 * self.array.freq_hz / cycles as f64
    }

    /// Total cycles *one* array would spend on a whole extension
    /// workload (total cells/rows over all tiles) — the modeled-cycle
    /// figure the observability layer reports for the GACT-X stage.
    /// An empty workload (zero tiles) is zero cycles.
    pub fn cycles_for_workload(&self, tiles: u64, total_cells: u64, total_rows: u64) -> u64 {
        if tiles == 0 {
            return 0;
        }
        let per_tile_overhead =
            self.array.tile_overhead_cycles + 4 * (total_rows / tiles) + self.array.num_pe as u64;
        let npe = self.array.num_pe as u64;
        total_cells.div_ceil(npe) + self.array.stripes(total_rows) * npe + tiles * per_tile_overhead
    }

    /// Seconds to process a whole extension workload (total cells/rows
    /// over all tiles), perfectly balanced across arrays.
    pub fn seconds_for_workload(&self, tiles: u64, total_cells: u64, total_rows: u64) -> f64 {
        if tiles == 0 {
            return 0.0;
        }
        let cycles = self.cycles_for_workload(tiles, total_cells, total_rows);
        self.array.cycles_to_seconds(cycles) / self.num_arrays as f64
    }

    /// DRAM bytes per tile for sequence fetch (~2 windows of `rows` bases).
    pub fn bytes_per_tile(&self, avg_rows_per_tile: f64) -> f64 {
        2.0 * avg_rows_per_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's default tile: Te = 1920, Y-drop band ≈ 600 columns.
    fn paper_tile() -> (u64, u64) {
        let rows = 1920u64;
        let cells = rows * 600;
        (cells, rows)
    }

    #[test]
    fn fpga_tile_cycles_near_paper() {
        let (cells, rows) = paper_tile();
        let cycles = GactXBank::fpga().cycles_for_tile(cells, rows);
        // Paper: 2 arrays at 150 MHz give 4.6K tiles/s → ~65K cycles/tile.
        // First-principles model lands within ~1.5×.
        assert!((30_000..90_000).contains(&cycles), "{cycles}");
    }

    #[test]
    fn fpga_throughput_near_paper() {
        let (cells, rows) = paper_tile();
        let tps = GactXBank::fpga().tiles_per_second(cells as f64, rows as f64);
        assert!((3.0e3..1.2e4).contains(&tps), "{tps}");
    }

    #[test]
    fn asic_throughput_near_paper() {
        // Paper: 12 arrays at 1 GHz give ~300K tiles/s.
        let (cells, rows) = paper_tile();
        let tps = GactXBank::asic().tiles_per_second(cells as f64, rows as f64);
        assert!((1.5e5..7.0e5).contains(&tps), "{tps}");
    }

    #[test]
    fn traceback_capacity_is_1mb_at_64_pe() {
        assert_eq!(GactXBank::asic().traceback_capacity(), 1024 * 1024);
        assert_eq!(GactXBank::fpga().traceback_capacity(), 512 * 1024);
    }

    #[test]
    fn workload_seconds_scale_inverse_with_arrays() {
        let bank = GactXBank::fpga();
        let double = GactXBank {
            num_arrays: 4,
            ..bank
        };
        let t1 = bank.seconds_for_workload(1000, 1_000_000_000, 1_000_000);
        let t2 = double.seconds_for_workload(1000, 1_000_000_000, 1_000_000);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_free() {
        assert_eq!(GactXBank::fpga().seconds_for_workload(0, 0, 0), 0.0);
        assert_eq!(GactXBank::fpga().cycles_for_workload(0, 0, 0), 0);
    }

    #[test]
    fn seconds_follow_from_workload_cycles() {
        let bank = GactXBank::fpga();
        let (tiles, cells, rows) = (1000u64, 1_000_000_000u64, 1_000_000u64);
        let cycles = bank.cycles_for_workload(tiles, cells, rows);
        let expect = bank.array.cycles_to_seconds(cycles) / bank.num_arrays as f64;
        assert_eq!(bank.seconds_for_workload(tiles, cells, rows), expect);
    }
}
