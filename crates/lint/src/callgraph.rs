//! Workspace call graph over the symbols layer, with the reachability
//! machinery the interprocedural passes share.
//!
//! Resolution is a *name-based over-approximation* (no type inference):
//!
//! * `name(...)` — candidates are workspace fns named `name` after
//!   `use ... as` aliasing; same-file matches are preferred over
//!   same-crate over workspace-wide. An unresolved lowercase name is an
//!   **Unknown edge** (external call, recorded and counted); an
//!   unresolved Uppercase name is a constructor (`Some`, `Vec`) and is
//!   ignored.
//! * `Type::name(...)` — methods of `Type` when any exist, otherwise
//!   any fn named `name` (module-path call), otherwise Unknown.
//! * `recv.name(...)` — when `recv` is `self` and the enclosing impl
//!   type defines `name`, the call resolves to exactly that type's
//!   methods. Otherwise it resolves to **every** workspace method named
//!   `name` (this is how trait-object dispatch lands on all in-workspace
//!   implementors), or an Unknown edge when no workspace type has one.
//!
//! Unknown edges keep the graph honest — they are reported as counts —
//! but they do not confer reachability (external code does not call
//! back into panic sites) and they do not carry taint.
//!
//! Closures are not separate nodes here: a closure body sits inside its
//! enclosing fn's token range, so `execute` reaches the stages its
//! spawned closures call. (The effects pass in [`crate::effects`] keeps
//! closures separate — the queue graph needs the opposite choice.)

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind};
use crate::symbols::{FileSymbols, FnDef};

/// Keywords that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "in", "loop", "let", "move", "as", "mut", "ref",
    "else", "use", "pub", "where", "fn", "impl", "dyn", "unsafe", "await", "yield", "box",
    "true", "false", "self", "Self", "super", "crate", "static", "const", "type", "enum",
    "struct", "trait", "mod", "extern", "union", "break", "continue",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All non-test fns, flattened in file order. Index = node id.
    pub fns: Vec<FnDef>,
    /// Adjacency: `edges[caller]` = sorted, deduped callee node ids.
    pub edges: Vec<Vec<usize>>,
    /// Per-node unresolved callee names (sorted, deduped).
    pub unknown: Vec<Vec<String>>,
    /// Root-relative paths, indexed by `FnDef::file`.
    pub files: Vec<String>,
}

impl Graph {
    /// Total resolved edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Total unknown-edge count (distinct names per caller).
    pub fn unknown_count(&self) -> usize {
        self.unknown.iter().map(Vec::len).sum()
    }

    /// Node ids whose fn name is in `names` (entry-point matching).
    pub fn nodes_named(&self, names: &[String]) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| names.iter().any(|n| *n == self.fns[i].name))
            .collect()
    }

    /// BFS from `roots`; returns a parent map (`usize::MAX` = root or
    /// unreached) and the reached set as a bool mask.
    pub fn reach(&self, roots: &[usize]) -> (Vec<usize>, Vec<bool>) {
        let n = self.fns.len();
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if r < n && !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &self.edges[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push(v);
                }
            }
        }
        (parent, seen)
    }

    /// Call path from a BFS root to `node`, rendered as fn quals
    /// (`entry -> mid -> leaf`). Empty when `node` was not reached.
    pub fn chain(&self, parent: &[usize], seen: &[bool], node: usize) -> Vec<String> {
        if node >= self.fns.len() || !seen[node] {
            return Vec::new();
        }
        let mut path = vec![node];
        let mut cur = node;
        // parent chains are acyclic by construction (BFS tree), but cap
        // the walk defensively so a bug cannot loop forever.
        for _ in 0..self.fns.len() {
            let p = parent[cur];
            if p == usize::MAX {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.fns[i].qual()).collect()
    }

    /// The innermost fn whose body contains token `tok` of file `file`,
    /// if any. ("Innermost" matters only for macro-generated fns whose
    /// body ranges alias the macro definition; ties go to the first.)
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            let Some((s, e)) = f.body else { continue };
            if s <= tok && tok <= e {
                let better = match best {
                    Some(b) => {
                        let (bs, be) = self.fns[b].body.unwrap_or((0, usize::MAX));
                        e - s < be - bs
                    }
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Crate grouping key for resolution preference: `crates/<name>` or the
/// first path component (`src`).
fn crate_key(path: &str) -> &str {
    let mut it = path.split('/');
    match (it.next(), it.next()) {
        (Some("crates"), Some(c)) => &path[..7 + c.len()],
        (Some(first), _) => first,
        _ => path,
    }
}

/// Builds the graph from all lexed files and their symbols. `files`
/// are root-relative `/`-separated paths, index-aligned with `lexed`
/// and `syms`.
pub fn build(files: &[String], lexed: &[Lexed<'_>], syms: &[FileSymbols]) -> Graph {
    let mut g = Graph {
        files: files.to_vec(),
        ..Graph::default()
    };
    // Node list: every non-test fn, in (file, definition) order.
    for fs in syms {
        for f in &fs.fns {
            if !f.is_test {
                g.fns.push(f.clone());
            }
        }
    }
    let n = g.fns.len();
    // Accumulated out of band — `by_name` below borrows `g.fns`, so
    // the scan must not mutate `g` until it finishes.
    let mut edges_acc: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut unknown_acc: Vec<Vec<String>> = vec![Vec::new(); n];

    // Indexes.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    // Per-file alias map (alias -> target).
    let aliases: Vec<BTreeMap<&str, &str>> = syms
        .iter()
        .map(|fs| {
            fs.aliases
                .iter()
                .map(|a| (a.alias.as_str(), a.target.as_str()))
                .collect()
        })
        .collect();

    // Node ids per file, for the per-file body scan below.
    let mut nodes_in_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for (i, f) in g.fns.iter().enumerate() {
        nodes_in_file[f.file].push(i);
    }

    for (fi, lx) in lexed.iter().enumerate() {
        let toks = &lx.toks;
        for &node in &nodes_in_file[fi] {
            let Some((start, end)) = g.fns[node].body else {
                continue;
            };
            let caller_crate = crate_key(&files[fi]);
            let mut i = start;
            while i <= end && i < toks.len() {
                if lx.test[i] {
                    i += 1;
                    continue;
                }
                let t = &toks[i];

                // recv.name( — method call.
                if t.text == "."
                    && matches!(toks.get(i + 1), Some(m) if m.kind == TokKind::Ident)
                    && matches!(toks.get(i + 2), Some(p) if p.text == "(")
                {
                    let name = toks[i + 1].text;
                    let recv_is_self = i >= 1 && toks[i - 1].text == "self";
                    let mut resolved = false;
                    if recv_is_self {
                        if let Some(ty) = &g.fns[node].impl_type {
                            let ty = ty.clone();
                            let local: Vec<usize> = by_name
                                .get(name)
                                .map(|c| {
                                    c.iter()
                                        .copied()
                                        .filter(|&k| g.fns[k].impl_type.as_deref() == Some(&ty))
                                        .collect()
                                })
                                .unwrap_or_default();
                            if !local.is_empty() {
                                for k in local {
                                    add_unique(&mut edges_acc[node], k);
                                }
                                resolved = true;
                            }
                        }
                    }
                    if !resolved {
                        // All workspace methods with this name — trait
                        // dispatch lands on every implementor. Bodyless
                        // trait signatures are not targets (their
                        // default-less decl can't contain anything),
                        // but default methods in trait blocks are.
                        let methods: Vec<usize> = by_name
                            .get(name)
                            .map(|c| {
                                c.iter()
                                    .copied()
                                    .filter(|&k| {
                                        g.fns[k].body.is_some()
                                            && (g.fns[k].impl_type.is_some()
                                                || g.fns[k].trait_name.is_some())
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        if methods.is_empty() {
                            add_name(&mut unknown_acc[node], name);
                        } else {
                            for k in methods {
                                add_unique(&mut edges_acc[node], k);
                            }
                        }
                    }
                    i += 2;
                    continue;
                }

                // name( or Qual::name( — plain or qualified call.
                if t.kind == TokKind::Ident
                    && matches!(toks.get(i + 1), Some(p) if p.text == "(")
                    && !KEYWORDS.contains(&t.text)
                    && !(i >= 1 && (toks[i - 1].text == "fn" || toks[i - 1].text == "$"))
                    && !(i >= 1 && toks[i - 1].text == ".")
                {
                    // Qualifier: walk back over `Q ::`.
                    let qual = if i >= 3
                        && toks[i - 1].text == ":"
                        && toks[i - 2].text == ":"
                        && toks[i - 3].kind == TokKind::Ident
                    {
                        Some(toks[i - 3].text)
                    } else {
                        None
                    };
                    let name = t.text;
                    match qual {
                        Some(q) => {
                            // `Self::name(...)` resolves inside the
                            // enclosing impl type.
                            let owner = if q == "Self" {
                                g.fns[node].impl_type.clone()
                            } else {
                                None
                            };
                            if let Some(ty) = owner {
                                let hits: Vec<usize> = by_name
                                    .get(name)
                                    .map(|c| {
                                        c.iter()
                                            .copied()
                                            .filter(|&k| {
                                                g.fns[k].impl_type.as_deref() == Some(&ty)
                                            })
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                if hits.is_empty() {
                                    add_name(&mut unknown_acc[node], name);
                                } else {
                                    for k in hits {
                                        add_unique(&mut edges_acc[node], k);
                                    }
                                }
                                i += 2;
                                continue;
                            }
                            let q = aliases[fi].get(q).copied().unwrap_or(q);
                            let typed: Vec<usize> = by_name
                                .get(name)
                                .map(|c| {
                                    c.iter()
                                        .copied()
                                        .filter(|&k| g.fns[k].impl_type.as_deref() == Some(q))
                                        .collect()
                                })
                                .unwrap_or_default();
                            let hits = if !typed.is_empty() {
                                typed
                            } else if q.starts_with(|c: char| c.is_lowercase() || c == '_') {
                                // Module-path call `journal::replay(…)`:
                                // any fn with the name.
                                by_name.get(name).cloned().unwrap_or_default()
                            } else {
                                // `ExternalType::assoc(…)` — a type the
                                // workspace does not implement. Falling
                                // back to any-name here would make every
                                // `String::new()` an edge to every
                                // workspace `new`.
                                Vec::new()
                            };
                            if hits.is_empty() {
                                if name.starts_with(|c: char| c.is_lowercase() || c == '_') {
                                    add_name(&mut unknown_acc[node], name);
                                }
                            } else {
                                for k in hits {
                                    add_unique(&mut edges_acc[node], k);
                                }
                            }
                        }
                        None => {
                            let name = aliases[fi].get(name).copied().unwrap_or(name);
                            let cands = by_name.get(name).cloned().unwrap_or_default();
                            if cands.is_empty() {
                                if name.starts_with(|c: char| c.is_lowercase() || c == '_') {
                                    add_name(&mut unknown_acc[node], name);
                                }
                            } else {
                                // Prefer same file, then same crate.
                                let same_file: Vec<usize> = cands
                                    .iter()
                                    .copied()
                                    .filter(|&k| g.fns[k].file == fi)
                                    .collect();
                                let picked = if !same_file.is_empty() {
                                    same_file
                                } else {
                                    let same_crate: Vec<usize> = cands
                                        .iter()
                                        .copied()
                                        .filter(|&k| {
                                            crate_key(&files[g.fns[k].file]) == caller_crate
                                        })
                                        .collect();
                                    if !same_crate.is_empty() {
                                        same_crate
                                    } else {
                                        cands
                                    }
                                };
                                for k in picked {
                                    add_unique(&mut edges_acc[node], k);
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }
    }

    for e in &mut edges_acc {
        e.sort_unstable();
        e.dedup();
    }
    for u in &mut unknown_acc {
        u.sort();
        u.dedup();
    }
    g.edges = edges_acc;
    g.unknown = unknown_acc;
    g
}

fn add_unique(v: &mut Vec<usize>, callee: usize) {
    if !v.contains(&callee) {
        v.push(callee);
    }
}

fn add_name(v: &mut Vec<String>, name: &str) {
    if !v.iter().any(|u| u == name) {
        v.push(name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::extract;

    fn graph(srcs: &[(&str, &str)]) -> Graph {
        let files: Vec<String> = srcs.iter().map(|(p, _)| p.to_string()).collect();
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let syms: Vec<_> = lexed
            .iter()
            .enumerate()
            .map(|(i, lx)| extract(lx, i))
            .collect();
        build(&files, &lexed, &syms)
    }

    fn id(g: &Graph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap_or(usize::MAX)
    }

    #[test]
    fn plain_call_prefers_same_file() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn top() { helper(); }\nfn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let top = id(&g, "top");
        assert_eq!(g.edges[top], vec![1], "same-file helper, not crate b's");
    }

    #[test]
    fn unresolved_lowercase_is_unknown_uppercase_ignored() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top() { external(); let x = Some(1); let v = Vec::new(); }",
        )]);
        let top = id(&g, "top");
        assert!(g.edges[top].is_empty());
        assert_eq!(g.unknown[top], vec!["external", "new"]);
    }

    #[test]
    fn self_method_resolves_to_own_impl() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct P;
impl P {
    fn parse(&self) { self.expect(1); }
    fn expect(&self, b: u8) {}
}
",
        )]);
        let parse = id(&g, "parse");
        let expect = id(&g, "expect");
        assert_eq!(g.edges[parse], vec![expect]);
        assert!(g.unknown[parse].is_empty());
    }

    #[test]
    fn trait_method_call_hits_all_implementors() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
trait Engine { fn run(&self); }
struct A; impl Engine for A { fn run(&self) {} }
struct B; impl Engine for B { fn run(&self) {} }
fn drive(e: &dyn Engine) { e.run(); }
",
        )]);
        let drive = id(&g, "drive");
        assert_eq!(g.edges[drive].len(), 2, "{:?}", g.edges[drive]);
    }

    #[test]
    fn external_type_constructor_does_not_fan_out() {
        // `String::new()` must not resolve to workspace `new` fns on
        // unrelated types — it is an unknown (external) edge.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct P;\nimpl P { fn new() -> P { P } }\nfn top() { let s = String::new(); }",
        )]);
        let top = id(&g, "top");
        assert!(g.edges[top].is_empty(), "{:?}", g.edges[top]);
        assert_eq!(g.unknown[top], vec!["new"]);
    }

    #[test]
    fn reach_and_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let roots = g.nodes_named(&["entry".to_string()]);
        let (parent, seen) = g.reach(&roots);
        let leaf = id(&g, "leaf");
        assert!(seen[leaf]);
        assert!(!seen[id(&g, "island")]);
        assert_eq!(g.chain(&parent, &seen, leaf), vec!["entry", "mid", "leaf"]);
    }

    #[test]
    fn alias_resolves_call() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use crate::deep::real_name as short;\nfn top() { short(); }",
            ),
            ("crates/a/src/deep.rs", "fn real_name() {}"),
        ]);
        let top = id(&g, "top");
        assert_eq!(g.edges[top], vec![id(&g, "real_name")]);
    }
}
