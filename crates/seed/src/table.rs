//! Seed table: an index from seed words to target positions.

use crate::pattern::SeedPattern;
use genome::Sequence;
use std::collections::HashMap;
use std::ops::Range;

/// An index of every seed word in the target genome.
///
/// Built once per target; query positions are then matched by word lookup.
/// Words whose position list exceeds `max_occurrences` are dropped as
/// repeats (the standard masking heuristic — ultra-frequent words come
/// from repetitive DNA and only produce noise).
///
/// # Examples
///
/// ```
/// use seed::{pattern::SeedPattern, table::SeedTable};
/// use genome::Sequence;
///
/// let target: Sequence = "ACGTACGTACGT".parse()?;
/// let pattern = SeedPattern::exact(8);
/// let table = SeedTable::build(&target, &pattern, usize::MAX);
/// let word = pattern.extract(target.as_slice(), 0).unwrap();
/// assert_eq!(table.lookup(word), &[0, 4]);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeedTable {
    index: HashMap<u64, Vec<u32>>,
    pattern: SeedPattern,
    positions_indexed: u64,
    dropped_repeats: u64,
}

impl SeedTable {
    /// Indexes every position of `target`.
    ///
    /// `max_occurrences` caps the per-word position list; words over the
    /// cap are removed entirely.
    pub fn build(target: &Sequence, pattern: &SeedPattern, max_occurrences: usize) -> SeedTable {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let slice = target.as_slice();
        let mut positions_indexed = 0u64;
        let end = target.len().saturating_sub(pattern.span().saturating_sub(1));
        for pos in 0..end {
            if let Some(word) = pattern.extract(slice, pos) {
                index.entry(word).or_default().push(pos as u32);
                positions_indexed += 1;
            }
        }
        let mut dropped_repeats = 0u64;
        // lint: allow(determinism): per-entry predicate + commutative sum — visit order cannot change the surviving set or the count
        index.retain(|_, positions| {
            if positions.len() > max_occurrences {
                dropped_repeats += positions.len() as u64;
                false
            } else {
                true
            }
        });
        SeedTable {
            index,
            pattern: pattern.clone(),
            positions_indexed,
            dropped_repeats,
        }
    }

    /// Indexes one shard of target positions (`range ∩ 0..indexable`).
    ///
    /// Sharded building is *exact*: indexing disjoint ascending ranges
    /// covering `0..target.len()` and merging them with
    /// [`SeedTable::from_partials`] reproduces [`SeedTable::build`]
    /// bit for bit, for any cut points. Each position's seed window may
    /// read past `range.end` into the next shard's bases — ownership of
    /// a *position* is what partitions the work, not the bases it reads.
    pub fn build_partial(
        target: &Sequence,
        pattern: &SeedPattern,
        range: Range<usize>,
    ) -> PartialSeedTable {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let slice = target.as_slice();
        let mut positions_indexed = 0u64;
        let end = target
            .len()
            .saturating_sub(pattern.span().saturating_sub(1))
            .min(range.end);
        for pos in range.start..end {
            if let Some(word) = pattern.extract(slice, pos) {
                index.entry(word).or_default().push(pos as u32);
                positions_indexed += 1;
            }
        }
        PartialSeedTable {
            index,
            positions_indexed,
        }
    }

    /// Merges per-shard partial tables into a whole-target [`SeedTable`].
    ///
    /// Parts must be passed in ascending shard order: each per-word
    /// position list is already ascending within a part, so appending
    /// parts in order keeps the merged lists ascending — identical to
    /// the serial build's push order. The `max_occurrences` repeat cap
    /// is applied **after** the merge, against whole-target counts, so
    /// a repeat word split across shards is still dropped exactly as
    /// the serial build drops it.
    pub fn from_partials(
        pattern: &SeedPattern,
        parts: impl IntoIterator<Item = PartialSeedTable>,
        max_occurrences: usize,
    ) -> SeedTable {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut positions_indexed = 0u64;
        for part in parts {
            positions_indexed += part.positions_indexed;
            // lint: allow(determinism): word visit order is free — appends
            // to different words are independent, and per-word appends
            // happen in part order, so every merged list is ascending.
            for (word, mut positions) in part.index {
                index.entry(word).or_default().append(&mut positions);
            }
        }
        let mut dropped_repeats = 0u64;
        // lint: allow(determinism): per-entry predicate + commutative sum — visit order cannot change the surviving set or the count
        index.retain(|_, positions| {
            if positions.len() > max_occurrences {
                dropped_repeats += positions.len() as u64;
                false
            } else {
                true
            }
        });
        SeedTable {
            index,
            pattern: pattern.clone(),
            positions_indexed,
            dropped_repeats,
        }
    }

    /// Target positions whose window hashes to `word`.
    pub fn lookup(&self, word: u64) -> &[u32] {
        self.index.get(&word).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The pattern this table was built with.
    pub fn pattern(&self) -> &SeedPattern {
        &self.pattern
    }

    /// Number of positions successfully indexed.
    pub fn positions_indexed(&self) -> u64 {
        self.positions_indexed
    }

    /// Number of positions dropped by the repeat cap.
    pub fn dropped_repeats(&self) -> u64 {
        self.dropped_repeats
    }

    /// Number of distinct words present.
    pub fn distinct_words(&self) -> usize {
        self.index.len()
    }
}

/// One shard of a [`SeedTable`] under construction: the index over an
/// ascending range of target positions, before the repeat cap.
///
/// Produced by [`SeedTable::build_partial`], consumed (in shard order)
/// by [`SeedTable::from_partials`].
#[derive(Debug)]
pub struct PartialSeedTable {
    index: HashMap<u64, Vec<u32>>,
    positions_indexed: u64,
}

impl PartialSeedTable {
    /// Number of positions this shard indexed.
    pub fn positions_indexed(&self) -> u64 {
        self.positions_indexed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_all_positions() {
        let t: Sequence = "ACGTACGTAC".parse().unwrap();
        let p = SeedPattern::exact(4);
        let table = SeedTable::build(&t, &p, usize::MAX);
        assert_eq!(table.positions_indexed(), 7);
        let word = p.extract(t.as_slice(), 1).unwrap();
        assert_eq!(table.lookup(word), &[1, 5]);
    }

    #[test]
    fn skips_n_windows() {
        let t: Sequence = "ACGTNACGT".parse().unwrap();
        let p = SeedPattern::exact(4);
        let table = SeedTable::build(&t, &p, usize::MAX);
        // Positions 1..=4 contain the N.
        assert_eq!(table.positions_indexed(), 2);
    }

    #[test]
    fn repeat_cap_drops_frequent_words() {
        let t: Sequence = "AAAAAAAAAAAAAAAA".parse().unwrap();
        let p = SeedPattern::exact(4);
        let capped = SeedTable::build(&t, &p, 4);
        assert_eq!(capped.distinct_words(), 0);
        assert_eq!(capped.dropped_repeats(), 13);
        let uncapped = SeedTable::build(&t, &p, usize::MAX);
        assert_eq!(uncapped.distinct_words(), 1);
    }

    #[test]
    fn lookup_of_absent_word_is_empty() {
        let t: Sequence = "ACGT".parse().unwrap();
        let table = SeedTable::build(&t, &SeedPattern::exact(4), usize::MAX);
        assert!(table.lookup(u64::MAX).is_empty());
    }

    fn assert_tables_equal(a: &SeedTable, b: &SeedTable, t: &Sequence, p: &SeedPattern) {
        assert_eq!(a.positions_indexed(), b.positions_indexed());
        assert_eq!(a.dropped_repeats(), b.dropped_repeats());
        assert_eq!(a.distinct_words(), b.distinct_words());
        for pos in 0..t.len() {
            if let Some(word) = p.extract(t.as_slice(), pos) {
                assert_eq!(a.lookup(word), b.lookup(word), "word at {pos}");
            }
        }
    }

    #[test]
    fn sharded_build_matches_serial_at_any_cut() {
        let t: Sequence = "ACGTACGTACGGTCAGTCGATTGCAGTCACGTACGT"
            .repeat(6)
            .parse()
            .unwrap();
        let p = SeedPattern::exact(8);
        for max_occ in [usize::MAX, 4] {
            let serial = SeedTable::build(&t, &p, max_occ);
            // Deliberately unaligned cuts, an empty shard, a shard past
            // the last indexable position.
            for cuts in [vec![0, 50, 50, 131, t.len()], vec![0, 1, t.len() - 2, t.len()]] {
                let parts: Vec<PartialSeedTable> = cuts
                    .windows(2)
                    .map(|w| SeedTable::build_partial(&t, &p, w[0]..w[1]))
                    .collect();
                let merged = SeedTable::from_partials(&p, parts, max_occ);
                assert_tables_equal(&serial, &merged, &t, &p);
            }
        }
    }

    #[test]
    fn repeat_cap_applies_to_whole_target_counts() {
        // Every shard is under the cap on its own; only the merged count
        // crosses it — the cap must act on merged lists.
        let t: Sequence = "AAAAAAAAAAAAAAAA".parse().unwrap();
        let p = SeedPattern::exact(4);
        let parts = [0..6, 6..t.len()]
            .into_iter()
            .map(|r| SeedTable::build_partial(&t, &p, r))
            .collect::<Vec<_>>();
        assert!(parts.iter().all(|part| part.positions_indexed() <= 7));
        let merged = SeedTable::from_partials(&p, parts, 8);
        assert_eq!(merged.distinct_words(), 0);
        assert_eq!(merged.dropped_repeats(), 13);
    }

    #[test]
    fn spaced_pattern_matches_despite_dont_care_mismatch() {
        // Pattern 1-0-1: middle base free.
        let p: SeedPattern = "101".parse().unwrap();
        let t: Sequence = "AGA".parse().unwrap();
        let q: Sequence = "ATA".parse().unwrap();
        let table = SeedTable::build(&t, &p, usize::MAX);
        let qword = p.extract(q.as_slice(), 0).unwrap();
        assert_eq!(table.lookup(qword), &[0]);
    }
}
