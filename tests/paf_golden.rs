//! Golden-file regression for the PAF emitter.
//!
//! The checked-in genome pair under `tests/data/` (shared with
//! `golden_report.rs`) runs through many-genome mode and must render
//! the byte-identical `tests/data/golden.paf` for both filter engines
//! and both executors at 1, 3 and 8 threads. A round-trip pass
//! re-parses every emitted line and checks it against the report it
//! came from: column count, interval sanity, the reverse-strand query
//! flip, and the matches ≤ block-length invariant.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test paf_golden -- --nocapture
//! ```

use darwin_wga::core::config::{FilterEngineKind, WgaParams};
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::pangenome::{self, paf::paf_text, ManyOptions, ManyReport};
use darwin_wga::core::report::Strand;
use darwin_wga::genome::assembly::Assembly;
use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn load_assembly(name: &str, file: &str) -> Assembly {
    let path = data_dir().join(file);
    let reader = BufReader::new(fs::File::open(&path).unwrap_or_else(|e| {
        panic!("cannot open {}: {e} — is the golden fixture checked in?", path.display())
    }));
    Assembly::from_fasta(name, reader).expect("checked-in FASTA parses")
}

fn golden_genomes() -> Vec<Assembly> {
    vec![
        load_assembly("golden-target", "golden.target.fa"),
        load_assembly("golden-query", "golden.query.fa"),
    ]
}

fn run(params: &WgaParams, genomes: &[Assembly], options: &ManyOptions) -> ManyReport {
    pangenome::align_many(params, genomes, options).expect("many-genome run succeeds")
}

#[test]
fn golden_paf_is_stable_across_engines_executors_and_threads() {
    let genomes = golden_genomes();
    let path = data_dir().join("golden.paf");

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let report = run(&WgaParams::darwin_wga(), &genomes, &ManyOptions::default());
        fs::write(&path, paf_text(&report, &genomes)).expect("write golden.paf");
        println!("regenerated {}", path.display());
        return;
    }

    let expected = fs::read_to_string(&path)
        .expect("golden.paf present — regenerate with GOLDEN_REGEN=1");
    assert!(
        !expected.is_empty() && expected.ends_with('\n'),
        "golden PAF looks truncated"
    );

    for engine in [FilterEngineKind::Scalar, FilterEngineKind::Batched] {
        let params = WgaParams::darwin_wga().with_filter_engine(engine);
        for executor in [ExecutorKind::Barrier, ExecutorKind::Dataflow] {
            for threads in [1usize, 3, 8] {
                let options = ManyOptions {
                    threads,
                    executor,
                    ..ManyOptions::default()
                };
                let report = run(&params, &genomes, &options);
                let got = paf_text(&report, &genomes);
                assert!(
                    got == expected,
                    "{engine:?}/{executor:?}/{threads}t diverged from golden.paf \
                     (got {} bytes, expected {})",
                    got.len(),
                    expected.len()
                );
            }
        }
    }
}

#[test]
fn paf_round_trips_against_its_report() {
    let genomes = golden_genomes();
    let report = run(&WgaParams::darwin_wga(), &genomes, &ManyOptions::default());
    let paf = paf_text(&report, &genomes);
    let lines: Vec<&str> = paf.lines().collect();
    assert_eq!(
        lines.len(),
        report.alignments.len(),
        "one PAF line per surviving alignment"
    );

    for (line, a) in lines.iter().zip(&report.alignments) {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 12, "mandatory PAF columns: {line}");
        let num = |i: usize| -> usize { cols[i].parse().unwrap_or_else(|_| panic!("col {i} numeric: {line}")) };

        assert_eq!(cols[0], format!("{}.{}", a.query_genome, a.query_chrom));
        assert_eq!(cols[5], format!("{}.{}", a.target_genome, a.target_chrom));
        let (q_len, q_start, q_end) = (num(1), num(2), num(3));
        let (t_len, t_start, t_end) = (num(6), num(7), num(8));
        assert!(q_start < q_end && q_end <= q_len, "query interval sane: {line}");
        assert!(t_start < t_end && t_end <= t_len, "target interval sane: {line}");

        let aln = &a.aligned.alignment;
        assert_eq!((t_start, t_end), (aln.target_start, aln.target_end));
        match a.aligned.strand {
            Strand::Forward => {
                assert_eq!(cols[4], "+");
                assert_eq!((q_start, q_end), (aln.query_start, aln.query_end));
            }
            Strand::Reverse => {
                assert_eq!(cols[4], "-");
                // Undo the forward-strand flip to recover the raw
                // reverse-complement coordinates the report stores.
                assert_eq!(
                    (q_len - q_end, q_len - q_start),
                    (aln.query_start, aln.query_end)
                );
            }
        }

        let (matches, block_len, mapq) = (num(9), num(10), num(11));
        assert_eq!(matches as u64, aln.matches());
        assert_eq!(block_len, aln.cigar.len());
        assert!(matches <= block_len, "matches bounded by block length: {line}");
        assert_eq!(mapq, 255);
    }
}
