//! Seeding throughput: seed-table construction and D-SOFT queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seed::{dsoft_seeds, DsoftParams, SeedPattern, SeedTable};

fn bench_seeding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let pair = SyntheticPair::generate(100_000, &EvolutionParams::at_distance(0.2), &mut rng);
    let pattern = SeedPattern::lastz_default();

    let mut group = c.benchmark_group("seeding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pair.target.sequence.len() as u64));
    group.bench_function("table_build_100kb", |b| {
        b.iter(|| SeedTable::build(black_box(&pair.target.sequence), &pattern, 1000))
    });

    let table = SeedTable::build(&pair.target.sequence, &pattern, 1000);
    group.throughput(Throughput::Elements(pair.query.sequence.len() as u64));
    group.bench_function("dsoft_with_transitions", |b| {
        b.iter(|| {
            dsoft_seeds(
                black_box(&table),
                black_box(&pair.query.sequence),
                &DsoftParams::default(),
            )
        })
    });
    group.bench_function("dsoft_no_transitions", |b| {
        b.iter(|| {
            dsoft_seeds(
                black_box(&table),
                black_box(&pair.query.sequence),
                &DsoftParams {
                    transitions: false,
                    ..DsoftParams::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_seeding);
criterion_main!(benches);
