//! Y-drop gapped extension for the LASTZ-like baseline.
//!
//! LASTZ's final stage extends each surviving anchor with a gapped X-drop
//! DP (it calls the threshold *Y-drop*; Zhang et al. 2000 introduced the
//! greedy variant). Functionally this is an *untiled* version of the
//! GACT-X extension: same scoring, same drop rule, but the whole dynamic
//! programming region is kept in memory — which is exactly why software
//! needs no tiling and hardware does.
//!
//! We implement it by running the shared tiling driver with a tile large
//! enough that genome-scale extensions rarely need more than a few tiles;
//! this keeps baseline and accelerator extension quality comparable, so
//! that sensitivity differences measured in Table III are attributable to
//! the *filtering* stage, as the paper argues.

use crate::gactx::{extend_alignment, ExtendedAlignment, TilingParams};
use genome::{GapPenalties, Sequence, SubstitutionMatrix};

/// Default Y-drop threshold used by the baseline extension (matches the
/// GACT-X `Y` so the two extenders are iso-quality).
pub const DEFAULT_YDROP: i64 = 9430;

/// Extends an anchor with the software Y-drop algorithm.
///
/// Returns `None` when no aligned base was produced.
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "TTTTACGTACGTACGTTTTT".parse()?;
/// let q: Sequence = "GGGGACGTACGTACGTGGGG".parse()?;
/// let a = align::greedy::ydrop_extend(
///     &t, &q, 10, 10,
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
///     align::greedy::DEFAULT_YDROP,
/// ).expect("alignment");
/// assert!(a.alignment.matches() >= 12);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn ydrop_extend(
    target: &Sequence,
    query: &Sequence,
    anchor_t: usize,
    anchor_q: usize,
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    ydrop: i64,
) -> Option<ExtendedAlignment> {
    let params = TilingParams {
        tile_size: 8192,
        overlap: 256,
        y: ydrop,
        edge_traceback: false,
    };
    extend_alignment(target, query, anchor_t, anchor_q, w, gaps, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gactx;
    use genome::Base;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn mutated_copy(s: &Sequence, rate: f64, rng: &mut StdRng) -> Sequence {
        s.iter()
            .map(|b| {
                if rng.gen::<f64>() < rate {
                    Base::from_code(rng.gen_range(0..4u8))
                } else {
                    b
                }
            })
            .collect()
    }

    #[test]
    fn ydrop_and_gactx_find_equivalent_alignments() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(7);
        let t: Sequence = (0..2000)
            .map(|_| Base::from_code(rng.gen_range(0..4u8)))
            .collect();
        let q = mutated_copy(&t, 0.08, &mut rng);
        let ydrop = ydrop_extend(&t, &q, 1000, 1000, &w, &g, DEFAULT_YDROP).unwrap();
        let gactx = gactx::extend_alignment(
            &t,
            &q,
            1000,
            1000,
            &w,
            &g,
            &gactx::TilingParams::gactx_default(),
        )
        .unwrap();
        let ratio = ydrop.alignment.matches() as f64 / gactx.alignment.matches() as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "y-drop {} vs gact-x {}",
            ydrop.alignment.matches(),
            gactx.alignment.matches()
        );
    }

    #[test]
    fn returns_none_on_garbage_anchor() {
        let (w, g) = dw();
        let t: Sequence = "AAAAAAAAAA".parse().unwrap();
        let q: Sequence = "CCCCCCCCCC".parse().unwrap();
        assert!(ydrop_extend(&t, &q, 5, 5, &w, &g, DEFAULT_YDROP).is_none());
    }
}
