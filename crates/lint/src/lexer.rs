//! A hand-rolled, lossy-but-honest Rust lexer.
//!
//! The rule engine needs to see *code*, never prose: a `.unwrap()` in a
//! doc example, a `panic!` inside a string literal or a `HashMap` named
//! in a comment must not trip a rule. This lexer therefore understands
//! exactly the token classes that matter for that distinction —
//! line/block comments (nested), string literals with escapes, raw
//! strings with arbitrary `#` fences, char and byte literals (including
//! `'"'` and `'/'`), lifetimes, raw identifiers, and numeric literals
//! with a float/integer split — and flattens everything else to
//! single-character punctuation tokens.
//!
//! It deliberately does **not** build a syntax tree. Rules match on
//! short token patterns (`ident . unwrap (`), which is robust to any
//! formatting and cheap to scan, at the cost of a small, documented set
//! of blind spots (see DESIGN.md).
//!
//! Two side channels come out of the lex besides the token stream:
//!
//! * every comment, with its line and whether code precedes it on the
//!   same line — waivers (`// lint: allow(rule): why`), file tags
//!   (`// lint: hot`) and `// SAFETY:` annotations live here;
//! * a per-token `test` mask: any item under a `#[cfg(test)]` attribute
//!   is marked test code, brace-matched mid-file rather than assuming
//!   test modules sit at the bottom (the old `panic_audit.sh` truncated
//!   at the first `#[cfg(test)]`, which this replaces).

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `for`, `HashMap`, `r#async`).
    Ident,
    /// Integer literal, including prefixed/suffixed forms (`0x1F`, `1u64`).
    Int,
    /// Float literal (`1.5`, `2.0f64`, `1e9`).
    Float,
    /// String or byte-string literal, raw or not.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`, `'"'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Any single punctuation character (`.`, `{`, `!`, …).
    Punct,
}

/// One lexed token: its class, exact source text, and 1-based line.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

/// One comment: 1-based start line, body text (delimiters stripped),
/// and whether a token precedes it on the same line (a *trailing*
/// comment — waivers attached this way cover only their own line).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub trailing: bool,
}

/// Result of lexing one file.
#[derive(Debug)]
pub struct Lexed<'a> {
    pub toks: Vec<Tok<'a>>,
    pub comments: Vec<Comment>,
    /// `test[i]` is true when `toks[i]` sits inside `#[cfg(test)]` code.
    pub test: Vec<bool>,
}

impl Lexed<'_> {
    /// Number of the last line in the file (0 for an empty file).
    pub fn last_line(&self) -> u32 {
        self.toks
            .last()
            .map(|t| t.line)
            .max(self.comments.last().map(|c| c.line))
            .unwrap_or(0)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into tokens, comments and a test-code mask.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to best-effort tokens rather than an error, so
/// the linter keeps scanning the rest of the file.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks: Vec<Tok<'_>> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // Line of the most recent token, to mark trailing comments.
    let mut last_tok_line = 0u32;

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                    trailing: last_tok_line == line,
                });
                i = j;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                    trailing: last_tok_line == start_line,
                });
                i = j;
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                let (j, lines) = scan_raw_string(b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                line += lines;
                i = j;
            }
            b'r' if i + 1 < n && b[i + 1] == b'#' && i + 2 < n && is_ident_start(b[i + 2]) => {
                // Raw identifier r#type.
                let mut j = i + 2;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[i + 2..j],
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            b'b' if i + 1 < n && b[i + 1] == b'\'' => {
                let j = scan_char(b, i + 1);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            b'"' => {
                let (j, lines) = scan_string(b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                line += lines;
                i = j;
            }
            b'b' if i + 1 < n && b[i + 1] == b'"' => {
                let (j, lines) = scan_string(b, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                line += lines;
                i = j;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is '<ident> not
                // followed by a closing quote ('a, 'static); everything
                // else ('x', '\n', '"', '\'') is a char literal.
                if i + 1 < n
                    && is_ident_start(b[i + 1])
                    && !(i + 2 < n && b[i + 2] == b'\'')
                {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: &src[i..j],
                        line,
                    });
                    last_tok_line = line;
                    i = j;
                } else {
                    let j = scan_char(b, i);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: &src[i..j],
                        line,
                    });
                    last_tok_line = line;
                    i = j;
                }
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let (j, kind) = scan_number(b, i);
                toks.push(Tok {
                    kind,
                    text: &src[i..j],
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: &src[i..i + 1],
                    line,
                });
                last_tok_line = line;
                i += 1;
            }
        }
    }

    let test = test_mask(&toks);
    Lexed {
        toks,
        comments,
        test,
    }
}

/// Whether position `i` starts a raw (byte) string: `r"`, `r#`…`#"`,
/// `br"`, `br#`…`#"`. Excludes raw identifiers (`r#name`).
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    if b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Scans a raw string starting at `i`; returns (end index, newlines).
fn scan_raw_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut lines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            lines += 1;
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, lines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, lines)
}

/// Scans a normal string starting at the opening quote; returns
/// (end index, newlines).
fn scan_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut lines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            b'"' => return (j + 1, lines),
            _ => j += 1,
        }
    }
    (j, lines)
}

/// Scans a char/byte literal starting at the opening quote.
fn scan_char(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // malformed; stop at the line break
            _ => j += 1,
        }
    }
    j
}

/// Scans a numeric literal; classifies float vs integer.
fn scan_number(b: &[u8], i: usize) -> (usize, TokKind) {
    let n = b.len();
    let hex = i + 1 < n && b[i] == b'0' && (b[i + 1] | 0x20) == b'x';
    let mut j = i;
    let mut float = false;
    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        // An exponent sign only continues the literal in decimal floats
        // (1e-9); otherwise `-` ends the token.
        if !hex
            && (b[j] | 0x20) == b'e'
            && j + 1 < n
            && (b[j + 1] == b'+' || b[j + 1] == b'-')
            && j + 2 < n
            && b[j + 2].is_ascii_digit()
        {
            float = true;
            j += 2;
            continue;
        }
        j += 1;
    }
    // A `.` continues the literal only when followed by a digit
    // (1.5 is a float; 1..5 is a range; 1.max(2) is a method call).
    if j < n && b[j] == b'.' && j + 1 < n && b[j + 1].is_ascii_digit() {
        float = true;
        j += 1;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
    }
    if !hex && !float {
        // Bare decimal exponent (1e9): only digits, underscores and a
        // lone `e` — a type suffix like `1u64` fails this and stays Int.
        let text = &b[i..j];
        let has_e = text.iter().any(|&c| (c | 0x20) == b'e');
        let plain = text
            .iter()
            .all(|&c| c.is_ascii_digit() || c == b'_' || (c | 0x20) == b'e');
        if has_e && plain {
            float = true;
        }
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

/// Marks every token under a `#[cfg(test)]`-style attribute as test
/// code, brace-matching the following item so a test module in the
/// middle of a file strips cleanly.
///
/// Heuristic: the attribute's argument tokens must contain the
/// identifier `test` under an identifier `cfg`, and must not contain
/// `not` (so `#[cfg(not(test))]` code is kept).
fn test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && matches!(toks.get(i + 1), Some(t) if t.text == "[") {
            let attr_start = i;
            let Some(attr_end) = match_delim(toks, i + 1, "[", "]") else {
                break;
            };
            let inner = &toks[i + 2..attr_end];
            let is_cfg = inner.first().is_some_and(|t| t.text == "cfg");
            let has_test = inner.iter().any(|t| t.text == "test");
            let has_not = inner.iter().any(|t| t.text == "not");
            if is_cfg && has_test && !has_not {
                // Skip any further attributes stacked on the same item.
                let mut j = attr_end + 1;
                while j < toks.len()
                    && toks[j].text == "#"
                    && matches!(toks.get(j + 1), Some(t) if t.text == "[")
                {
                    match match_delim(toks, j + 1, "[", "]") {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                let end = item_end(toks, j);
                for m in mask.iter_mut().take(end + 1).skip(attr_start) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the closing delimiter matching the opener at `open_idx`.
pub(crate) fn match_delim(toks: &[Tok<'_>], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the last token of the item (or statement) starting at `i`:
/// either a `;` outside all delimiters, or the `}` closing the first
/// top-level brace block — whichever comes first.
pub(crate) fn item_end(toks: &[Tok<'_>], i: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut k = i;
    while k < toks.len() {
        match toks[k].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return k,
            "{" if paren == 0 && bracket == 0 => {
                return match_delim(toks, k, "{", "}").unwrap_or(toks.len() - 1);
            }
            _ => {}
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r#"
            // a .unwrap() in a comment
            /* panic! in a block comment */
            let s = ".unwrap() panic!";
            let t = 'x';
        "#;
        let lexed = lex(src);
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = r##"let x = r#"contains "quotes" and .unwrap()"#; let y = 1;"##;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("quotes"));
        assert!(idents(src).contains(&"y".to_string()));
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert!(idents(src).contains(&"f".to_string()));
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn char_literals_with_quote_and_slashes() {
        // '"' and '/' must not open a string or comment.
        let src = "let a = '\"'; let b = '/'; let c = '\\''; x.unwrap()";
        let lexed = lex(src);
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 3);
        assert!(idents(src).contains(&"unwrap".to_string()));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lexed = lex(src);
        let lts: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lts, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        let src = "let a = 1.5; let b = 0..7; let c = 1.max(2); let d = 0x1F; let e = 2.0f64;";
        let lexed = lex(src);
        let floats: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text)
            .collect();
        assert_eq!(floats, vec!["1.5", "2.0f64"]);
        let ints: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text)
            .collect();
        assert_eq!(ints, vec!["0", "7", "1", "2", "0x1F"]);
    }

    #[test]
    fn cfg_test_module_stripped_mid_file() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn also_live() { z.unwrap(); }
";
        let lexed = lex(src);
        let live_unwraps = lexed
            .toks
            .iter()
            .zip(&lexed.test)
            .filter(|(t, &is_test)| t.text == "unwrap" && !is_test)
            .count();
        assert_eq!(live_unwraps, 2, "mid-file test module must strip cleanly");
    }

    #[test]
    fn cfg_test_fn_and_statement_stripped() {
        let src = "
#[cfg(test)]
fn poison() { panic!(\"x\") }
fn live() {
    #[cfg(test)]
    poison();
    real();
}
#[cfg(not(test))]
fn kept() { a.unwrap(); }
";
        let lexed = lex(src);
        let live: Vec<_> = lexed
            .toks
            .iter()
            .zip(&lexed.test)
            .filter(|(t, &is_test)| t.kind == TokKind::Ident && !is_test)
            .map(|(t, _)| t.text)
            .collect();
        assert!(live.contains(&"real"));
        assert!(live.contains(&"unwrap"), "cfg(not(test)) code is live");
        assert!(!live.contains(&"panic"));
        let live_poison_calls = lexed
            .toks
            .iter()
            .zip(&lexed.test)
            .filter(|(t, &is_test)| t.text == "poison" && !is_test)
            .count();
        assert_eq!(live_poison_calls, 0, "attribute on a statement strips it");
    }

    #[test]
    fn trailing_comment_flagged() {
        let src = "let x = 1; // lint: allow(panics): why\n// own line\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn raw_identifier_lexes_as_ident() {
        let src = "let r#type = 1; r#type.unwrap();";
        let lexed = lex(src);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "type"));
        assert!(idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let a = \"line\nbreak\";\nlet b = 2;";
        let lexed = lex(src);
        let b_tok = lexed
            .toks
            .iter()
            .find(|t| t.text == "b")
            .map(|t| t.line);
        assert_eq!(b_tok, Some(3));
    }
}
