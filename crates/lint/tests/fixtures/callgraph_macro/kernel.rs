//! Macro-generated-body fixture, shaped like the workspace's
//! `wavefront_i16_kernel!` idiom: each item-position invocation of a
//! workspace `macro_rules!` whose body contains `fn $name(` synthesizes
//! one graph node named by the first identifier argument, whose body is
//! the macro's body range — so calls inside the macro body edge out of
//! every synthesized fn.

macro_rules! wavefront_i16_kernel {
    ($name:ident, $t:ty) => {
        pub fn $name(xs: &[$t]) -> i64 {
            let mut acc: i64 = 0;
            for x in xs {
                acc += helper(*x as i64);
            }
            acc
        }
    };
}

wavefront_i16_kernel!(kernel_i16, i16);
wavefront_i16_kernel!(kernel_i32, i32);

fn helper(x: i64) -> i64 {
    x + 1
}

pub fn execute() -> i64 {
    kernel_i16(&[1, 2]) + kernel_i32(&[3])
}
