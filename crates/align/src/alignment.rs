//! Positioned alignments between a target and a query sequence.

use crate::cigar::{AlignOp, Cigar};
use genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use serde::{Deserialize, Serialize};

/// A scored local alignment between a target and a query region.
///
/// Coordinates are half-open (`start..end`) on the forward strand of each
/// sequence; `cigar.target_len() == target_end - target_start` and likewise
/// for the query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alignment {
    /// Target start (inclusive).
    pub target_start: usize,
    /// Target end (exclusive).
    pub target_end: usize,
    /// Query start (inclusive).
    pub query_start: usize,
    /// Query end (exclusive).
    pub query_end: usize,
    /// Alignment operations.
    pub cigar: Cigar,
    /// Alignment score under the scoring scheme that produced it.
    pub score: i64,
}

impl Alignment {
    /// Creates an alignment and checks coordinate/CIGAR consistency.
    ///
    /// # Panics
    ///
    /// Panics if the CIGAR lengths disagree with the coordinate spans.
    pub fn new(
        target_start: usize,
        query_start: usize,
        cigar: Cigar,
        score: i64,
    ) -> Alignment {
        let target_end = target_start + cigar.target_len();
        let query_end = query_start + cigar.query_len();
        Alignment {
            target_start,
            target_end,
            query_start,
            query_end,
            cigar,
            score,
        }
    }

    /// Target span length.
    pub fn target_span(&self) -> usize {
        self.target_end - self.target_start
    }

    /// Query span length.
    pub fn query_span(&self) -> usize {
        self.query_end - self.query_start
    }

    /// Number of exactly matching base pairs.
    pub fn matches(&self) -> u64 {
        self.cigar.matches()
    }

    /// Fraction of aligned pairs that match.
    // lint: allow(determinism): display-only fraction; canonical_text carries score + CIGAR, never this value
    pub fn identity(&self) -> f64 {
        self.cigar.identity()
    }

    /// Verifies this alignment against the sequences: coordinates in
    /// bounds, CIGAR spans consistent, and `Match`/`Subst` ops agreeing
    /// with the actual bases. Returns a description of the first
    /// inconsistency.
    pub fn validate(&self, target: &Sequence, query: &Sequence) -> Result<(), String> {
        if self.target_end > target.len() || self.query_end > query.len() {
            return Err(format!(
                "alignment exceeds sequence bounds ({}..{} / {}..{})",
                self.target_start, self.target_end, self.query_start, self.query_end
            ));
        }
        if self.target_span() != self.cigar.target_len() {
            return Err("target span disagrees with cigar".into());
        }
        if self.query_span() != self.cigar.query_len() {
            return Err("query span disagrees with cigar".into());
        }
        let (mut t, mut q) = (self.target_start, self.query_start);
        for op in self.cigar.iter_ops() {
            match op {
                AlignOp::Match => {
                    if target[t] != query[q] || target[t] == Base::N {
                        return Err(format!("op '=' at t={t} q={q} on differing bases"));
                    }
                    t += 1;
                    q += 1;
                }
                AlignOp::Subst => {
                    if target[t] == query[q] && target[t] != Base::N {
                        return Err(format!("op 'X' at t={t} q={q} on equal bases"));
                    }
                    t += 1;
                    q += 1;
                }
                AlignOp::Insert => q += 1,
                AlignOp::Delete => t += 1,
            }
        }
        Ok(())
    }

    /// Recomputes the score of this alignment from the sequences under the
    /// given scoring scheme (each gap run charged open + len·extend).
    pub fn rescore(
        &self,
        target: &Sequence,
        query: &Sequence,
        w: &SubstitutionMatrix,
        gaps: &GapPenalties,
    ) -> i64 {
        let (mut t, mut q) = (self.target_start, self.query_start);
        let mut score = 0i64;
        for &(op, count) in self.cigar.runs() {
            match op {
                AlignOp::Match | AlignOp::Subst => {
                    for _ in 0..count {
                        score += w.score(target[t], query[q]) as i64;
                        t += 1;
                        q += 1;
                    }
                }
                AlignOp::Insert => {
                    score -= gaps.cost(count as usize);
                    q += count as usize;
                }
                AlignOp::Delete => {
                    score -= gaps.cost(count as usize);
                    t += count as usize;
                }
            }
        }
        score
    }

    /// Whether this alignment's target and query intervals both overlap
    /// `other`'s (used by anchor absorption).
    pub fn overlaps(&self, other: &Alignment) -> bool {
        let t_overlap =
            self.target_start < other.target_end && other.target_start < self.target_end;
        let q_overlap = self.query_start < other.query_end && other.query_start < self.query_end;
        t_overlap && q_overlap
    }

    /// Whether the diagonal point `(t, q)` lies on this alignment's path.
    pub fn contains_point(&self, t: usize, q: usize) -> bool {
        if !(self.target_start..self.target_end).contains(&t)
            || !(self.query_start..self.query_end).contains(&q)
        {
            return false;
        }
        let (mut ct, mut cq) = (self.target_start, self.query_start);
        for &(op, count) in self.cigar.runs() {
            let (dt, dq) = match op {
                AlignOp::Match | AlignOp::Subst => (count as usize, count as usize),
                AlignOp::Insert => (0, count as usize),
                AlignOp::Delete => (count as usize, 0),
            };
            if matches!(op, AlignOp::Match | AlignOp::Subst)
                && t >= ct
                && t < ct + dt
                && q >= cq
                && q < cq + dq
                && t - ct == q - cq
            {
                return true;
            }
            ct += dt;
            cq += dq;
            if ct > t && cq > q {
                break;
            }
        }
        false
    }
}

/// Builds a CIGAR by classifying aligned pairs of the given sequences.
///
/// `pairs` walk both sequences from the given starts applying ops;
/// `Match`/`Subst` are chosen per position, so callers that track only
/// "aligned vs gap" can delegate base comparison here.
#[derive(Debug)]
pub struct CigarBuilder<'a> {
    target: &'a Sequence,
    query: &'a Sequence,
    t: usize,
    q: usize,
    cigar: Cigar,
}

impl<'a> CigarBuilder<'a> {
    /// Starts building at the given coordinates.
    pub fn new(target: &'a Sequence, query: &'a Sequence, t: usize, q: usize) -> Self {
        CigarBuilder {
            target,
            query,
            t,
            q,
            cigar: Cigar::new(),
        }
    }

    /// Consumes one aligned pair, classifying match vs substitution.
    pub fn aligned(&mut self) {
        let op = if self.target[self.t] == self.query[self.q] && self.target[self.t] != Base::N {
            AlignOp::Match
        } else {
            AlignOp::Subst
        };
        self.cigar.push(op, 1);
        self.t += 1;
        self.q += 1;
    }

    /// Consumes `len` query bases as an insertion.
    pub fn insert(&mut self, len: u32) {
        self.cigar.push(AlignOp::Insert, len);
        self.q += len as usize;
    }

    /// Consumes `len` target bases as a deletion.
    pub fn delete(&mut self, len: u32) {
        self.cigar.push(AlignOp::Delete, len);
        self.t += len as usize;
    }

    /// Current target coordinate.
    pub fn target_pos(&self) -> usize {
        self.t
    }

    /// Current query coordinate.
    pub fn query_pos(&self) -> usize {
        self.q
    }

    /// Finishes and returns the CIGAR.
    pub fn finish(self) -> Cigar {
        self.cigar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs() -> (Sequence, Sequence) {
        ("ACGTACGT".parse().unwrap(), "ACGTTACGT".parse().unwrap())
    }

    #[test]
    fn new_computes_ends() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 4);
        c.push(AlignOp::Insert, 1);
        c.push(AlignOp::Match, 4);
        let a = Alignment::new(0, 0, c, 100);
        assert_eq!(a.target_end, 8);
        assert_eq!(a.query_end, 9);
        assert_eq!(a.target_span(), 8);
        assert_eq!(a.query_span(), 9);
    }

    #[test]
    fn validate_accepts_consistent_alignment() {
        let (t, q) = seqs();
        let mut b = CigarBuilder::new(&t, &q, 0, 0);
        for _ in 0..4 {
            b.aligned();
        }
        b.insert(1);
        for _ in 0..4 {
            b.aligned();
        }
        let a = Alignment::new(0, 0, b.finish(), 1);
        a.validate(&t, &q).unwrap();
        assert_eq!(a.matches(), 8);
        assert_eq!(a.identity(), 1.0);
    }

    #[test]
    fn validate_rejects_wrong_op() {
        let (t, q) = seqs();
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 5); // 5th pair is A vs T → mismatch
        let a = Alignment::new(0, 0, c, 0);
        assert!(a.validate(&t, &q).is_err());
    }

    #[test]
    fn rescore_matches_manual_computation() {
        let (t, q) = seqs();
        let w = SubstitutionMatrix::darwin_wga();
        let g = GapPenalties::darwin_wga();
        let mut b = CigarBuilder::new(&t, &q, 0, 0);
        for _ in 0..4 {
            b.aligned();
        }
        b.insert(1);
        for _ in 0..4 {
            b.aligned();
        }
        let a = Alignment::new(0, 0, b.finish(), 0);
        // matches: A,C,G,T,A,C,G,T = 91+100+100+91+91+100+100+91 = 764
        // gap of 1: 430+30 = 460
        assert_eq!(a.rescore(&t, &q, &w, &g), 764 - 460);
    }

    #[test]
    fn overlap_detection() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 10);
        let a = Alignment::new(0, 0, c.clone(), 0);
        let b = Alignment::new(5, 5, c.clone(), 0);
        let far = Alignment::new(100, 100, c, 0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&far));
    }

    #[test]
    fn contains_point_follows_path() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 3);
        c.push(AlignOp::Delete, 2);
        c.push(AlignOp::Match, 3);
        let a = Alignment::new(10, 20, c, 0);
        assert!(a.contains_point(10, 20));
        assert!(a.contains_point(12, 22));
        assert!(!a.contains_point(13, 23)); // inside the deletion
        assert!(a.contains_point(15, 23));
        assert!(!a.contains_point(9, 19));
        assert!(!a.contains_point(12, 21)); // off-diagonal
    }
}
