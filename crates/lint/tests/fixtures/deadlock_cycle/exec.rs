//! Deadlock fixture (cyclic): a retry stage feeds failures back into
//! the input queue — through a helper call, so the edge only appears
//! with call-summary propagation. Expected: 1 cycle.

pub fn execute() {
    let work_q: BoundedQueue<u32> = BoundedQueue::new(4);
    let done_q: BoundedQueue<u32> = BoundedQueue::new(4);
    scope(|s| {
        s.spawn(move || worker(&work_q, &done_q));
        s.spawn(move || reaper(&work_q, &done_q));
    });
}

fn worker(work_q: &BoundedQueue<u32>, done_q: &BoundedQueue<u32>) {
    while let Some(x) = work_q.pop() {
        let _ = done_q.push(x);
    }
}

fn reaper(work_q: &BoundedQueue<u32>, done_q: &BoundedQueue<u32>) {
    while let Some(x) = done_q.pop() {
        retry(work_q, x);
    }
}

fn retry(work_q: &BoundedQueue<u32>, x: u32) {
    let _ = work_q.push(x); // closes the loop: done_q -> work_q -> done_q
}
