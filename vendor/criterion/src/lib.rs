//! Offline minimal stand-in for the `criterion` bench-harness API subset
//! this workspace uses.
//!
//! Matches real criterion's behaviour under `cargo test`: bench targets are
//! built with `harness = false` and executed without the `--bench` flag, in
//! which case each benchmark closure runs **once** as a smoke test and the
//! binary exits. When invoked with `--bench` (via `cargo bench`), each
//! benchmark is timed over a fixed number of iterations and a
//! `name ... time-per-iter` line is printed. No statistics, plots, or
//! reports — the `wga-bench` *binaries* (Table/Figure generators) are the
//! repository's real measurement path.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Returns `true` when invoked by `cargo bench` (criterion's convention:
/// cargo passes `--bench` to bench binaries).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Opaque black box preventing the optimizer from removing computations.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value (mirrors
    /// `BenchmarkId::from_parameter`).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// Top-level handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Criterion
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), None, 10, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed iterations (criterion's sample count is
    /// repurposed directly as the iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher, &In),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let iters = if bench_mode() {
        sample_size.max(1) as u64
    } else {
        1
    };
    let mut bencher = Bencher {
        iters,
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    if bench_mode() {
        let per_iter = bencher.nanos_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / (per_iter * 1e-9))
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / (per_iter * 1e-9))
            }
            _ => String::new(),
        };
        println!("bench {label}: {per_iter:.0} ns/iter ({iters} iters){rate}");
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
