//! Cross-crate integration: the paper's headline sensitivity claims.

use darwin_wga::chain::chainer::chain_alignments;
use darwin_wga::chain::metrics;
use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SpeciesPair, SyntheticPair};
use rand::SeedableRng;

fn measure(params: WgaParams, pair: &SyntheticPair) -> (u64, i64) {
    let report = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
    let alignments = report.forward_alignments();
    let chains = chain_alignments(&alignments, 3000);
    (
        metrics::unique_matched_bases(&chains, &alignments),
        metrics::top_k_total(&chains, 10),
    )
}

#[test]
fn gapped_filtering_beats_ungapped_on_distant_pair() {
    // The ce11-cb4 regime: most conserved islands have no gap-free run
    // long enough for the ungapped filter.
    let sp = &SpeciesPair::paper_pairs()[0];
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let pair = SyntheticPair::generate(60_000, &sp.evolution_params(), &mut rng);

    let (lastz_bp, lastz_top10) = measure(WgaParams::lastz_baseline(), &pair);
    let (darwin_bp, darwin_top10) = measure(WgaParams::darwin_wga(), &pair);

    assert!(
        darwin_bp as f64 > 1.3 * lastz_bp as f64,
        "darwin {darwin_bp} vs lastz {lastz_bp}"
    );
    assert!(
        darwin_top10 > lastz_top10,
        "top10 darwin {darwin_top10} vs lastz {lastz_top10}"
    );
}

#[test]
fn improvement_grows_with_phylogenetic_distance() {
    // Table III's central trend, on three distances with a fixed seed.
    let mut ratios = Vec::new();
    for (i, distance) in [0.25f64, 0.6, 1.0].into_iter().enumerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40 + i as u64);
        let pair =
            SyntheticPair::generate(50_000, &EvolutionParams::at_distance(distance), &mut rng);
        let (lastz_bp, _) = measure(WgaParams::lastz_baseline(), &pair);
        let (darwin_bp, _) = measure(WgaParams::darwin_wga(), &pair);
        ratios.push(darwin_bp as f64 / lastz_bp.max(1) as f64);
    }
    assert!(
        ratios[2] > ratios[0],
        "ratio at 1.0 ({}) should beat ratio at 0.25 ({})",
        ratios[2],
        ratios[0]
    );
    assert!(ratios[2] > 1.25, "distant ratio {}", ratios[2]);
}

#[test]
fn exon_recovery_favours_gapped_filtering_at_distance() {
    let sp = &SpeciesPair::paper_pairs()[1]; // dm6-dp4
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let pair = SyntheticPair::generate(60_000, &sp.evolution_params(), &mut rng);

    let count = |params: WgaParams| {
        let report = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        let alignments = report.forward_alignments();
        let chains = chain_alignments(&alignments, 3000);
        metrics::exon_recovery(&chains, &alignments, &pair.target.conserved, 0.5).found
    };
    let lastz = count(WgaParams::lastz_baseline());
    let darwin = count(WgaParams::darwin_wga());
    assert!(darwin >= lastz, "darwin {darwin} vs lastz {lastz}");
    assert!(darwin > 0);
}

#[test]
fn transition_seeds_increase_sensitivity() {
    // §III-B: allowing one transition per seed costs (m+1)× lookups but
    // finds more alignments at distance.
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let pair = SyntheticPair::generate(40_000, &EvolutionParams::at_distance(0.8), &mut rng);

    let mut no_tr = WgaParams::darwin_wga();
    no_tr.dsoft.transitions = false;
    let with_tr = WgaParams::darwin_wga();

    let report_no = WgaPipeline::new(no_tr).run(&pair.target.sequence, &pair.query.sequence);
    let report_with = WgaPipeline::new(with_tr).run(&pair.target.sequence, &pair.query.sequence);

    assert!(report_with.workload.seeds > 10 * report_no.workload.seeds);
    assert!(
        report_with.total_matches() >= report_no.total_matches(),
        "with {} vs without {}",
        report_with.total_matches(),
        report_no.total_matches()
    );
}
