//! Golden-file regression for the assembly pipeline.
//!
//! A deterministic synthetic genome pair is checked in under
//! `tests/data/` together with the expected [`AssemblyReport`] rendering
//! (`AssemblyReport::canonical_text`). The test replays the full
//! seed→filter→extend pipeline over the checked-in FASTA for **both**
//! filter engines at 1 and 3 worker threads, and for **both executors**
//! (stage-barrier and streaming dataflow) at 1, 3 and 8 threads, and
//! requires the report to stay byte-identical in every configuration —
//! any behavioural drift in seeding, either BSW engine, extension,
//! chaining, the parallel driver or the dataflow executor shows up as a
//! diff against a file in version control.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_report -- --nocapture
//! ```
//!
//! then commit the updated files under `tests/data/`.

use darwin_wga::core::config::{FilterEngineKind, WgaParams};
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::genome_pipeline::{align_assemblies_with, AlignOptions};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// The deterministic input pair: two homologous chromosome pairs at
/// different distances (all-vs-all gives four pipeline runs, two of
/// them between unrelated chromosomes). Only used when regenerating —
/// the test itself reads the checked-in FASTA.
fn generate_assemblies() -> (Assembly, Assembly) {
    let mut target = Assembly::new("golden-target");
    let mut query = Assembly::new("golden-query");
    for (chrom_t, chrom_q, len, dist_milli, seed) in
        [("chrI", "chr1", 9_000usize, 200u64, 31u64), ("chrII", "chr2", 7_000, 350, 32)]
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = EvolutionParams::at_distance(dist_milli as f64 / 1000.0);
        let pair = SyntheticPair::generate(len, &params, &mut rng);
        target.push(chrom_t, pair.target.sequence.clone());
        query.push(chrom_q, pair.query.sequence);
    }
    (target, query)
}

fn load_assembly(name: &str, file: &str) -> Assembly {
    let path = data_dir().join(file);
    let reader = BufReader::new(fs::File::open(&path).unwrap_or_else(|e| {
        panic!(
            "cannot open {}: {e} — regenerate with GOLDEN_REGEN=1 cargo test --test golden_report",
            path.display()
        )
    }));
    Assembly::from_fasta(name, reader).expect("checked-in FASTA parses")
}

#[test]
fn golden_report_is_stable_across_engines_and_threads() {
    let dir = data_dir();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        fs::create_dir_all(&dir).expect("create tests/data");
        let (target, query) = generate_assemblies();
        target
            .to_fasta(fs::File::create(dir.join("golden.target.fa")).unwrap())
            .unwrap();
        query
            .to_fasta(fs::File::create(dir.join("golden.query.fa")).unwrap())
            .unwrap();
        let report = align_assemblies_with(
            &WgaParams::darwin_wga(),
            &target,
            &query,
            &AlignOptions::default(),
        )
        .expect("golden run succeeds");
        fs::write(dir.join("golden.report.txt"), report.canonical_text()).unwrap();
        println!("regenerated golden files in {}", dir.display());
        return;
    }

    let target = load_assembly("golden-target", "golden.target.fa");
    let query = load_assembly("golden-query", "golden.query.fa");
    let expected = fs::read_to_string(dir.join("golden.report.txt"))
        .expect("golden.report.txt present — regenerate with GOLDEN_REGEN=1");
    assert!(
        expected.contains("aln\t") && expected.ends_with('\n'),
        "golden report looks truncated"
    );

    for engine in [FilterEngineKind::Scalar, FilterEngineKind::Batched] {
        for threads in [1usize, 3] {
            let params = WgaParams::darwin_wga().with_filter_engine(engine);
            let options = AlignOptions {
                threads,
                ..AlignOptions::default()
            };
            let report = align_assemblies_with(&params, &target, &query, &options)
                .expect("pipeline run succeeds");
            assert_eq!(report.failed_pairs(), 0, "{engine:?}/{threads}t: failed pairs");
            let got = report.canonical_text();
            assert!(
                got == expected,
                "{engine:?} engine at {threads} thread(s) diverged from the \
                 golden report (got {} bytes, expected {})",
                got.len(),
                expected.len()
            );
        }
    }

    // Both executors at 1, 3 and 8 threads reproduce the same bytes —
    // the gate for ever flipping the default to dataflow.
    for executor in [ExecutorKind::Barrier, ExecutorKind::Dataflow] {
        for threads in [1usize, 3, 8] {
            let options = AlignOptions {
                threads,
                executor,
                ..AlignOptions::default()
            };
            let report =
                align_assemblies_with(&WgaParams::darwin_wga(), &target, &query, &options)
                    .expect("pipeline run succeeds");
            assert_eq!(
                report.failed_pairs(),
                0,
                "{executor:?}/{threads}t: failed pairs"
            );
            let got = report.canonical_text();
            assert!(
                got == expected,
                "{executor:?} executor at {threads} thread(s) diverged from the \
                 golden report (got {} bytes, expected {})",
                got.len(),
                expected.len()
            );
            let metrics = report
                .stage_metrics
                .expect("every executor reports stage metrics");
            assert_eq!(metrics.executor, executor, "metrics tag their executor");
            assert_eq!(metrics.threads, threads);
        }
    }
}
