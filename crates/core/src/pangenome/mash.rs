//! Mash-style bottom-k k-mer sketches for genome-distance estimation.
//!
//! A sketch is the [`SKETCH_SIZE`] smallest hashes over a genome's
//! canonical [`SKETCH_K`]-mers; the proximity of two genomes is the
//! number of hashes their sketches share. Everything is integer-only —
//! no Jaccard ratios, no float distances — because sketch proximity
//! feeds the joblist, and the joblist feeds the canonical many-genome
//! report, which must stay byte-identical everywhere. A shared-hash
//! *count* over deterministic sketches is exactly as rankable as a
//! float distance and never rounds differently across platforms.

use genome::assembly::Assembly;
use std::collections::BTreeSet;

/// Sketch k-mer length. 16 bases fit one `u64` word at 2 bits/base
/// with room to spare and are specific enough that unrelated genomes
/// share almost nothing.
pub const SKETCH_K: usize = 16;

/// Bottom-k sketch size. 1024 hashes resolve genome distance well past
/// the kNN depths the orchestrator uses while costing ~8 KiB a genome.
pub const SKETCH_SIZE: usize = 1024;

/// A genome's bottom-k sketch: the smallest [`SKETCH_SIZE`] distinct
/// k-mer hashes, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    hashes: Vec<u64>,
}

/// SplitMix64 finalizer: a cheap, well-mixed, platform-independent
/// integer hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Sketch {
    /// Sketches every chromosome of an assembly. K-mers containing `N`
    /// are skipped; each k-mer is hashed in canonical orientation
    /// (minimum of forward and reverse-complement encodings) so a
    /// reverse-complemented genome sketches identically.
    pub fn of_assembly(assembly: &Assembly) -> Sketch {
        let mask = (1u64 << (2 * SKETCH_K)) - 1;
        let rc_shift = 2 * (SKETCH_K - 1);
        let mut bottom: BTreeSet<u64> = BTreeSet::new();
        for chrom in assembly.chromosomes() {
            let mut fwd = 0u64;
            let mut rev = 0u64;
            let mut valid = 0usize;
            for base in chrom.sequence.iter() {
                let code = u64::from(base.code());
                if code > 3 {
                    valid = 0;
                    continue;
                }
                fwd = ((fwd << 2) | code) & mask;
                rev = (rev >> 2) | ((3 - code) << rc_shift);
                valid += 1;
                if valid < SKETCH_K {
                    continue;
                }
                let hash = mix64(fwd.min(rev));
                if bottom.len() < SKETCH_SIZE {
                    bottom.insert(hash);
                } else if let Some(&max) = bottom.last() {
                    if hash < max && bottom.insert(hash) {
                        bottom.pop_last();
                    }
                }
            }
        }
        Sketch {
            hashes: bottom.into_iter().collect(),
        }
    }

    /// Number of hashes in the sketch (< [`SKETCH_SIZE`] only for tiny
    /// genomes).
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when the genome had no valid k-mer at all.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Number of hashes two sketches share — the integer proximity the
    /// kNN graph ranks by. Symmetric; higher means closer.
    pub fn shared_with(&self, other: &Sketch) -> u64 {
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0u64);
        while i < self.hashes.len() && j < other.hashes.len() {
            match self.hashes[i].cmp(&other.hashes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use genome::Sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assembly(name: &str, seq: Sequence) -> Assembly {
        let mut a = Assembly::new(name);
        a.push("chr", seq);
        a
    }

    #[test]
    fn sketch_is_deterministic_and_self_similar() {
        let mut rng = StdRng::seed_from_u64(3);
        let pair = SyntheticPair::generate(8_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let a = assembly("a", pair.target.sequence.clone());
        let s1 = Sketch::of_assembly(&a);
        let s2 = Sketch::of_assembly(&a);
        assert_eq!(s1, s2);
        assert_eq!(s1.shared_with(&s1), s1.len() as u64);
        assert!(s1.len() > 0);
    }

    #[test]
    fn related_genomes_share_more_than_unrelated() {
        let mut rng = StdRng::seed_from_u64(9);
        let near = SyntheticPair::generate(10_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let far = SyntheticPair::generate(10_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let a = Sketch::of_assembly(&assembly("a", near.target.sequence.clone()));
        let b = Sketch::of_assembly(&assembly("b", near.query.sequence.clone()));
        let c = Sketch::of_assembly(&assembly("c", far.target.sequence.clone()));
        assert!(
            a.shared_with(&b) > 4 * a.shared_with(&c),
            "siblings {} vs strangers {}",
            a.shared_with(&b),
            a.shared_with(&c)
        );
    }

    #[test]
    fn reverse_complement_sketches_identically() {
        let mut rng = StdRng::seed_from_u64(5);
        let pair = SyntheticPair::generate(6_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let fwd = assembly("f", pair.target.sequence.clone());
        let rev = assembly("r", pair.target.sequence.reverse_complement());
        assert_eq!(Sketch::of_assembly(&fwd), Sketch::of_assembly(&rev));
    }

    #[test]
    fn n_runs_are_skipped_not_hashed() {
        let clean: Sequence = "ACGTACGTACGTACGTACGT".repeat(4).parse().unwrap();
        let spiked: Sequence = format!("{}N{}", "ACGTACGTACGTACGTACGT".repeat(2), "ACGTACGTACGTACGTACGT".repeat(2))
            .parse()
            .unwrap();
        let s_clean = Sketch::of_assembly(&assembly("c", clean));
        let s_spiked = Sketch::of_assembly(&assembly("s", spiked));
        // Every spiked hash comes from an N-free window, so it must
        // also appear in the clean sketch.
        assert_eq!(
            s_spiked.shared_with(&s_clean),
            s_spiked.len() as u64,
            "N-window k-mers leaked into the sketch"
        );
    }
}
