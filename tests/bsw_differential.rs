//! Differential-oracle harness: three filter engines against each other.
//!
//! `align::bsw_fast` re-derives the banded DP in anti-diagonal order over
//! reused buffers, and `align::bsw_simd` re-derives it again with explicit
//! `i16` SIMD lanes (SSE2/AVX2) plus an exact `i32` fallback. This harness
//! proves both rewrites are *bit-identical* to
//! `align::banded::banded_smith_waterman` — same `max_score`, same argmax
//! coordinates (including the scalar's row-major tie-break), same cell
//! counts — over thousands of seeded-random tiles, adversarial
//! constructions (including lane-boundary lengths and saturation-edge
//! tiles), and whole-pipeline runs, and that all three engines pass the
//! exact same set of tiles at the paper's `H_f = 4000` threshold.

use darwin_wga::align::banded::{banded_smith_waterman, tile_around, BandedOutcome};
use darwin_wga::align::bsw_fast::{
    banded_smith_waterman_wavefront, encode, bsw_wavefront, BswBatch, ScoreLut, WavefrontScratch,
};
use darwin_wga::align::bsw_simd::{banded_smith_waterman_simd, BswSimdBatch, SimdScratch};
use darwin_wga::core::config::{FilterEngineKind, WgaParams};
use darwin_wga::core::parallel::run_parallel;
use darwin_wga::core::pipeline::WgaPipeline;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use darwin_wga::genome::{Base, GapPenalties, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THRESHOLD: i64 = 4000;

fn scoring() -> (SubstitutionMatrix, GapPenalties) {
    (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
}

/// Reusable scratch for all three engines under comparison.
struct Oracle {
    wave: WavefrontScratch,
    simd: SimdScratch,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle { wave: WavefrontScratch::new(), simd: SimdScratch::new() }
    }
}

/// Runs all three kernels on one tile and asserts the full outcomes match.
/// Returns the (shared) outcome so callers can build surviving sets.
fn check_tile(t: &[Base], q: &[Base], band: usize, scratch: &mut Oracle) -> BandedOutcome {
    let (w, g) = scoring();
    let scalar = banded_smith_waterman(t, q, &w, &g, band);
    let fast = banded_smith_waterman_wavefront(t, q, &w, &g, band, &mut scratch.wave);
    assert_eq!(
        scalar,
        fast,
        "scalar vs batched disagree: band={band} n={} m={}",
        t.len(),
        q.len()
    );
    let simd = banded_smith_waterman_simd(t, q, &w, &g, band, &mut scratch.simd);
    assert_eq!(
        scalar,
        simd,
        "scalar vs simd disagree: band={band} n={} m={}",
        t.len(),
        q.len()
    );
    scalar
}

fn random_bases(rng: &mut StdRng, len: usize, n_fraction_millis: u64) -> Vec<Base> {
    (0..len)
        .map(|_| {
            if rng.gen_range(0u64..1000) < n_fraction_millis {
                Base::N
            } else {
                Base::from_code(rng.gen_range(0u8..4))
            }
        })
        .collect()
}

/// A noisy copy of `t` with substitutions and indels (indel-dense, so
/// optima wander off the main diagonal and stress the band edges).
fn mutate(rng: &mut StdRng, t: &[Base], sub_p: f64, indel_p: f64) -> Vec<Base> {
    let mut out = Vec::with_capacity(t.len() + 8);
    for &b in t {
        if rng.gen_bool(indel_p) {
            if rng.gen_bool(0.5) {
                continue; // deletion
            }
            out.push(Base::from_code(rng.gen_range(0u8..4))); // insertion
        }
        if rng.gen_bool(sub_p) {
            out.push(Base::from_code(rng.gen_range(0u8..4)));
        } else {
            out.push(b);
        }
    }
    out
}

#[test]
fn thousand_seeded_random_tiles_are_identical() {
    let mut scratch = Oracle::new();
    let bands = [1usize, 2, 3, 8, 32, 64, 513];
    let mut tiles = 0u64;
    // Unrelated random sequences (noise tiles: the filter's common case).
    for seed in 0..250 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let n = rng.gen_range(1usize..400);
        let m = rng.gen_range(1usize..400);
        let t = random_bases(&mut rng, n, 20);
        let q = random_bases(&mut rng, m, 20);
        check_tile(&t, &q, bands[seed as usize % bands.len()], &mut scratch);
        tiles += 1;
    }
    // Related tiles: noisy copies with indels at escalating rates, where
    // scores are high and tie-breaks actually matter.
    for seed in 0..500 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n = rng.gen_range(8usize..380);
        let t = random_bases(&mut rng, n, 5);
        let sub_p = 0.02 + 0.3 * (seed % 7) as f64 / 7.0;
        let indel_p = 0.01 + 0.15 * (seed % 5) as f64 / 5.0;
        let q = mutate(&mut rng, &t, sub_p, indel_p);
        if q.is_empty() {
            continue;
        }
        check_tile(&t, &q, bands[seed as usize % bands.len()], &mut scratch);
        tiles += 1;
    }
    // Evolved genome windows (the pipeline's real tile distribution).
    for (i, milli) in [80u64, 200, 350, 500].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(3000 + i as u64);
        let pair = SyntheticPair::generate(
            14_000,
            &EvolutionParams::at_distance(milli as f64 / 1000.0),
            &mut rng,
        );
        let (t, q) = (&pair.target.sequence, &pair.query.sequence);
        for k in 0..80 {
            let pos = 100 + k * 160;
            let (tr, qr) = tile_around(pos, pos, 320, t.len(), q.len());
            check_tile(&t.as_slice()[tr], &q.as_slice()[qr], 32, &mut scratch);
            tiles += 1;
        }
    }
    assert!(tiles >= 1000, "only {tiles} tiles exercised");
}

#[test]
fn adversarial_all_gap_tiles() {
    // Optimal paths forced through long gaps: the query is the target
    // with a large block deleted / the target with a block inserted.
    let mut scratch = Oracle::new();
    let mut rng = StdRng::seed_from_u64(77);
    for &(block, band) in &[(10usize, 32usize), (40, 32), (31, 32), (33, 32), (64, 80)] {
        let t = random_bases(&mut rng, 320, 0);
        let mut q = t.clone();
        q.drain(140..140 + block);
        check_tile(&t, &q, band, &mut scratch);
        check_tile(&q, &t, band, &mut scratch);
    }
    // Pure gap vs gap: sequences sharing nothing but one base.
    let t = vec![Base::A; 64];
    let q = vec![Base::C; 64];
    check_tile(&t, &q, 8, &mut scratch);
}

#[test]
fn adversarial_homopolymer_ties() {
    // Homopolymers maximise score ties: every diagonal cell of the block
    // reaches the same maximum, so the argmax is decided purely by the
    // scalar's row-major first-improvement rule. Any tie-break slip in
    // the wavefront order shows up here.
    let mut scratch = Oracle::new();
    for (n, m) in [(60usize, 60usize), (60, 45), (45, 60), (320, 317), (1, 300)] {
        let t = vec![Base::A; n];
        let q = vec![Base::A; m];
        for band in [1, 2, 16, 33, 400] {
            check_tile(&t, &q, band, &mut scratch);
        }
        // Alternating two-state repeats: ties along shifted diagonals too.
        let t: Vec<Base> = (0..n).map(|i| if i % 2 == 0 { Base::A } else { Base::C }).collect();
        let q: Vec<Base> = (0..m).map(|i| if i % 2 == 0 { Base::A } else { Base::C }).collect();
        for band in [1, 3, 32] {
            check_tile(&t, &q, band, &mut scratch);
        }
    }
}

#[test]
fn adversarial_band_edge_optimum() {
    // The optimum sits exactly on the band boundary |i - j| = band: the
    // query carries a `band`-base prefix insertion, so the best path
    // hugs the edge where out-of-band sentinel reads are adjacent.
    let mut rng = StdRng::seed_from_u64(88);
    let mut scratch = Oracle::new();
    for band in [1usize, 2, 8, 32] {
        let core = random_bases(&mut rng, 200, 0);
        for shift in [band.saturating_sub(1), band, band + 1] {
            let prefix = random_bases(&mut rng, shift, 0);
            let mut q = prefix;
            q.extend_from_slice(&core);
            check_tile(&core, &q, band, &mut scratch);
            check_tile(&q, &core, band, &mut scratch);
        }
    }
}

#[test]
fn degenerate_inputs_are_identical() {
    let mut scratch = Oracle::new();
    let (w, g) = scoring();
    for (t, q) in [
        (vec![], vec![]),
        (vec![Base::A], vec![]),
        (vec![], vec![Base::T]),
        (vec![Base::G], vec![Base::G]),
        (vec![Base::N; 50], vec![Base::N; 50]),
    ] {
        for band in [1usize, 7, 1000] {
            let scalar = banded_smith_waterman(&t, &q, &w, &g, band);
            let fast = banded_smith_waterman_wavefront(&t, &q, &w, &g, band, &mut scratch.wave);
            assert_eq!(scalar, fast);
            let simd = banded_smith_waterman_simd(&t, &q, &w, &g, band, &mut scratch.simd);
            assert_eq!(scalar, simd);
        }
    }
}

#[test]
fn lane_boundary_adversaries_are_identical() {
    // Tile dimensions chosen to straddle the SIMD lane widths (8 for
    // SSE2, 16 for AVX2): lengths congruent to 0, 1, and lane-1 mod the
    // lane width stress the ragged final vector and the epilogue masking.
    let mut scratch = Oracle::new();
    let mut rng = StdRng::seed_from_u64(50_505);
    for lane in [8usize, 16] {
        for mult in [1usize, 3, 20] {
            for delta in [0usize, 1, lane - 1] {
                let n = lane * mult + delta;
                for m in [n, n.saturating_sub(1).max(1), n + 1, lane, lane + 1] {
                    let t = random_bases(&mut rng, n, 10);
                    let q = mutate(&mut rng, &t[..m.min(t.len())], 0.1, 0.05);
                    let q = if q.is_empty() { vec![Base::A] } else { q };
                    check_tile(&t, &q, 32, &mut scratch);
                    check_tile(&q, &t, 32, &mut scratch);
                }
            }
        }
    }
    // Saturation boundary: identical homopolymer-free sequences of length
    // L score ~L*match, so lengths around i16::MAX / max_match straddle
    // the `tile_uses_simd` cutoff — both the widest i16 tiles and the
    // first i32-fallback tiles get exercised, and must agree either way.
    let (w, _) = scoring();
    let max_match = (0u8..4)
        .flat_map(|a| (0u8..4).map(move |b| (a, b)))
        .map(|(a, b)| w.score(Base::from_code(a), Base::from_code(b)))
        .max()
        .unwrap() as i64;
    let cutoff = (i16::MAX as i64 / max_match.max(1)) as usize;
    for len in [cutoff.saturating_sub(1), cutoff, cutoff + 1, cutoff + 17] {
        let t = random_bases(&mut rng, len, 0);
        check_tile(&t, &t, 32, &mut scratch);
        let q = mutate(&mut rng, &t, 0.05, 0.02);
        check_tile(&t, &q, 32, &mut scratch);
    }
    // All-N tiles: every substitution is the N penalty, a uniform
    // negative plane where the empty alignment (score 0 at the origin)
    // must win identically in every engine.
    for (n, m) in [(7usize, 7usize), (8, 8), (9, 16), (15, 17), (33, 64), (129, 127)] {
        let t = vec![Base::N; n];
        let q = vec![Base::N; m];
        check_tile(&t, &q, 32, &mut scratch);
    }
}

#[test]
fn surviving_tile_sets_are_identical() {
    // The acceptance property the pipeline actually depends on: all
    // three engines pass exactly the same tiles at H_f = 4000.
    let (w, g) = scoring();
    let mut rng = StdRng::seed_from_u64(4242);
    let pair = SyntheticPair::generate(40_000, &EvolutionParams::at_distance(0.35), &mut rng);
    let (t, q) = (&pair.target.sequence, &pair.query.sequence);
    let batch = BswBatch::new(t.as_slice(), q.as_slice(), &w, &g, 32);
    let simd_batch = BswSimdBatch::new(t.as_slice(), q.as_slice(), &w, &g, 32);
    let mut scratch = WavefrontScratch::new();
    let mut simd_scratch = SimdScratch::new();
    let mut scalar_survivors = Vec::new();
    let mut batched_survivors = Vec::new();
    let mut simd_survivors = Vec::new();
    let mut jitter = StdRng::seed_from_u64(4343);
    for k in 0..240usize {
        let tpos = 160 + k * 160;
        let qpos = tpos.saturating_sub(jitter.gen_range(0usize..48));
        let (tr, qr) = tile_around(tpos, qpos, 320, t.len(), q.len());
        let scalar = banded_smith_waterman(&t.as_slice()[tr.clone()], &q.as_slice()[qr.clone()], &w, &g, 32);
        let fast = batch.run_tile(tr.clone(), qr.clone(), &mut scratch);
        assert_eq!(scalar, fast, "tile {k}");
        let simd = simd_batch.run_tile(tr, qr, &mut simd_scratch);
        assert_eq!(scalar, simd, "tile {k} (simd)");
        if scalar.max_score >= THRESHOLD {
            scalar_survivors.push(k);
        }
        if fast.max_score >= THRESHOLD {
            batched_survivors.push(k);
        }
        if simd.max_score >= THRESHOLD {
            simd_survivors.push(k);
        }
    }
    assert_eq!(scalar_survivors, batched_survivors);
    assert_eq!(scalar_survivors, simd_survivors);
    assert!(
        !scalar_survivors.is_empty(),
        "test needs some surviving tiles to be meaningful"
    );
    assert!(
        scalar_survivors.len() < 240,
        "test needs some rejected tiles to be meaningful"
    );
}

#[test]
fn encoded_kernel_matches_base_wrapper() {
    // The low-level encoded entry point and the &[Base] wrapper agree.
    let (w, g) = scoring();
    let mut rng = StdRng::seed_from_u64(99);
    let t = random_bases(&mut rng, 300, 30);
    let q = mutate(&mut rng, &t, 0.1, 0.05);
    let lut = ScoreLut::new(&w);
    let mut scratch = WavefrontScratch::new();
    let a = bsw_wavefront(&encode(&t), &encode(&q), &lut, &g, 32, &mut scratch);
    let b = banded_smith_waterman_wavefront(&t, &q, &w, &g, 32, &mut scratch);
    assert_eq!(a, b);
}

#[test]
fn whole_pipeline_identical_across_engines_and_threads() {
    // End-to-end: scalar, batched, and simd engines, serial and parallel
    // at several widths, all produce the identical report on the same
    // pair — including with intra-pair sharding forced on via a small
    // shard size.
    let mut rng = StdRng::seed_from_u64(606);
    let pair = SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.3), &mut rng);
    let (t, q) = (&pair.target.sequence, &pair.query.sequence);
    let scalar_params = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Scalar);
    let batched_params = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Batched);
    let simd_params = WgaParams::darwin_wga()
        .with_filter_engine(FilterEngineKind::Simd)
        .with_shard_bases(512);
    let reference = WgaPipeline::new(scalar_params.clone()).run(t, q);
    assert!(
        !reference.alignments.is_empty(),
        "pipeline must produce alignments for the comparison to bite"
    );
    for (name, report) in [
        ("batched serial", WgaPipeline::new(batched_params.clone()).run(t, q)),
        ("simd serial", WgaPipeline::new(simd_params.clone()).run(t, q)),
        ("scalar 3 threads", run_parallel(&scalar_params, t, q, 3)),
        ("batched 3 threads", run_parallel(&batched_params, t, q, 3)),
        ("simd 3 threads", run_parallel(&simd_params, t, q, 3)),
        ("simd 8 threads", run_parallel(&simd_params, t, q, 8)),
        ("batched 8 threads", run_parallel(&batched_params, t, q, 8)),
    ] {
        assert_eq!(reference.alignments, report.alignments, "{name}");
        assert_eq!(reference.workload, report.workload, "{name}");
        // spec_discard measures speculation waste and varies with the
        // thread schedule; every other counter must match exactly.
        assert_eq!(
            reference.counters.deterministic_view(),
            report.counters.deterministic_view(),
            "{name}"
        );
    }
}
