//! Distributions: `Standard` and uniform range sampling, matching the
//! `rand` 0.8 algorithms bit-for-bit.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats via
/// the 53-bit (f64) / 24-bit (f32) multiply method, sign-bit booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! standard_int_32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
macro_rules! standard_int_64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int_32!(u8, i8, u16, i16, u32, i32);
standard_int_64!(u64, i64, usize, isize);

/// Uniform range sampling (mirrors `rand::distributions::uniform`).
pub mod uniform {
    use crate::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a single uniform sample (mirrors
    /// `SampleRange`).
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    /// Types with a uniform single-sample implementation.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Samples from the half-open range `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples from the closed range `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
        // `!(a < b)` and not `a >= b`: the two differ for incomparable
        // values (float NaN), and upstream rand uses the negated form.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single_inclusive(*self.start(), *self.end(), rng)
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    /// Widening multiply returning `(high, low)` halves of the product —
    /// the `WideningMultiply` helper from upstream.
    trait WideMul: Sized {
        fn wmul(self, rhs: Self) -> (Self, Self);
    }
    impl WideMul for u32 {
        fn wmul(self, rhs: u32) -> (u32, u32) {
            let product = self as u64 * rhs as u64;
            ((product >> 32) as u32, product as u32)
        }
    }
    impl WideMul for u64 {
        fn wmul(self, rhs: u64) -> (u64, u64) {
            let product = self as u128 * rhs as u128;
            ((product >> 64) as u64, product as u64)
        }
    }
    impl WideMul for usize {
        fn wmul(self, rhs: usize) -> (usize, usize) {
            let (high, low) = (self as u64).wmul(rhs as u64);
            (high as usize, low as usize)
        }
    }

    // Mirrors `uniform_int_impl! { $ty, $unsigned, $u_large }`: the Lemire
    // widening-multiply method with the upstream zone computation, so the
    // consumed RNG stream matches rand 0.8 exactly.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    assert!(low < high, "gen_range: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    assert!(low <= high, "gen_range: low > high");
                    let range =
                        high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // The whole domain: any sample is in range.
                        return rng.gen::<$ty>();
                    }
                    let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                        // Small types use an exact modulus...
                        let unsigned_max: $u_large = <$u_large>::MAX;
                        let ints_to_reject = (unsigned_max - range + 1) % range;
                        unsigned_max - ints_to_reject
                    } else {
                        // ...larger types the conservative approximation.
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.gen();
                        let (high_part, low_part) = v.wmul(range);
                        if low_part <= zone {
                            return low.wrapping_add(high_part as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl! { i8, u8, u32 }
    uniform_int_impl! { i16, u16, u32 }
    uniform_int_impl! { i32, u32, u32 }
    uniform_int_impl! { i64, u64, u64 }
    uniform_int_impl! { isize, usize, usize }
    uniform_int_impl! { u8, u8, u32 }
    uniform_int_impl! { u16, u16, u32 }
    uniform_int_impl! { u32, u32, u32 }
    uniform_int_impl! { u64, u64, u64 }
    uniform_int_impl! { usize, usize, usize }

    impl SampleUniform for f64 {
        fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
            debug_assert!(low < high, "gen_range: low >= high");
            let mut scale = high - low;
            assert!(scale >= 0.0, "gen_range: range overflow");
            loop {
                // A value in [1, 2): 52 random mantissa bits under a fixed
                // exponent, then shift down to [0, 1) — upstream's
                // `into_float_with_exponent(0)` method.
                let bits_to_discard = 64 - 52;
                let value1_2 =
                    f64::from_bits((rng.next_u64() >> bits_to_discard) | (1023u64 << 52));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res < high {
                    return res;
                }
                // Edge case: rounding hit `high`; nudge the scale down one
                // ulp (upstream `decrease_masked`).
                scale = f64::from_bits(scale.to_bits() - 1);
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: f64,
            high: f64,
            rng: &mut R,
        ) -> f64 {
            // Upstream samples inclusive float ranges through the scaled
            // [0, 1] method; the workspace never uses it, so the half-open
            // sampler is an adequate stand-in kept for API completeness.
            f64::sample_single(low, f64::from_bits(high.to_bits() + 1), rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn integer_sampling_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[usize::sample_single(0, 5, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
