//! Differential oracle for the ungapped X-drop extension — and the
//! sensitivity gap it opens (paper Fig. 1 / Fig. 2).
//!
//! [`align::ungapped::ungapped_extend`] is the LASTZ-style gap-free
//! filter Darwin-WGA replaces with banded Smith-Waterman. Two layers:
//!
//! 1. **Differential**: with an effectively unbounded X-drop the
//!    extension must return exactly the maximal-scoring contiguous
//!    diagonal segment covering the seed. A brute-force O(L²) oracle
//!    (`naive_best_covering_segment`) recomputes that maximum with no
//!    prefix-max trick and no early termination; scores must agree on
//!    random, mutated, and evolved exon-island inputs. Finite X-drops
//!    can only lose score, monotonically in the X-drop value, and every
//!    reported segment must re-sum to its reported score.
//! 2. **Sensitivity gap**: on an indel-dense synthetic species pair,
//!    conserved exon islands are matched between the lineages by label
//!    and both filters run at their paper operating points — ungapped
//!    X-drop 910 / threshold 3000 (LASTZ `hsp`) vs banded SW tile 320 /
//!    band 32 / threshold 4000 (Darwin-WGA). Indels fragment the
//!    gap-free runs below the ungapped threshold while the gapped tile
//!    still clears its own, strictly higher, threshold: the gapped
//!    filter must pass strictly more islands, with at least one island
//!    that only it recovers.

use darwin_wga::align::banded::{banded_smith_waterman, tile_around};
use darwin_wga::align::ungapped::{ungapped_extend, UngappedOutcome};
use darwin_wga::genome::annotation::Interval;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use darwin_wga::genome::{Base, GapPenalties, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Effectively unbounded X-drop: extension only stops at a sequence end.
const HUGE_XDROP: i32 = i32::MAX / 4;

fn random_bases(rng: &mut StdRng, len: usize) -> Vec<Base> {
    (0..len).map(|_| Base::from_code(rng.gen_range(0..4))).collect()
}

/// A mutated copy of `src`: per-base substitution and indel noise.
fn mutate(rng: &mut StdRng, src: &[Base], sub_p: f64, indel_p: f64) -> Vec<Base> {
    let mut out = Vec::with_capacity(src.len() + 8);
    for &b in src {
        if rng.gen_bool(indel_p) {
            if rng.gen_bool(0.5) {
                continue; // deletion
            }
            out.push(Base::from_code(rng.gen_range(0..4))); // insertion
        }
        if rng.gen_bool(sub_p) {
            out.push(Base::from_code(rng.gen_range(0..4)));
        } else {
            out.push(b);
        }
    }
    out
}

/// Brute-force oracle: the best score over every contiguous diagonal
/// segment `[a, b)` with `a <= seed_t` and `b >= seed_t + seed_len`,
/// summed cell by cell. Quadratic on purpose — it shares no code or
/// algorithmic idea (prefix maxima, X-drop) with the implementation.
fn naive_best_covering_segment(
    target: &[Base],
    query: &[Base],
    seed_t: usize,
    seed_q: usize,
    seed_len: usize,
    w: &SubstitutionMatrix,
) -> i64 {
    let back = seed_t.min(seed_q);
    let fwd = (target.len() - seed_t).min(query.len() - seed_q);
    assert!(fwd >= seed_len, "seed outside sequences");
    let mut best = i64::MIN;
    for a in 0..=back {
        let (start_t, start_q) = (seed_t - a, seed_q - a);
        let min_len = a + seed_len;
        let max_len = a + fwd;
        let mut sum = 0i64;
        for k in 0..max_len {
            sum += w.score(target[start_t + k], query[start_q + k]) as i64;
            if k + 1 >= min_len && sum > best {
                best = sum;
            }
        }
    }
    best
}

/// Re-sums the reported segment directly from the sequences.
fn segment_score(
    target: &[Base],
    query: &[Base],
    out: &UngappedOutcome,
    w: &SubstitutionMatrix,
) -> i64 {
    (0..out.target_end - out.target_start)
        .map(|k| w.score(target[out.target_start + k], query[out.query_start + k]) as i64)
        .sum()
}

/// Checks the three invariants every extension result must satisfy, and
/// returns its score: the segment covers the seed, the segment re-sums
/// to the reported score, and the score never exceeds the brute-force
/// covering-segment optimum.
#[allow(clippy::too_many_arguments)] // mirrors ungapped_extend's own signature
fn check_extension(
    target: &[Base],
    query: &[Base],
    seed_t: usize,
    seed_q: usize,
    seed_len: usize,
    w: &SubstitutionMatrix,
    xdrop: i32,
    naive: i64,
) -> i64 {
    let out = ungapped_extend(target, query, seed_t, seed_q, seed_len, w, xdrop);
    assert!(
        out.target_start <= seed_t && out.target_end >= seed_t + seed_len,
        "segment [{}, {}) does not cover seed at {} (len {})",
        out.target_start,
        out.target_end,
        seed_t,
        seed_len
    );
    assert_eq!(
        out.query_start,
        seed_q - (seed_t - out.target_start),
        "segment left the seed diagonal"
    );
    assert_eq!(
        segment_score(target, query, &out, w),
        out.score,
        "reported segment does not re-sum to the reported score"
    );
    assert!(
        out.score <= naive,
        "xdrop {xdrop}: score {} beats the brute-force optimum {naive}",
        out.score
    );
    out.score
}

#[test]
fn unbounded_xdrop_equals_naive_on_random_and_mutated_pairs() {
    let w = SubstitutionMatrix::darwin_wga();
    for trial in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(4000 + trial);
        let len = 40 + (trial as usize * 7) % 360;
        let t = random_bases(&mut rng, len);
        let q = if trial % 2 == 0 {
            mutate(&mut rng, &t, 0.15, 0.08) // homolog: indel-dense copy
        } else {
            random_bases(&mut rng, len + 13) // unrelated noise
        };
        for frac in 0..4usize {
            let seed_t = (len * frac / 4).min(t.len() - 1);
            let seed_q = seed_t.min(q.len() - 1);
            let room = (t.len() - seed_t).min(q.len() - seed_q);
            let seed_len = room.min(11);
            if seed_len == 0 {
                continue;
            }
            let naive = naive_best_covering_segment(&t, &q, seed_t, seed_q, seed_len, &w);
            let got = check_extension(&t, &q, seed_t, seed_q, seed_len, &w, HUGE_XDROP, naive);
            assert_eq!(
                got, naive,
                "trial {trial} seed {seed_t}: unbounded X-drop must find the optimum"
            );
        }
    }
}

#[test]
fn finite_xdrop_is_bounded_by_naive_and_monotone() {
    let w = SubstitutionMatrix::darwin_wga();
    for trial in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(6000 + trial);
        let len = 60 + (trial as usize * 11) % 300;
        let t = random_bases(&mut rng, len);
        let q = mutate(&mut rng, &t, 0.2, 0.1);
        let seed_t = len / 3;
        let seed_q = seed_t.min(q.len().saturating_sub(9));
        let seed_len = 8.min((t.len() - seed_t).min(q.len() - seed_q));
        if seed_len == 0 {
            continue;
        }
        let naive = naive_best_covering_segment(&t, &q, seed_t, seed_q, seed_len, &w);
        // A larger X-drop scans a superset of diagonal cells, so the
        // prefix maximum — hence the score — is monotone in the X-drop,
        // and the unbounded limit is exactly the naive optimum.
        let mut prev = i64::MIN;
        for xdrop in [0, 50, 250, 910, HUGE_XDROP] {
            let score = check_extension(&t, &q, seed_t, seed_q, seed_len, &w, xdrop, naive);
            assert!(
                score >= prev,
                "trial {trial}: score fell from {prev} to {score} as X-drop grew to {xdrop}"
            );
            prev = score;
        }
        assert_eq!(prev, naive, "trial {trial}: unbounded X-drop != naive optimum");
    }
}

#[test]
fn unbounded_xdrop_equals_naive_on_evolved_exon_islands() {
    let w = SubstitutionMatrix::darwin_wga();
    let mut rng = StdRng::seed_from_u64(777);
    // Distance 0.5 with the default conserved_indel_factor keeps islands
    // recognisable but indel-dense — the regime the paper targets.
    let pair = SyntheticPair::generate(12_000, &EvolutionParams::at_distance(0.5), &mut rng);
    let mut orth = pair.orthologous_pairs();
    orth.sort_unstable();
    let t = pair.target.sequence.as_slice();
    let q = pair.query.sequence.as_slice();

    // Window the comparison to ±600 around each anchor so the quadratic
    // oracle stays cheap; both sides see the identical windowed input.
    const HALF: usize = 600;
    let mut checked = 0usize;
    for iv in &pair.target.conserved {
        let lo = orth.partition_point(|&(tp, _)| tp < iv.start);
        let Some(&(tp, qp)) = orth.get(lo).filter(|&&(tp, _)| tp < iv.end) else {
            continue;
        };
        let back = tp.min(qp).min(HALF);
        let (t0, q0) = (tp - back, qp - back);
        let tw = &t[t0..(tp + HALF).min(t.len())];
        let qw = &q[q0..(qp + HALF).min(q.len())];
        let (seed_t, seed_q) = (tp - t0, qp - q0);
        let seed_len = 19.min((tw.len() - seed_t).min(qw.len() - seed_q));
        if seed_len == 0 {
            continue;
        }
        let naive = naive_best_covering_segment(tw, qw, seed_t, seed_q, seed_len, &w);
        let got = check_extension(tw, qw, seed_t, seed_q, seed_len, &w, HUGE_XDROP, naive);
        assert_eq!(got, naive, "island {:?} at target {}", iv.label, tp);
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} islands had orthologous anchors");
}

#[test]
fn gapped_filter_recovers_islands_the_ungapped_filter_drops() {
    // Paper operating points: LASTZ ungapped hsp (X-drop 910, threshold
    // 3000) vs the Darwin-WGA banded SW filter (tile 320, band 32,
    // threshold 4000). On a distant, indel-dense pair the gap-free runs
    // inside conserved islands fragment below the ungapped threshold
    // while the banded tile — which absorbs the indels — still clears a
    // *higher* threshold. This is Fig. 1's sensitivity argument in test
    // form.
    let w = SubstitutionMatrix::darwin_wga();
    let gaps = GapPenalties::darwin_wga();
    let mut rng = StdRng::seed_from_u64(20_260_805);
    let pair = SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.45), &mut rng);
    let mut orth = pair.orthologous_pairs();
    orth.sort_unstable();
    let t = pair.target.sequence.as_slice();
    let q = pair.query.sequence.as_slice();

    // Match conserved islands across the lineages by their ancestral
    // label ("exon_N"); islands deleted in either lineage drop out.
    let query_islands: HashMap<&str, &Interval> = pair
        .query
        .conserved
        .iter()
        .map(|iv| (iv.label.as_str(), iv))
        .collect();

    let (mut islands, mut gapped_pass, mut ungapped_pass, mut gapped_only) = (0, 0, 0, 0);
    for iv in &pair.target.conserved {
        let Some(qiv) = query_islands.get(iv.label.as_str()) else {
            continue;
        };
        let lo = orth.partition_point(|&(tp, _)| tp < iv.start);
        let anchors: Vec<(usize, usize)> = orth[lo..]
            .iter()
            .take_while(|&&(tp, _)| tp < iv.end)
            .filter(|&&(_, qp)| qp >= qiv.start && qp < qiv.end)
            .copied()
            .collect();
        if anchors.is_empty() {
            continue;
        }
        islands += 1;

        // Ungapped filter: best hsp over a spread of true orthologous
        // anchors — strictly more generous than LASTZ, which has to find
        // them with seeds.
        let step = (anchors.len() / 8).max(1);
        let best_ungapped = anchors
            .iter()
            .step_by(step)
            .map(|&(tp, qp)| ungapped_extend(t, q, tp, qp, 1, &w, 910).score)
            .max()
            .unwrap();

        // Gapped filter: one banded SW tile at the central anchor.
        let (tp, qp) = anchors[anchors.len() / 2];
        let (tr, qr) = tile_around(tp, qp, 320, t.len(), q.len());
        let gapped = banded_smith_waterman(&t[tr], &q[qr], &w, &gaps, 32).max_score;

        let g = gapped >= 4000;
        let u = best_ungapped >= 3000;
        gapped_pass += g as usize;
        ungapped_pass += u as usize;
        gapped_only += (g && !u) as usize;
    }

    assert!(islands >= 10, "only {islands} matched islands");
    assert!(
        gapped_only >= 1,
        "no island was recovered exclusively by the gapped filter \
         ({gapped_pass}/{islands} gapped vs {ungapped_pass}/{islands} ungapped)"
    );
    assert!(
        gapped_pass > ungapped_pass,
        "gapped filter not more sensitive: {gapped_pass}/{islands} \
         gapped vs {ungapped_pass}/{islands} ungapped"
    );
}
