//! Offline mini property-testing harness exposing the `proptest` API subset
//! this workspace uses.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` cases; the RNG for a
//! case is seeded deterministically from the test's module path, name, and
//! case index, so runs are reproducible across machines with no persistence
//! files. There is no shrinking: a failing case reports its seed and inputs
//! via the `prop_assert*` message and panics.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic per-case RNG: FNV-1a over the test identity and case index.
pub fn rng_for(module: &str, name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in module
        .bytes()
        .chain(name.bytes())
        .chain(case.to_le_bytes())
    {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::rng_for(module_path!(), stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "proptest {}::{} failed at case {}: {}",
                            module_path!(),
                            stringify!($name),
                            case,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// Builds a strategy choosing among alternatives, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}
