//! Offline stand-in for the `crossbeam` scoped-thread API, implemented on
//! `std::thread::scope` (stable since 1.63). Only the surface the workspace
//! uses is provided: `crossbeam::thread::scope` and `Scope::spawn`.

#![warn(missing_docs)]

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or join: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handed to the closure of [`scope`]; spawn borrows from the
    /// enclosing environment through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// `&Scope` so it can spawn siblings; unjoined threads are joined
        /// when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Returns `Err` with the payload if the closure or an
    /// unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::Mutex::new(0u64);
        let result = crate::thread::scope(|scope| {
            for &x in &data {
                let sum = &sum;
                scope.spawn(move |_| {
                    *sum.lock().unwrap() += x;
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(*sum.lock().unwrap(), 10);
    }

    #[test]
    fn panicking_child_surfaces_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("child panic"));
        });
        assert!(result.is_err());
    }
}
