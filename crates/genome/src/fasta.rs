//! Minimal FASTA reading and writing.
//!
//! Darwin-WGA consumes plain (uncompressed) FASTA with one or more records;
//! record names are the first whitespace-delimited token of the header.

use crate::sequence::Sequence;
use std::fmt;
use std::io::{self, BufRead, Write};

/// A named FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record name (first token of the `>` header).
    pub name: String,
    /// Full header line without the leading `>`.
    pub description: String,
    /// The sequence.
    pub sequence: Sequence,
}

/// Error produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A sequence line contained an invalid character.
    InvalidBase {
        /// 1-based line number of the offending line.
        line: usize,
        /// The invalid byte.
        byte: u8,
    },
    /// Two records share the same name (first header token).
    DuplicateName {
        /// The repeated record name.
        name: String,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "i/o error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::InvalidBase { line, byte } => {
                write!(f, "line {line}: invalid sequence byte {:#04x}", byte)
            }
            FastaError::DuplicateName { name } => {
                write!(f, "duplicate record name {name:?}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Reads all records from FASTA input.
///
/// A `&mut R` may be passed for readers that should remain usable afterwards.
///
/// # Errors
///
/// Returns [`FastaError`] on I/O failure, on sequence data before the first
/// header, or on invalid sequence characters.
///
/// # Examples
///
/// ```
/// let input = b">chr1 test\nACGT\nacgt\n>chr2\nTTTT\n";
/// let records = genome::fasta::read(&input[..])?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].name, "chr1");
/// assert_eq!(records[0].sequence.len(), 8);
/// # Ok::<(), genome::fasta::FastaError>(())
/// ```
pub fn read<R: BufRead>(reader: R) -> Result<Vec<Record>, FastaError> {
    let mut records: Vec<Record> = Vec::new();
    let mut current: Option<Record> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            let description = header.trim().to_string();
            let name = description
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            current = Some(Record {
                name,
                description,
                sequence: Sequence::new(),
            });
        } else {
            let rec = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: idx + 1 })?;
            for &byte in line.as_bytes() {
                if byte.is_ascii_whitespace() {
                    continue;
                }
                let base = crate::Base::from_ascii(byte).ok_or(FastaError::InvalidBase {
                    line: idx + 1,
                    byte,
                })?;
                rec.sequence.push(base);
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    Ok(records)
}

/// Writes records as FASTA with 70-column wrapping.
///
/// A `&mut W` may be passed for writers that should remain usable afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(mut writer: W, records: &[Record]) -> io::Result<()> {
    for rec in records {
        if rec.description.is_empty() {
            writeln!(writer, ">{}", rec.name)?;
        } else {
            writeln!(writer, ">{}", rec.description)?;
        }
        let ascii: Vec<u8> = rec.sequence.iter().map(|b| b.to_ascii()).collect();
        for chunk in ascii.chunks(70) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_multi_record() {
        let input = b">a desc here\nACGT\nACGT\n\n>b\nNNNN\n";
        let recs = read(&input[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[0].description, "a desc here");
        assert_eq!(recs[0].sequence.to_string(), "ACGTACGT");
        assert_eq!(recs[1].sequence.to_string(), "NNNN");
    }

    #[test]
    fn read_rejects_headerless_data() {
        let err = read(&b"ACGT\n"[..]).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn read_rejects_bad_byte() {
        let err = read(&b">a\nAC-T\n"[..]).unwrap_err();
        match err {
            FastaError::InvalidBase { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, b'-');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn write_read_round_trip() {
        let recs = vec![
            Record {
                name: "chrX".into(),
                description: "chrX synthetic".into(),
                sequence: "ACGT".repeat(40).parse().unwrap(),
            },
            Record {
                name: "chrY".into(),
                description: String::new(),
                sequence: "GATTACA".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write(&mut buf, &recs).unwrap();
        let parsed = read(&buf[..]).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].sequence, recs[0].sequence);
        assert_eq!(parsed[1].name, "chrY");
        assert_eq!(parsed[1].sequence, recs[1].sequence);
        // wrapped at 70 columns
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().all(|l| l.len() <= 70));
    }
}
