//! Dinucleotide-preserving sequence shuffling (Altschul–Erickson, 1985).
//!
//! The paper's noise analysis (§V-E) builds a "random" target genome by
//! shuffling the 2-mers of ce11 so 2-base statistics are preserved while
//! destroying any evolutionary signal, then treats every alignment found
//! against it as a false positive. [`shuffle_dinucleotides`] is the exact
//! counterpart of the `fasta-shuffle-letters` utility used there.

use crate::alphabet::Base;
use crate::sequence::Sequence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffles `seq` uniformly among sequences with identical dinucleotide
/// counts (and identical first and last base).
///
/// Runs of `N` split the sequence into independently shuffled segments; the
/// `N`s stay in place, mirroring how real genome shufflers treat assembly
/// gaps.
///
/// # Examples
///
/// ```
/// use genome::{shuffle::shuffle_dinucleotides, stats::DinucleotideCounts, Sequence};
/// use rand::SeedableRng;
///
/// let s: Sequence = "ACGTACGTTGCATGCA".parse()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let shuffled = shuffle_dinucleotides(&s, &mut rng);
/// assert_eq!(
///     DinucleotideCounts::from_sequence(&s),
///     DinucleotideCounts::from_sequence(&shuffled),
/// );
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn shuffle_dinucleotides<R: Rng + ?Sized>(seq: &Sequence, rng: &mut R) -> Sequence {
    let mut out = Sequence::with_capacity(seq.len());
    let bases = seq.as_slice();
    let mut i = 0;
    while i < bases.len() {
        if bases[i] == Base::N {
            out.push(Base::N);
            i += 1;
            continue;
        }
        let start = i;
        while i < bases.len() && bases[i] != Base::N {
            i += 1;
        }
        shuffle_segment(&bases[start..i], rng, &mut out);
    }
    out
}

/// Altschul–Erickson shuffle of one unambiguous segment, appended to `out`.
fn shuffle_segment<R: Rng + ?Sized>(segment: &[Base], rng: &mut R, out: &mut Sequence) {
    if segment.len() <= 2 {
        out.extend(segment.iter().copied());
        return;
    }
    let first = segment[0].code2() as usize;
    let last = segment[segment.len() - 1].code2() as usize;

    // Multigraph: edges[v] = successors of base v, in original order.
    let mut edges: [Vec<usize>; 4] = Default::default();
    for w in segment.windows(2) {
        edges[w[0].code2() as usize].push(w[1].code2() as usize);
    }

    // Pick, for every vertex except `last` that has outgoing edges, a random
    // "final" edge such that the final edges form a tree oriented toward
    // `last`. With 4 vertices, rejection sampling converges immediately.
    let final_edge: [Option<usize>; 4] = loop {
        let mut candidate: [Option<usize>; 4] = [None; 4];
        for v in 0..4 {
            if v != last && !edges[v].is_empty() {
                candidate[v] = Some(edges[v][rng.gen_range(0..edges[v].len())]);
            }
        }
        if tree_reaches_last(&candidate, last, &edges) {
            break candidate;
        }
    };

    // Shuffle the remaining edges of each vertex and append the final edge.
    let mut ordered: [Vec<usize>; 4] = Default::default();
    for v in 0..4 {
        let mut rest = edges[v].clone();
        if let Some(fin) = final_edge[v] {
            // remove one instance of the chosen final edge
            if let Some(pos) = rest.iter().position(|&e| e == fin) {
                rest.swap_remove(pos);
            }
        }
        rest.shuffle(rng);
        if let Some(fin) = final_edge[v] {
            rest.push(fin);
        }
        ordered[v] = rest;
    }

    // Walk the Eulerian path from `first`.
    let mut next_idx = [0usize; 4];
    let mut v = first;
    out.push(Base::from_code(first as u8));
    loop {
        let idx = next_idx[v];
        if idx >= ordered[v].len() {
            break;
        }
        next_idx[v] += 1;
        v = ordered[v][idx];
        out.push(Base::from_code(v as u8));
    }
}

/// Checks that following the candidate final edges from every vertex with
/// outgoing edges reaches `last` (i.e. they form a spanning tree toward it).
fn tree_reaches_last(candidate: &[Option<usize>; 4], last: usize, edges: &[Vec<usize>; 4]) -> bool {
    for (v, out_edges) in edges.iter().enumerate() {
        if v == last || out_edges.is_empty() {
            continue;
        }
        let mut cur = v;
        let mut steps = 0;
        while cur != last {
            match candidate[cur] {
                Some(next) => cur = next,
                None => return false,
            }
            steps += 1;
            if steps > 4 {
                return false; // cycle
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DinucleotideCounts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_preserves_dinucleotides(input: &str, seed: u64) {
        let s: Sequence = input.parse().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let shuffled = shuffle_dinucleotides(&s, &mut rng);
        assert_eq!(shuffled.len(), s.len());
        assert_eq!(
            DinucleotideCounts::from_sequence(&s),
            DinucleotideCounts::from_sequence(&shuffled),
            "dinucleotide counts changed for {input}"
        );
    }

    #[test]
    fn preserves_dinucleotide_counts() {
        assert_preserves_dinucleotides("ACGTACGTTGCATGCAACCGGTT", 1);
        assert_preserves_dinucleotides("AAAAAAACCCCCGGGGGTTTTT", 2);
        assert_preserves_dinucleotides("ACACACACACACAC", 3);
        assert_preserves_dinucleotides("GATTACAGATTACAGATTACA", 4);
    }

    #[test]
    fn preserves_endpoints() {
        let s: Sequence = "CAGTGACCTGATCGATCGTAG".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let shuffled = shuffle_dinucleotides(&s, &mut rng);
        assert_eq!(shuffled[0], s[0]);
        assert_eq!(shuffled[shuffled.len() - 1], s[s.len() - 1]);
    }

    #[test]
    fn n_runs_stay_in_place() {
        let s: Sequence = "ACGTACGTNNNNTGCATGCA".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let shuffled = shuffle_dinucleotides(&s, &mut rng);
        for i in 8..12 {
            assert_eq!(shuffled[i], Base::N);
        }
        assert_eq!(
            DinucleotideCounts::from_sequence(&s),
            DinucleotideCounts::from_sequence(&shuffled),
        );
    }

    #[test]
    fn short_sequences_unchanged() {
        for input in ["", "A", "AC"] {
            let s: Sequence = input.parse().unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            assert_eq!(shuffle_dinucleotides(&s, &mut rng), s);
        }
    }

    #[test]
    fn actually_shuffles_long_sequences() {
        // A long random-ish sequence should essentially never map to itself.
        let s: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGGATCGGATTACACCGTAGCTAGCATCG"
            .parse()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut changed = false;
        for _ in 0..5 {
            if shuffle_dinucleotides(&s, &mut rng) != s {
                changed = true;
            }
        }
        assert!(changed);
    }
}
