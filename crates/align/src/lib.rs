//! Alignment algorithms for the Darwin-WGA reproduction.
//!
//! The crate layers, bottom-up:
//!
//! * reference dynamic programming — [`sw`] (local, Gotoh affine) and
//!   [`nw`] (global) — used as exact oracles in tests;
//! * the two *filtering* kernels the paper compares — [`ungapped`]
//!   (LASTZ's X-drop ungapped extension) and [`banded`] (Darwin-WGA's
//!   banded Smith-Waterman, "BSW") — plus [`bsw_fast`], the batched
//!   wavefront BSW engine that mirrors the systolic array's
//!   anti-diagonal dataflow and is bit-identical to [`banded`], and
//!   [`bsw_simd`], the explicit 16-lane `i16` SIMD transcription of the
//!   same wavefront (bit-identical again, with an exact `i32` fallback);
//! * the *extension* algorithms — [`xdrop`] (the per-tile X-drop kernel),
//!   [`gactx`] (GACT-X tiled extension, the paper's contribution),
//!   [`gact`] (the prior Darwin algorithm Fig. 10 compares against) and
//!   [`greedy`] (the software Y-drop extension of the LASTZ baseline).
//!
//! # Quick start
//!
//! ```
//! use align::gactx::{extend_alignment, TilingParams};
//! use genome::{GapPenalties, Sequence, SubstitutionMatrix};
//!
//! let t: Sequence = "TTTTACGTACGTACGTTTTT".parse()?;
//! let q: Sequence = "GGGGACGTACGTACGTGGGG".parse()?;
//! let a = extend_alignment(
//!     &t, &q, 10, 10,
//!     &SubstitutionMatrix::darwin_wga(),
//!     &GapPenalties::darwin_wga(),
//!     &TilingParams::gactx_default(),
//! ).expect("an alignment");
//! assert_eq!(a.alignment.matches(), 12);
//! # Ok::<(), genome::ParseBaseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alignment;
pub mod banded;
pub mod bsw_fast;
pub mod bsw_simd;
pub mod cigar;
pub mod gact;
pub mod gactx;
pub mod greedy;
pub mod nw;
pub mod sw;
pub mod ungapped;
pub mod xdrop;

pub use alignment::Alignment;
pub use cigar::{AlignOp, Cigar};
