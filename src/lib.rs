//! # Darwin-WGA (reproduction)
//!
//! Umbrella crate for the reproduction of *"Darwin-WGA: A Co-processor
//! Provides Increased Sensitivity in Whole Genome Alignments with High
//! Speedup"* (Turakhia*, Goenka*, Bejerano, Dally — HPCA 2019).
//!
//! Re-exports the workspace crates:
//!
//! | Module | Contents |
//! |---|---|
//! | [`genome`] | Sequences, FASTA, scoring, synthetic evolution model, shuffling |
//! | [`align`] | SW/NW, banded SW (BSW), ungapped X-drop, GACT, GACT-X |
//! | [`seed`] | Spaced seeds, seed table, D-SOFT diagonal-band seeding |
//! | [`chain`] | AXTCHAIN-style chaining + sensitivity metrics |
//! | [`hwsim`] | Systolic-array / FPGA / ASIC / DRAM cycle+power models |
//! | [`protein`] | Translated (TBLASTX-like) search — the paper's §IX future work |
//! | [`core`] | The Darwin-WGA pipeline and the LASTZ-like baseline |
//! | [`profile`] | Trace analysis: attribution, critical path, modeled-vs-measured drift |
//!
//! # Quick start
//!
//! ```
//! use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
//! use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pair = SyntheticPair::generate(20_000, &EvolutionParams::at_distance(0.2), &mut rng);
//! let report = WgaPipeline::new(WgaParams::darwin_wga())
//!     .run(&pair.target.sequence, &pair.query.sequence);
//! assert!(report.total_matches() > 5_000);
//! ```

#![warn(missing_docs)]

pub use align;
pub use chain;
pub use genome;
pub use hwsim;
pub use protein;
pub use seed;
/// The Darwin-WGA pipeline crate (`wga-core`).
pub use wga_core as core;
/// Trace analysis and drift scoring for `--trace-out` artifacts (`wga-profile`).
pub use wga_profile as profile;
