//! Phylogenetic distance estimation from alignments — the PHAST role.
//!
//! The paper computes the phylogenetic distances of Fig. 8 with the PHAST
//! tool from whole-genome alignments. This module provides the same
//! capability: substitution counting over aligned columns with a
//! Jukes-Cantor (and Kimura two-parameter) correction for multiple hits.
//!
//! Because the synthetic genomes are generated *at* a known distance,
//! running the aligner and then this estimator closes the loop: the
//! estimate must recover the generating parameter (see the `fig8`
//! regeneration binary).

use crate::chainer::Chain;
use align::{AlignOp, Alignment};
use genome::Sequence;
use serde::{Deserialize, Serialize};

/// Aligned-column substitution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstitutionCounts {
    /// Aligned pairs with identical bases.
    pub matches: u64,
    /// Transition substitutions (A↔G, C↔T).
    pub transitions: u64,
    /// Transversion substitutions.
    pub transversions: u64,
}

impl SubstitutionCounts {
    /// Counts substitution classes over one alignment's aligned columns.
    pub fn from_alignment(alignment: &Alignment, target: &Sequence, query: &Sequence) -> Self {
        let mut counts = SubstitutionCounts::default();
        let (mut t, mut q) = (alignment.target_start, alignment.query_start);
        for &(op, n) in alignment.cigar.runs() {
            match op {
                AlignOp::Match | AlignOp::Subst => {
                    for _ in 0..n {
                        let (a, b) = (target[t], query[q]);
                        if a == b {
                            counts.matches += 1;
                        } else if a.is_transition(b) {
                            counts.transitions += 1;
                        } else if a.is_transversion(b) {
                            counts.transversions += 1;
                        }
                        t += 1;
                        q += 1;
                    }
                }
                AlignOp::Insert => q += n as usize,
                AlignOp::Delete => t += n as usize,
            }
        }
        counts
    }

    /// Accumulates counts over the members of chains.
    pub fn from_chains(
        chains: &[Chain],
        alignments: &[Alignment],
        target: &Sequence,
        query: &Sequence,
    ) -> Self {
        let mut total = SubstitutionCounts::default();
        for chain in chains {
            for &i in &chain.members {
                let c = SubstitutionCounts::from_alignment(&alignments[i], target, query);
                total.matches += c.matches;
                total.transitions += c.transitions;
                total.transversions += c.transversions;
            }
        }
        total
    }

    /// Total aligned (comparable) sites.
    pub fn sites(&self) -> u64 {
        self.matches + self.transitions + self.transversions
    }

    /// Raw proportion of differing sites (`p`-distance).
    pub fn p_distance(&self) -> f64 {
        let sites = self.sites();
        if sites == 0 {
            return 0.0;
        }
        (self.transitions + self.transversions) as f64 / sites as f64
    }

    /// Jukes-Cantor corrected distance, substitutions per site:
    /// `d = −(3/4)·ln(1 − 4p/3)`. Returns `None` when `p ≥ 3/4`
    /// (saturated beyond correction).
    pub fn jukes_cantor(&self) -> Option<f64> {
        let p = self.p_distance();
        if p >= 0.75 {
            return None;
        }
        Some(-0.75 * (1.0 - 4.0 * p / 3.0).ln())
    }

    /// Kimura two-parameter distance, handling the transition bias:
    /// `d = −(1/2)·ln(1−2P−Q) − (1/4)·ln(1−2Q)` with `P` the transition
    /// and `Q` the transversion proportion. Returns `None` on saturation.
    pub fn kimura_2p(&self) -> Option<f64> {
        let sites = self.sites();
        if sites == 0 {
            return Some(0.0);
        }
        let p = self.transitions as f64 / sites as f64;
        let q = self.transversions as f64 / sites as f64;
        let a = 1.0 - 2.0 * p - q;
        let b = 1.0 - 2.0 * q;
        if a <= 0.0 || b <= 0.0 {
            return None;
        }
        Some(-0.5 * a.ln() - 0.25 * b.ln())
    }

    /// Observed transition/transversion ratio (`κ`-like statistic).
    pub fn ts_tv_ratio(&self) -> f64 {
        if self.transversions == 0 {
            return f64::INFINITY;
        }
        self.transitions as f64 / self.transversions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::Cigar;

    fn seqs(t: &str, q: &str) -> (Sequence, Sequence) {
        (t.parse().unwrap(), q.parse().unwrap())
    }

    fn full_alignment(len: u32) -> Alignment {
        let mut c = Cigar::new();
        // Build op-agnostic cigar: classify per column using Subst runs
        // would require the sequences; use all-"Subst" runs — the counter
        // classifies by the actual bases, not the op.
        c.push(AlignOp::Subst, len);
        Alignment::new(0, 0, c, 0)
    }

    #[test]
    fn counts_classify_pairs() {
        // A-A match, A-G transition, A-C transversion, T-C transition.
        let (t, q) = seqs("AAAT", "AGCC");
        let a = full_alignment(4);
        let c = SubstitutionCounts::from_alignment(&a, &t, &q);
        assert_eq!(c.matches, 1);
        assert_eq!(c.transitions, 2);
        assert_eq!(c.transversions, 1);
        assert_eq!(c.sites(), 4);
        assert!((c.p_distance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn jc_of_identical_is_zero() {
        let (t, q) = seqs("ACGTACGT", "ACGTACGT");
        let c = SubstitutionCounts::from_alignment(&full_alignment(8), &t, &q);
        assert_eq!(c.jukes_cantor(), Some(0.0));
        assert_eq!(c.kimura_2p(), Some(0.0));
    }

    #[test]
    fn jc_exceeds_p_distance() {
        // Multiple-hit correction always inflates: d ≥ p.
        let t: Sequence = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let q: Sequence = "ACGTACGAACGTACTTACGT".parse().unwrap();
        let c = SubstitutionCounts::from_alignment(&full_alignment(20), &t, &q);
        let p = c.p_distance();
        let d = c.jukes_cantor().unwrap();
        assert!(d > p);
        assert!(d < 2.0 * p); // sane at low divergence
    }

    #[test]
    fn saturation_returns_none() {
        let (t, q) = seqs("AAAA", "CCCC");
        let c = SubstitutionCounts::from_alignment(&full_alignment(4), &t, &q);
        assert_eq!(c.jukes_cantor(), None);
    }

    #[test]
    fn gaps_are_excluded_from_sites() {
        let (t, q) = seqs("ACGTAA", "ACAA");
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 2);
        c.push(AlignOp::Delete, 2);
        c.push(AlignOp::Match, 2);
        let a = Alignment::new(0, 0, c, 0);
        let counts = SubstitutionCounts::from_alignment(&a, &t, &q);
        assert_eq!(counts.sites(), 4);
        assert_eq!(counts.matches, 4);
    }
}
