//! Seed hits and anchors shared between pipeline stages.

use serde::{Deserialize, Serialize};

/// A seed hit: a spaced-seed match between target and query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeedHit {
    /// Target position of the seed window start.
    pub target_pos: usize,
    /// Query position of the seed window start.
    pub query_pos: usize,
}

impl SeedHit {
    /// Creates a seed hit.
    pub fn new(target_pos: usize, query_pos: usize) -> SeedHit {
        SeedHit {
            target_pos,
            query_pos,
        }
    }

    /// The hit's diagonal (`target - query`), which is constant along a
    /// gap-free alignment.
    pub fn diagonal(&self) -> isize {
        self.target_pos as isize - self.query_pos as isize
    }
}

/// An anchor produced by the filtering stage: the position of the filter
/// tile's maximum score, from which the extension stage starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Anchor {
    /// Target coordinate.
    pub target_pos: usize,
    /// Query coordinate.
    pub query_pos: usize,
    /// Filter score that qualified this anchor.
    pub filter_score: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal() {
        assert_eq!(SeedHit::new(10, 4).diagonal(), 6);
        assert_eq!(SeedHit::new(4, 10).diagonal(), -6);
    }
}
