//! The shared multi-genome seed index.
//!
//! One [`MultiIndex`] serves the whole pair matrix: seed tables are
//! keyed by `(genome, chromosome)` and built at most once per run via
//! the sharded builder, then shared across every pair that aligns
//! against that chromosome. This is the sweepga/FastGA unlock — a
//! genome appearing in `N-1` pairs pays for its index once, not `N-1`
//! times — and the tables are built *lazily*, so a kNN-sparsified run
//! never indexes a genome whose pairs were all pruned.
//!
//! Frequency scaling: with `H` genomes in play, a k-mer present once
//! per haplotype legitimately occurs `H` times across the index, so
//! [`scaled_params`] multiplies `max_seed_occurrences` by the genome
//! count (sweepga scales its adaptive frequency threshold by haplotype
//! count the same way). Both the shared-index and per-pair-index modes
//! align with the *scaled* parameters, which is what makes their
//! outputs byte-identical: the sharded table build is bit-deterministic
//! for any thread count, so equal parameters mean equal tables mean
//! equal reports.

use crate::config::WgaParams;
use genome::assembly::Assembly;
use genome::Sequence;
use parking_lot::Mutex;
use seed::SeedTable;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Scales the k-mer frequency threshold for a many-genome run: a seed
/// may legitimately occur once per genome, so the per-table occurrence
/// cap grows linearly with genome count.
pub fn scaled_params(params: &WgaParams, genome_count: usize) -> WgaParams {
    let mut scaled = params.clone();
    scaled.max_seed_occurrences = scaled
        .max_seed_occurrences
        .saturating_mul(genome_count.max(1));
    scaled
}

/// Lazily-built, cached seed tables over a genome set.
pub struct MultiIndex<'g> {
    genomes: &'g [Assembly],
    params: WgaParams,
    threads: usize,
    tables: Mutex<BTreeMap<(usize, usize), Arc<SeedTable>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl std::fmt::Debug for MultiIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiIndex")
            .field("genomes", &self.genomes.len())
            .field("threads", &self.threads)
            .field("builds", &self.builds())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

impl<'g> MultiIndex<'g> {
    /// Creates an empty index over `genomes`. `params` must already be
    /// scaled (see [`scaled_params`]); `threads` feeds the sharded
    /// table builder.
    pub fn new(params: WgaParams, genomes: &'g [Assembly], threads: usize) -> MultiIndex<'g> {
        MultiIndex {
            genomes,
            params,
            threads,
            tables: Mutex::new(BTreeMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The seed table of `genomes[genome]`'s chromosome `chrom`,
    /// building and caching it on first use. Out-of-range indices
    /// (unreachable from the orchestrator, which derives both from the
    /// same genome slice) resolve to an empty table rather than a
    /// panic, keeping this module panic-free.
    pub fn table(&self, genome: usize, chrom: usize) -> Arc<SeedTable> {
        let key = (genome, chrom);
        let mut tables = self.tables.lock();
        if let Some(table) = tables.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(table);
        }
        let empty = Sequence::new();
        let sequence = self
            .genomes
            .get(genome)
            .and_then(|g| g.chromosomes().get(chrom))
            .map_or(&empty, |c| &c.sequence);
        let (built, _build_time) =
            crate::shard::sharded_seed_table(&self.params, sequence, self.threads);
        let table = Arc::new(built);
        tables.insert(key, Arc::clone(&table));
        self.builds.fetch_add(1, Ordering::Relaxed);
        table
    }

    /// A provider closure for one genome's target side, in the shape
    /// [`crate::genome_pipeline::SeedTableFn`] expects: chromosome
    /// index in, shared table out.
    pub fn provider(&self, genome: usize) -> impl Fn(usize) -> Arc<SeedTable> + Sync + '_ {
        move |chrom| self.table(genome, chrom)
    }

    /// Tables built so far (each chromosome at most once).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Cache hits so far (lookups served without a build).
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_genomes() -> Vec<Assembly> {
        let mut rng = StdRng::seed_from_u64(2);
        let pair = SyntheticPair::generate(5_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let mut a = Assembly::new("a");
        a.push("chrI", pair.target.sequence.clone());
        let mut b = Assembly::new("b");
        b.push("chr1", pair.query.sequence.clone());
        vec![a, b]
    }

    #[test]
    fn scaling_multiplies_occurrence_cap() {
        let base = WgaParams::darwin_wga();
        let scaled = scaled_params(&base, 7);
        assert_eq!(scaled.max_seed_occurrences, base.max_seed_occurrences * 7);
        // Everything else unchanged.
        assert_eq!(scaled.seed_pattern, base.seed_pattern);
        assert_eq!(scaled.dsoft, base.dsoft);
    }

    #[test]
    fn tables_build_once_and_hit_cache() {
        let genomes = two_genomes();
        let index = MultiIndex::new(scaled_params(&WgaParams::darwin_wga(), 2), &genomes, 2);
        let t1 = index.table(0, 0);
        let t2 = index.table(0, 0);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(index.builds(), 1);
        assert_eq!(index.cache_hits(), 1);
        let _ = index.table(1, 0);
        assert_eq!(index.builds(), 2);
    }

    #[test]
    fn cached_table_matches_fresh_build() {
        let genomes = two_genomes();
        let params = scaled_params(&WgaParams::darwin_wga(), 2);
        let index = MultiIndex::new(params.clone(), &genomes, 3);
        let shared = index.table(0, 0);
        let (fresh, _) = crate::shard::sharded_seed_table(
            &params,
            &genomes[0].chromosomes()[0].sequence,
            1,
        );
        // Sharded builds are bit-identical across thread counts, so the
        // cached table must equal a serial rebuild.
        let seq = &genomes[1].chromosomes()[0].sequence;
        for pos in (0..seq.len().saturating_sub(32)).step_by(97) {
            let word = seq
                .slice(pos..pos + 32)
                .iter()
                .take(16)
                .fold(0u64, |w, b| (w << 2) | u64::from(b.code() & 3));
            assert_eq!(shared.lookup(word), fresh.lookup(word), "word at {pos}");
        }
    }

    #[test]
    fn out_of_range_resolves_to_empty_table() {
        let genomes = two_genomes();
        let index = MultiIndex::new(scaled_params(&WgaParams::darwin_wga(), 2), &genomes, 1);
        let table = index.table(99, 0);
        assert_eq!(table.lookup(0).len(), 0);
    }
}
