//! Full (unbanded) Needleman-Wunsch with affine gaps — the reference
//! global aligner.
//!
//! GACT-X scores tiles with Needleman-Wunsch rather than Smith-Waterman so
//! scores may go negative (§III-D); this module is the exact full-matrix
//! version used as an oracle for the tiled algorithms.

use crate::cigar::{AlignOp, Cigar};
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i32 = i32::MIN / 4;

/// Result of a global alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalResult {
    /// Score of the optimal global alignment.
    pub score: i64,
    /// The alignment operations covering both sequences entirely.
    pub cigar: Cigar,
    /// DP cells computed.
    pub cells: u64,
}

/// Needleman-Wunsch global alignment of the full `target` (columns) vs
/// `query` (rows) slices.
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "ACGTACGT".parse()?;
/// let q: Sequence = "ACGACGT".parse()?;
/// let r = align::nw::needleman_wunsch(
///     t.as_slice(),
///     q.as_slice(),
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
/// );
/// assert_eq!(r.cigar.target_len(), 8);
/// assert_eq!(r.cigar.query_len(), 7);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn needleman_wunsch(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
) -> GlobalResult {
    let (n, m) = (target.len(), query.len());
    let cols = n + 1;
    let mut v = vec![NEG_INF; (m + 1) * cols];
    let mut e = vec![NEG_INF; (m + 1) * cols];
    let mut f = vec![NEG_INF; (m + 1) * cols];
    let mut ptr = vec![0u8; (m + 1) * cols]; // 0 stop, 1 diag, 2 E, 3 F
    let mut e_open = vec![false; (m + 1) * cols];
    let mut f_open = vec![false; (m + 1) * cols];

    v[0] = 0;
    for j in 1..=n {
        e[j] = -(gaps.open + gaps.extend * j as i32);
        v[j] = e[j];
        ptr[j] = 2;
        e_open[j] = j == 1;
    }
    for i in 1..=m {
        let idx = i * cols;
        f[idx] = -(gaps.open + gaps.extend * i as i32);
        v[idx] = f[idx];
        ptr[idx] = 3;
        f_open[idx] = i == 1;
    }

    for i in 1..=m {
        for j in 1..=n {
            let idx = i * cols + j;
            let up = (i - 1) * cols + j;
            let left = i * cols + (j - 1);
            let diag = (i - 1) * cols + (j - 1);

            let e_from_open = v[left] - gaps.open - gaps.extend;
            let e_from_ext = e[left] - gaps.extend;
            if e_from_open >= e_from_ext {
                e[idx] = e_from_open;
                e_open[idx] = true;
            } else {
                e[idx] = e_from_ext;
            }

            let f_from_open = v[up] - gaps.open - gaps.extend;
            let f_from_ext = f[up] - gaps.extend;
            if f_from_open >= f_from_ext {
                f[idx] = f_from_open;
                f_open[idx] = true;
            } else {
                f[idx] = f_from_ext;
            }

            let sub = v[diag] + w.score(target[j - 1], query[i - 1]);
            let mut val = sub;
            let mut p = 1u8;
            if e[idx] > val {
                val = e[idx];
                p = 2;
            }
            if f[idx] > val {
                val = f[idx];
                p = 3;
            }
            v[idx] = val;
            ptr[idx] = p;
        }
    }

    // Traceback from (m, n) to (0, 0).
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    let (mut i, mut j) = (m, n);
    let mut state = 0u8;
    while i > 0 || j > 0 {
        let idx = i * cols + j;
        match state {
            0 => match ptr[idx] {
                1 => {
                    let op = if target[j - 1] == query[i - 1] && target[j - 1] != Base::N {
                        AlignOp::Match
                    } else {
                        AlignOp::Subst
                    };
                    ops_rev.push(op);
                    i -= 1;
                    j -= 1;
                }
                2 => state = 2,
                3 => state = 3,
                _ => unreachable!("hit stop pointer before origin"),
            },
            2 => {
                ops_rev.push(AlignOp::Delete);
                let was_open = e_open[idx];
                j -= 1;
                if was_open {
                    state = 0;
                }
            }
            3 => {
                ops_rev.push(AlignOp::Insert);
                let was_open = f_open[idx];
                i -= 1;
                if was_open {
                    state = 0;
                }
            }
            _ => unreachable!(),
        }
    }

    let mut cigar = Cigar::new();
    for op in ops_rev.into_iter().rev() {
        cigar.push(op, 1);
    }
    GlobalResult {
        score: v[m * cols + n] as i64,
        cigar,
        cells: (n as u64) * (m as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Sequence;

    fn run(t: &str, q: &str) -> GlobalResult {
        let t: Sequence = t.parse().unwrap();
        let q: Sequence = q.parse().unwrap();
        needleman_wunsch(
            t.as_slice(),
            q.as_slice(),
            &SubstitutionMatrix::darwin_wga(),
            &GapPenalties::darwin_wga(),
        )
    }

    #[test]
    fn identical_sequences() {
        let r = run("ACGT", "ACGT");
        assert_eq!(r.cigar.to_string(), "4=");
        assert_eq!(r.score, 91 + 100 + 100 + 91);
    }

    #[test]
    fn single_deletion() {
        let r = run("ACGTA", "ACTA");
        assert_eq!(r.cigar.target_len(), 5);
        assert_eq!(r.cigar.query_len(), 4);
        assert_eq!(r.cigar.count(AlignOp::Delete), 1);
    }

    #[test]
    fn empty_query_is_all_deletions() {
        let r = run("ACGT", "");
        assert_eq!(r.cigar.to_string(), "4D");
        assert_eq!(r.score, -(430 + 30 * 4) as i64);
    }

    #[test]
    fn empty_target_is_all_insertions() {
        let r = run("", "ACGT");
        assert_eq!(r.cigar.to_string(), "4I");
        assert_eq!(r.score, -(430 + 30 * 4) as i64);
    }

    #[test]
    fn both_empty() {
        let r = run("", "");
        assert!(r.cigar.is_empty());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn score_equals_rescore() {
        let t: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCT".parse().unwrap();
        let q: Sequence = "ACGGTCATTCGATTAGCAGTCAGCTTAGCT".parse().unwrap();
        let w = SubstitutionMatrix::darwin_wga();
        let g = GapPenalties::darwin_wga();
        let r = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        let a = crate::alignment::Alignment::new(0, 0, r.cigar.clone(), r.score);
        a.validate(&t, &q).unwrap();
        assert_eq!(r.score, a.rescore(&t, &q, &w, &g));
    }

    #[test]
    fn prefers_one_long_gap_over_two_short() {
        // Affine penalties should merge gaps when possible.
        let r = run("AAAACCCCAAAA", "AAAAAAAA");
        assert_eq!(r.cigar.gap_opens(), 1);
        assert_eq!(r.cigar.count(AlignOp::Delete), 4);
    }
}
