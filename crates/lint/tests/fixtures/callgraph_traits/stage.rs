//! Trait-dispatch fixture: a `.run()` call fans out to every
//! in-workspace implementor *with a body* — the bodyless trait
//! signature is not a call target, the trait's default method is.

pub trait Stage {
    fn run(&self);
    fn tag(&self) -> u32 {
        7
    }
}

pub struct Seeding;
pub struct Filtering;

impl Stage for Seeding {
    fn run(&self) {
        seed_once();
    }
}

impl Stage for Filtering {
    fn run(&self) {
        filter_once();
    }
}

fn seed_once() {}
fn filter_once() {}

pub fn execute(stages: &[Box<dyn Stage>]) {
    for s in stages {
        s.run();
        let _ = s.tag();
    }
}
