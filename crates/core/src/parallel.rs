//! Multi-threaded pipeline driver with panic isolation.
//!
//! The paper uses all 36 threads of the baseline instance (§V-B) and
//! D-SOFT itself is "implemented in software using multiple threads"
//! (§IV). Filtering dominates WGA runtime (§III-A), and every filter tile
//! is independent, so this driver fans the filter stage out across worker
//! threads. Seeding and extension (which needs the sequential anchor-
//! absorption state) stay on one thread, so results are *identical* to
//! [`WgaPipeline::run`] — only wall-clock time changes.
//!
//! # Fault tolerance
//!
//! A panic inside a filter worker no longer aborts the process: each
//! batch runs under [`std::panic::catch_unwind`], a poisoned batch is
//! retried once serially, and a batch that panics twice is reported as a
//! [`RunEvent::BatchFailed`] in the run's event stream while every other
//! batch's results are kept. Resource budgets
//! ([`crate::config::ResourceBudget`]) are enforced with the same
//! truncation rules as the serial pipeline, so budget-capped parallel
//! runs stay deterministic.

use crate::budget::{clamp_hits, deadline_event};
use crate::config::WgaParams;
use crate::filter_engine::FilterContext;
use crate::obs::{strand_code, Obs, SpanName};
use crate::pipeline::WgaPipeline;
use crate::report::{RunEvent, StageKind, Strand, WgaReport};
use crate::shard::{extend_anchors_sharded, sharded_dsoft, sharded_seed_table};
use genome::Sequence;
use parking_lot::Mutex;
use seed::{Anchor, SeedHit, SeedTable};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs the pipeline with the filter stage spread over `threads` workers.
///
/// Produces the same alignments as the serial pipeline; stage timings are
/// wall-clock, so `timings.filtering` shrinks with thread count.
///
/// # Panics
///
/// Panics if `threads == 0` or the parameters are degenerate; use
/// [`crate::genome_pipeline::align_assemblies_with`] for typed errors.
pub fn run_parallel(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
) -> WgaReport {
    run_parallel_observed(params, target, query, threads, Obs::off())
}

/// [`run_parallel`] with an observation handle; reports are identical
/// whether `obs` is live or [`Obs::off`].
///
/// # Panics
///
/// Panics if `threads == 0` or the parameters are degenerate.
pub fn run_parallel_observed(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
    obs: Obs<'_>,
) -> WgaReport {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return WgaPipeline::new(params.clone()).run_observed(target, query, obs);
    }

    let mut buf = obs.buffer();
    let table_timer = buf.start();
    let (table, build_time) = sharded_seed_table(params, target, threads);
    buf.finish(
        table_timer,
        SpanName::SeedTable,
        crate::obs::STRAND_NA,
        0,
        1,
        target.len() as u64,
    );
    buf.flush();
    let mut report = run_with_table_parallel_observed(params, &table, target, query, threads, obs);
    report.timings.seeding += build_time;
    report
}

/// Runs the parallel pipeline against a pre-built seed table of `target`
/// (table construction amortises across many query chromosomes — the
/// assembly driver uses this entry point).
///
/// # Panics
///
/// Panics if `threads == 0` or the parameters are degenerate.
pub fn run_with_table_parallel(
    params: &WgaParams,
    table: &SeedTable,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
) -> WgaReport {
    run_with_table_parallel_observed(params, table, target, query, threads, Obs::off())
}

/// [`run_with_table_parallel`] with an observation handle.
///
/// # Panics
///
/// Panics if `threads == 0` or the parameters are degenerate.
pub fn run_with_table_parallel_observed(
    params: &WgaParams,
    table: &SeedTable,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
    obs: Obs<'_>,
) -> WgaReport {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return WgaPipeline::new(params.clone()).run_with_table_observed(table, target, query, obs);
    }

    let pair_start = Instant::now();
    let mut report = WgaReport::default();
    run_strand_parallel(
        params, table, target, query, Strand::Forward, threads, pair_start, &mut report, obs,
    );
    if params.both_strands {
        let rc = query.reverse_complement();
        run_strand_parallel(
            params, table, target, &rc, Strand::Reverse, threads, pair_start, &mut report, obs,
        );
    }

    report
        .alignments
        .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
    report
}

#[allow(clippy::too_many_arguments)]
fn run_strand_parallel(
    params: &WgaParams,
    table: &SeedTable,
    target: &Sequence,
    query: &Sequence,
    strand: Strand,
    threads: usize,
    pair_start: Instant,
    report: &mut WgaReport,
    obs: Obs<'_>,
) {
    let scode = strand_code(strand);
    let mut buf = obs.buffer();

    // --- Seeding (sharded over query chunks) --------------------------------
    let seed_timer = buf.start();
    let seed_start = Instant::now();
    let seeding = sharded_dsoft(table, query, &params.dsoft, params.shard_bases, threads);
    report.timings.seeding += seed_start.elapsed();
    report.workload.seeds += seeding.seeds_queried;
    report.counters.raw_seed_hits += seeding.raw_hits;
    buf.finish(
        seed_timer,
        SpanName::Seed,
        scode,
        0,
        seeding.hits.len() as u64,
        seeding.seeds_queried,
    );
    buf.flush();

    // --- Filtering (parallel over hits) ------------------------------------
    // Chaos hook: fires once per (pair, strand) on the driving thread,
    // exactly where the serial driver gates, so `filter.batch`
    // occurrence indices are identical across executors.
    obs.fault_gate(crate::faultsim::Hook::FilterBatch);
    let filter_start = Instant::now();
    let hits = clamp_hits(params, &seeding.hits, report);
    let filtered = filter_hits_parallel(params, target, query, hits, threads, pair_start, scode, obs);
    report.timings.filtering += filter_start.elapsed();
    report.workload.filter_tiles += filtered.tiles_executed;
    report.counters.hits_filtered += filtered.tiles_executed;
    report.counters.filter_cells += filtered.cells;
    report.counters.anchors_passed += filtered.anchors.len() as u64;
    report.events.extend(filtered.events);

    // --- Extension (speculative workers, serial commit) ---------------------
    extend_anchors_sharded(
        params,
        target,
        query,
        strand,
        filtered.anchors,
        pair_start,
        report,
        obs,
        threads,
    );
}

/// Outcome of the parallel filter dispatch.
struct FilteredHits {
    /// Anchors in hit order (deterministic).
    anchors: Vec<Anchor>,
    /// Filter tiles actually executed (batches that panicked twice
    /// contribute none; deadline-stopped batches contribute their
    /// completed prefix).
    tiles_executed: u64,
    /// DP cells evaluated across the executed tiles.
    cells: u64,
    /// Batch failures and deadline trips observed during filtering.
    events: Vec<RunEvent>,
}

/// What one worker reports for its batch.
enum BatchOutcome {
    /// Anchors found plus the number of hits processed (less than the
    /// batch size when the deadline stopped the worker early) and the
    /// DP cells those hits cost.
    Done(Vec<Anchor>, usize, u64),
    /// The batch panicked; payload message.
    Panicked(String),
}

/// Filters `hits` across `threads` workers; anchor order follows hit
/// order, so the result is deterministic. Worker panics are contained
/// per batch: a panicked batch is retried once serially, and a second
/// panic drops only that batch's hits, recorded as a
/// [`RunEvent::BatchFailed`].
///
/// Batches are self-scheduled: instead of one static chunk per thread
/// (which lets the worker that drew the expensive tiles straggle the
/// pool), hits split into ~4 batches per worker (at most 64 hits each)
/// and workers claim the next batch off a shared cursor as they finish —
/// batch boundaries stay deterministic, only the batch→worker mapping
/// varies, and results are stitched back in batch order.
#[allow(clippy::too_many_arguments)]
fn filter_hits_parallel(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    hits: &[SeedHit],
    threads: usize,
    pair_start: Instant,
    scode: u8,
    obs: Obs<'_>,
) -> FilteredHits {
    let chunk = hits.len().div_ceil(threads * 4).clamp(1, 64);
    let batches: Vec<&[SeedHit]> = hits.chunks(chunk).collect();
    let results: Mutex<Vec<(usize, BatchOutcome)>> = Mutex::new(Vec::with_capacity(batches.len()));
    let cursor = AtomicUsize::new(0);

    // Shared filter state (the batched engine's encoded pair), built once
    // and read by every worker; each worker materialises its own engine
    // with private scratch for its whole batch.
    let filter_ctx = FilterContext::new(params, target, query);

    // Workers catch their own panics, so the scope result is Ok unless a
    // worker died outside `catch_unwind` (e.g. its report push failed);
    // such batches simply never report and are retried below.
    let _ = crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(batches.len()) {
            let results = &results;
            let filter_ctx = &filter_ctx;
            let cursor = &cursor;
            let batches = &batches;
            scope.spawn(move |_| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&batch) = batches.get(idx) else {
                    break;
                };
                let outcome =
                    run_batch(params, target, query, batch, pair_start, filter_ctx, scode, idx, obs);
                results.lock().push((idx, outcome));
            });
        }
    });

    let mut reported: Vec<Option<BatchOutcome>> = Vec::new();
    reported.resize_with(batches.len(), || None);
    for (idx, outcome) in results.into_inner() {
        reported[idx] = Some(outcome);
    }

    let mut out = FilteredHits {
        anchors: Vec::new(),
        tiles_executed: 0,
        cells: 0,
        events: Vec::new(),
    };
    let mut deadline_hit = false;
    for (idx, outcome) in reported.into_iter().enumerate() {
        let batch = batches[idx];
        // A batch that panicked (or never reported) gets one serial retry:
        // transient poison (e.g. allocator pressure in a crowded worker)
        // often clears, and a deterministic panic will simply fire again
        // and be recorded.
        let outcome = match outcome {
            Some(done @ BatchOutcome::Done(..)) => done,
            Some(BatchOutcome::Panicked(_)) | None => {
                run_batch(params, target, query, batch, pair_start, &filter_ctx, scode, idx, obs)
            }
        };
        match outcome {
            BatchOutcome::Done(anchors, processed, cells) => {
                out.anchors.extend(anchors);
                out.tiles_executed += processed as u64;
                out.cells += cells;
                if processed < batch.len() {
                    deadline_hit = true;
                }
            }
            BatchOutcome::Panicked(message) => {
                out.events.push(RunEvent::BatchFailed {
                    stage: StageKind::Filtering,
                    batch: idx,
                    items: batch.len() as u64,
                    message,
                });
            }
        }
    }
    if deadline_hit {
        out.events
            .push(deadline_event(&params.budget, StageKind::Filtering, pair_start));
    }
    out
}

/// Filters one batch of hits under `catch_unwind`, stopping early if the
/// pair deadline passes. The whole batch shares one engine (and thus one
/// DP scratch) drawn from the shared [`FilterContext`]. Spans and
/// histogram samples go to the worker-local buffer in `obs`, flushed
/// once at the batch boundary.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    batch: &[SeedHit],
    pair_start: Instant,
    filter_ctx: &FilterContext,
    scode: u8,
    batch_idx: usize,
    obs: Obs<'_>,
) -> BatchOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut buf = obs.buffer();
        let batch_timer = buf.start();
        let mut engine = filter_ctx.engine();
        let mut anchors = Vec::new();
        let mut processed = 0usize;
        let mut cells = 0u64;
        for &hit in batch {
            if params.budget.deadline_exceeded(pair_start) {
                break;
            }
            #[cfg(test)]
            poison_check(hit);
            let tile_timer = obs.timer();
            let outcome = engine.filter_hit(params, target, query, hit);
            obs.filter_tile(&tile_timer, outcome.cells);
            cells += outcome.cells;
            if let Some(anchor) = outcome.anchor {
                anchors.push(anchor);
            }
            processed += 1;
        }
        buf.finish(
            batch_timer,
            SpanName::FilterBatch,
            scode,
            batch_idx as u64,
            processed as u64,
            cells,
        );
        (anchors, processed, cells)
    }));
    match result {
        Ok((anchors, processed, cells)) => BatchOutcome::Done(anchors, processed, cells),
        Err(payload) => BatchOutcome::Panicked(panic_message(payload.as_ref())),
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Test-only fault injection: a hit at `usize::MAX` (unreachable from
/// real seeding, whose positions come from the seed table) panics inside
/// the filter worker.
#[cfg(test)]
fn poison_check(hit: SeedHit) {
    if hit.target_pos == usize::MAX {
        panic!("poisoned filter hit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_is_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(17);
        let pair = SyntheticPair::generate(40_000, &EvolutionParams::at_distance(0.2), &mut rng);
        let params = WgaParams::darwin_wga();
        let serial =
            WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);
        let parallel = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, 4);
        assert_eq!(serial.total_matches(), parallel.total_matches());
        assert_eq!(serial.alignments.len(), parallel.alignments.len());
        assert_eq!(serial.workload.filter_tiles, parallel.workload.filter_tiles);
        assert_eq!(
            serial.counters.anchors_passed,
            parallel.counters.anchors_passed
        );
        assert!(parallel.events.is_empty());
    }

    #[test]
    fn budget_capped_parallel_matches_serial() {
        use crate::config::ResourceBudget;

        let mut rng = StdRng::seed_from_u64(29);
        let pair = SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let params = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_filter_tiles: Some(30),
            ..ResourceBudget::default()
        });
        let serial =
            WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);
        let parallel = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, 3);
        assert_eq!(serial.total_matches(), parallel.total_matches());
        assert_eq!(serial.workload.filter_tiles, parallel.workload.filter_tiles);
        assert_eq!(serial.events, parallel.events);
        assert!(serial.is_degraded());
    }

    #[test]
    fn one_thread_delegates_to_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let pair = SyntheticPair::generate(10_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let params = WgaParams::darwin_wga();
        let a = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, 1);
        let b = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        assert_eq!(a.total_matches(), b.total_matches());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let s: Sequence = "ACGT".parse().unwrap();
        run_parallel(&WgaParams::darwin_wga(), &s, &s, 0);
    }

    #[test]
    fn panicking_batch_is_isolated_not_fatal() {
        // A poisoned hit panics its worker batch (and the serial retry).
        // The run must complete, keep the good batches' anchors, and
        // record exactly one failed batch.
        let core = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(40); // 1280 bp
        let t: Sequence = core.parse().unwrap();
        let q: Sequence = core.parse().unwrap();
        let params = WgaParams::darwin_wga();

        // Hits every 320 bp plus one poisoned hit at the end; 4 threads →
        // the poison lands in the last batch.
        let mut hits: Vec<SeedHit> = (0..4).map(|i| SeedHit::new(i * 320, i * 320)).collect();
        hits.push(SeedHit::new(usize::MAX, 0));

        let clean = filter_hits_parallel(
            &params,
            &t,
            &q,
            &hits[..4],
            4,
            Instant::now(),
            crate::obs::STRAND_FWD,
            Obs::off(),
        );
        assert!(clean.events.is_empty());
        assert!(!clean.anchors.is_empty());

        let poisoned = filter_hits_parallel(
            &params,
            &t,
            &q,
            &hits,
            5,
            Instant::now(),
            crate::obs::STRAND_FWD,
            Obs::off(),
        );
        let failures: Vec<_> = poisoned
            .events
            .iter()
            .filter(|e| matches!(e, RunEvent::BatchFailed { .. }))
            .collect();
        assert_eq!(failures.len(), 1, "{:?}", poisoned.events);
        match failures[0] {
            RunEvent::BatchFailed { items, message, .. } => {
                assert_eq!(*items, 1);
                assert!(message.contains("poisoned"), "{message}");
            }
            _ => unreachable!(),
        }
        // Every anchor from the healthy batches survives.
        assert_eq!(poisoned.anchors, clean.anchors);
        assert_eq!(poisoned.tiles_executed, 4);
    }
}
