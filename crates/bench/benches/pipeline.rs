//! End-to-end pipeline throughput: Darwin-WGA vs the LASTZ-like baseline
//! on a small whole-genome alignment, plus thread scaling of the parallel
//! driver.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wga_core::{config::WgaParams, parallel::run_parallel, pipeline::WgaPipeline};

fn bench_pipeline(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let pair = SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.3), &mut rng);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pair.target.sequence.len() as u64));
    group.bench_function("darwin_wga_30kb", |b| {
        b.iter(|| {
            WgaPipeline::new(WgaParams::darwin_wga()).run(
                black_box(&pair.target.sequence),
                black_box(&pair.query.sequence),
            )
        })
    });
    group.bench_function("lastz_like_30kb", |b| {
        b.iter(|| {
            WgaPipeline::new(WgaParams::lastz_baseline()).run(
                black_box(&pair.target.sequence),
                black_box(&pair.query.sequence),
            )
        })
    });
    group.bench_function("darwin_wga_30kb_4threads", |b| {
        b.iter(|| {
            run_parallel(
                &WgaParams::darwin_wga(),
                black_box(&pair.target.sequence),
                black_box(&pair.query.sequence),
                4,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
