//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no
//! serializer is linked; the checkpoint journal uses the self-contained
//! codec in `wga_core::json`), so this crate simply re-exports the no-op
//! derive macros. The `derive` feature exists to satisfy the workspace
//! dependency declaration and has no effect.

pub use serde_derive::{Deserialize, Serialize};
