//! Offline vendored reimplementation of the `rand` 0.8 API subset used by
//! this workspace.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the handful of external crates it depends on. This crate
//! reproduces — bit-exactly — the parts of `rand` 0.8 the repository relies
//! on for *deterministic seeded data generation*:
//!
//! * [`rngs::StdRng`]: the ChaCha12 block cipher RNG (as in `rand_chacha`
//!   0.3), including `rand_core` 0.6's PCG32-based [`SeedableRng::seed_from_u64`]
//!   seed expansion and the `BlockRng` word-consumption order, so
//!   `StdRng::seed_from_u64(s)` yields the same `u32`/`u64` stream as
//!   upstream `rand` 0.8.
//! * [`distributions::Standard`] for `f64`/`f32`/`bool`/integers with the
//!   upstream bit-twiddling (53-bit float method, sign-bit bool).
//! * [`Rng::gen_range`] via the upstream Lemire widening-multiply rejection
//!   method for integers and the `[1, 2)`-mantissa method for floats.
//! * [`seq::SliceRandom::shuffle`]: the upstream descending Fisher–Yates.
//!
//! Anything the workspace does not call is intentionally absent.

#![warn(missing_docs)]

pub mod distributions;
mod std_rng;

pub use distributions::{Distribution, Standard};

/// Random-number generator core interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next `u32` of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next `u64` of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A deterministic RNG constructible from a seed (mirrors
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 (XSH-RR) output
    /// function — byte-for-byte the `rand_core` 0.6 default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot).to_le();
            let bytes = x.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing RNG extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive), using the
    /// upstream single-sample algorithms.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // Upstream uses the Bernoulli distribution (64-bit fixed point,
        // p scaled into 2^64 with the +1 rounding upstream applies).
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

/// Sequence-related random operations.
pub mod seq {
    use crate::Rng;

    /// Slice extension trait (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place with the upstream descending
        /// Fisher–Yates walk (`swap(i, gen_range(0..=i))`).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;
    use crate::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn mixed_width_draws_follow_block_rng_semantics() {
        // next_u64 after an odd number of next_u32 draws must consume the
        // straddling word pair exactly as BlockRng does; sanity-check that
        // interleaving does not panic and stays deterministic.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            if i % 3 == 0 {
                xs.push(a.next_u32() as u64);
                ys.push(b.next_u32() as u64);
            } else {
                xs.push(a.next_u64());
                ys.push(b.next_u64());
            }
        }
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..=3u8);
            assert!(u <= 3);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move elements");
    }
}
