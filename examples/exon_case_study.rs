//! Fig. 9 case study: an exon alignment that ungapped filtering misses.
//!
//! The paper's browser shot (Fig. 9) shows a single-exon gene in dm6 whose
//! dp4 alignment contains seed hits flanked by indels on both sides: the
//! ungapped extension stage of LASTZ cannot cross the indels and drops the
//! region, while Darwin-WGA's banded Smith-Waterman filter absorbs them
//! and extends the hit to a >400 bp alignment.
//!
//! This example reconstructs that situation synthetically: a conserved
//! "exon" whose only seed hits sit in short conserved islets separated by
//! indels, embedded in unrelated flanks. It then runs both filters on the
//! same seed hit and both full pipelines on the region.
//!
//! Run with: `cargo run --release --example exon_case_study`

use darwin_wga::align::{banded, ungapped};
use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::{markov::MarkovModel, Base, GapPenalties, Sequence, SubstitutionMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mutates ~`rate` of bases.
fn mutate(s: &Sequence, rate: f64, rng: &mut StdRng) -> Sequence {
    s.iter()
        .map(|b| {
            if rng.gen::<f64>() < rate {
                Base::from_code(rng.gen_range(0..4u8))
            } else {
                b
            }
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = MarkovModel::genome_like();

    // The "exon": five ~25-bp conserved islets separated by indel-bearing
    // spacers — every gap-free block is < 30 bp, the LASTZ cutoff.
    let islets: Vec<Sequence> = (0..5).map(|_| model.generate(25, &mut rng)).collect();
    let spacers_t: Vec<Sequence> = (0..4).map(|_| model.generate(12, &mut rng)).collect();

    let mut exon_t = Sequence::new();
    let mut exon_q = Sequence::new();
    for (i, islet) in islets.iter().enumerate() {
        exon_t.extend(islet.iter());
        exon_q.extend(mutate(islet, 0.04, &mut rng).iter());
        if i < 4 {
            let sp = &spacers_t[i];
            exon_t.extend(sp.iter());
            // Query spacer: a diverged copy with an indel (3 bases shorter).
            let sp_q = mutate(&sp.subsequence(0..9), 0.3, &mut rng);
            exon_q.extend(sp_q.iter());
        }
    }

    // Embed in unrelated flanks.
    let flank = 2_000usize;
    let mut target = model.generate(flank, &mut rng);
    let exon_t_start = target.len();
    target.extend(exon_t.iter());
    target.extend(model.generate(flank, &mut rng).iter());
    let mut query = model.generate(flank, &mut rng);
    let exon_q_start = query.len();
    query.extend(exon_q.iter());
    query.extend(model.generate(flank, &mut rng).iter());

    println!("Constructed a Fig. 9-style region:");
    println!("  exon: 5 conserved islets of 25 bp separated by indel spacers");
    println!("  every gap-free block < 30 bp (the LASTZ ungapped cutoff)\n");

    // --- Compare the two filters on the same seed hit ------------------
    let w = SubstitutionMatrix::darwin_wga();
    let g = GapPenalties::darwin_wga();
    let (seed_t, seed_q) = (exon_t_start + 5, exon_q_start + 5);

    let ug = ungapped::ungapped_extend(target.as_slice(), query.as_slice(), seed_t, seed_q, 12, &w, 910);
    println!("Ungapped X-drop filter (LASTZ stage):");
    println!(
        "  best segment {}..{} on the seed diagonal, score {} (threshold 3000) → {}",
        ug.target_start,
        ug.target_end,
        ug.score,
        if ug.score >= 3000 { "PASS" } else { "REJECTED" }
    );

    let (tr, qr) = banded::tile_around(seed_t, seed_q, 320, target.len(), query.len());
    let bsw = banded::banded_smith_waterman(
        &target.as_slice()[tr],
        &query.as_slice()[qr],
        &w,
        &g,
        32,
    );
    println!("Gapped BSW filter (Darwin-WGA stage):");
    println!(
        "  tile Vmax {} (threshold 4000) → {}\n",
        bsw.max_score,
        if bsw.max_score >= 4000 { "PASS" } else { "REJECTED" }
    );

    // --- Run both complete pipelines on the region ----------------------
    let lastz = WgaPipeline::new(WgaParams::lastz_baseline()).run(&target, &query);
    let darwin = WgaPipeline::new(WgaParams::darwin_wga()).run(&target, &query);
    println!("Full pipelines over the {}-bp region:", target.len());
    println!(
        "  LASTZ-like : {} alignments, {} matched bp",
        lastz.alignments.len(),
        lastz.total_matches()
    );
    println!(
        "  Darwin-WGA : {} alignments, {} matched bp",
        darwin.alignments.len(),
        darwin.total_matches()
    );

    if darwin.total_matches() > lastz.total_matches() {
        println!("\n→ The gapped filter recovered the exon that ungapped filtering lost —");
        println!("  the Fig. 9 phenomenon.");
    } else {
        println!("\n(unexpected: gapped filtering did not win on this seed — rerun with another seed)");
    }
}
