//! `wga-lint` — project-invariant static analyzer for the Darwin-WGA
//! workspace.
//!
//! Five rules, all driven by the hand-rolled lexer in [`lexer`] and
//! configured by the checked-in manifest (`scripts/wga-lint.manifest`):
//!
//! * **panics** — `.unwrap()`/`.expect(`/`panic!`-family in non-test
//!   library code, with per-directory baselines for pre-existing sites
//!   and zero tolerance in `[panics-forbidden]` dirs (obs).
//! * **determinism** — hash-map/set iteration, wall-clock reads and
//!   float use in the manifest's `[determinism]` module set (the code
//!   that feeds `canonical_text`).
//! * **deadlock** — the dataflow stage→queue graph must be acyclic and
//!   no bounded-queue push may happen under a held lock guard.
//! * **hot-loop** — no allocation/formatting in loop bodies of files
//!   tagged `// lint: hot`.
//! * **unsafe** — every `unsafe` needs a `// SAFETY:` comment.
//!
//! Any rule can be waived per site with
//! `// lint: allow(<rule>): <why>` — the *why* is mandatory.

pub mod config;
pub mod deadlock;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::{Config, LintError};

/// All rule names, in reporting order.
pub const RULES: &[&str] = &["panics", "determinism", "deadlock", "hot-loop", "unsafe"];

/// What became of one rule hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteStatus {
    /// Counts against the exit code.
    Violation,
    /// Covered by a `// lint: allow(...)` waiver.
    Waived,
    /// Absorbed by a per-directory panic baseline.
    Baselined,
}

/// One rule hit, resolved.
#[derive(Debug)]
pub struct Site {
    pub rule: &'static str,
    /// Root-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub msg: String,
    pub status: SiteStatus,
}

/// Per-rule counters for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleStats {
    pub found: usize,
    pub waived: usize,
    pub baselined: usize,
    pub violations: usize,
}

/// Full analysis result.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    pub sites: Vec<Site>,
    /// Panic accounting per baseline directory:
    /// (dir, non-waived sites found, allowed).
    pub baseline_dirs: Vec<(String, usize, usize)>,
    /// Deadlock-rule graph shape.
    pub queues: usize,
    pub edges: usize,
    pub cycles: usize,
    /// Files carrying `// lint: hot`.
    pub hot_files: usize,
    /// Rules that actually ran, in [`RULES`] order.
    pub enabled: Vec<&'static str>,
}

impl Analysis {
    /// Counters for one rule.
    pub fn stats(&self, rule: &str) -> RuleStats {
        let mut s = RuleStats::default();
        for site in self.sites.iter().filter(|s| s.rule == rule) {
            s.found += 1;
            match site.status {
                SiteStatus::Violation => s.violations += 1,
                SiteStatus::Waived => s.waived += 1,
                SiteStatus::Baselined => s.baselined += 1,
            }
        }
        s
    }

    /// Non-waived, non-baselined site count — the exit-code driver.
    pub fn total_violations(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.status == SiteStatus::Violation)
            .count()
    }
}

/// Recursively collects `.rs` files under `root/rel`, sorted by name
/// so every run visits files in the same order.
fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let abs = root.join(rel);
    let rd = fs::read_dir(&abs).map_err(|e| LintError::Io {
        path: abs.clone(),
        msg: e.to_string(),
    })?;
    let mut names: Vec<(bool, String)> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io {
            path: abs.clone(),
            msg: e.to_string(),
        })?;
        let is_dir = entry
            .file_type()
            .map_err(|e| LintError::Io {
                path: entry.path(),
                msg: e.to_string(),
            })?
            .is_dir();
        if let Some(name) = entry.file_name().to_str() {
            names.push((is_dir, name.to_string()));
        }
    }
    names.sort();
    for (is_dir, name) in names {
        let child = rel.join(&name);
        if is_dir {
            walk(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Runs the enabled rules over every file the manifest scans.
pub fn run(cfg: &Config, enabled: &[&'static str]) -> Result<Analysis, LintError> {
    let mut analysis = Analysis {
        enabled: RULES
            .iter()
            .filter(|r| enabled.contains(r))
            .copied()
            .collect(),
        ..Analysis::default()
    };
    let on = |rule: &str| analysis.enabled.contains(&rule);

    // Collect and read every scanned file first; lexes borrow sources.
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan_dirs {
        walk(&cfg.root, dir, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut sources: Vec<String> = Vec::with_capacity(files.len());
    for rel in &files {
        let abs = cfg.root.join(rel);
        let src = fs::read_to_string(&abs).map_err(|e| LintError::Io {
            path: abs,
            msg: e.to_string(),
        })?;
        sources.push(src);
    }
    let lexed: Vec<lexer::Lexed<'_>> = sources.iter().map(|s| lex_source(s)).collect();
    let dirs: Vec<rules::Directives> = lexed.iter().map(rules::scan_directives).collect();
    analysis.files_scanned = files.len();
    analysis.hot_files = dirs.iter().filter(|d| d.hot).count();

    let rel_str =
        |p: &Path| -> String { p.to_string_lossy().replace('\\', "/") };

    // --- panics: per-file sites, then baseline aggregation ----------
    if on("panics") {
        // Non-waived site indexes grouped by baseline directory.
        let mut groups: BTreeMap<PathBuf, (usize, Vec<usize>)> = BTreeMap::new();
        for ((rel, lx), dir) in files.iter().zip(&lexed).zip(&dirs) {
            if Config::under_any(rel, &cfg.panics_exempt) {
                continue;
            }
            let forbidden = Config::under_any(rel, &cfg.panics_forbidden);
            for raw in rules::panics(lx, dir) {
                if raw.waived {
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_str(rel),
                        line: raw.line,
                        msg: raw.msg,
                        status: SiteStatus::Waived,
                    });
                } else if forbidden {
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_str(rel),
                        line: raw.line,
                        msg: format!("{} — in a panic-forbidden directory", raw.msg),
                        status: SiteStatus::Violation,
                    });
                } else {
                    let (bdir, allowed) = cfg.baseline_for(rel);
                    let idx = analysis.sites.len();
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_str(rel),
                        line: raw.line,
                        msg: raw.msg,
                        status: SiteStatus::Violation, // resolved below
                    });
                    let entry = groups.entry(bdir).or_insert((allowed, Vec::new()));
                    entry.1.push(idx);
                }
            }
        }
        // Dirs with a manifest baseline but no sites still show up in
        // the accounting, so headroom drift is visible.
        for (bdir, allowed) in &cfg.panic_baselines {
            groups.entry(bdir.clone()).or_insert((*allowed, Vec::new()));
        }
        for (bdir, (allowed, idxs)) in groups {
            let found = idxs.len();
            if found > allowed {
                for i in idxs {
                    analysis.sites[i].msg = format!(
                        "{} — {}: {} found > {} allowed",
                        analysis.sites[i].msg,
                        rel_str(&bdir),
                        found,
                        allowed
                    );
                }
            } else {
                for i in idxs {
                    analysis.sites[i].status = SiteStatus::Baselined;
                }
            }
            analysis
                .baseline_dirs
                .push((rel_str(&bdir), found, allowed));
        }
    }

    // --- determinism: manifest module set only ----------------------
    if on("determinism") {
        for ((rel, lx), dir) in files.iter().zip(&lexed).zip(&dirs) {
            if !cfg.determinism_files.iter().any(|f| f == rel) {
                continue;
            }
            for raw in rules::determinism(lx, dir) {
                analysis.sites.push(Site {
                    rule: "determinism",
                    file: rel_str(rel),
                    line: raw.line,
                    msg: raw.msg,
                    status: if raw.waived {
                        SiteStatus::Waived
                    } else {
                        SiteStatus::Violation
                    },
                });
            }
        }
    }

    // --- hot-loop + unsafe: every scanned file ----------------------
    if on("hot-loop") || on("unsafe") {
        for ((rel, lx), dir) in files.iter().zip(&lexed).zip(&dirs) {
            if on("hot-loop") {
                for raw in rules::hot_loop(lx, dir) {
                    analysis.sites.push(Site {
                        rule: "hot-loop",
                        file: rel_str(rel),
                        line: raw.line,
                        msg: raw.msg,
                        status: if raw.waived {
                            SiteStatus::Waived
                        } else {
                            SiteStatus::Violation
                        },
                    });
                }
            }
            if on("unsafe") {
                for raw in rules::unsafe_audit(lx, dir) {
                    analysis.sites.push(Site {
                        rule: "unsafe",
                        file: rel_str(rel),
                        line: raw.line,
                        msg: raw.msg,
                        status: if raw.waived {
                            SiteStatus::Waived
                        } else {
                            SiteStatus::Violation
                        },
                    });
                }
            }
        }
    }

    // --- deadlock: cross-file over the dataflow dirs ----------------
    if on("deadlock") {
        let mut dl_files: Vec<usize> = Vec::new();
        for (i, rel) in files.iter().enumerate() {
            if Config::under_any(rel, &cfg.deadlock_dirs) {
                dl_files.push(i);
            }
        }
        let pairs: Vec<(&lexer::Lexed<'_>, &rules::Directives)> =
            dl_files.iter().map(|&i| (&lexed[i], &dirs[i])).collect();
        let dl = deadlock::analyze(&pairs);
        analysis.queues = dl.queues.len();
        analysis.edges = dl.edges.len();
        analysis.cycles = dl.cycles.len();
        for (fi, raw) in dl.sites {
            let rel = &files[dl_files[fi]];
            analysis.sites.push(Site {
                rule: "deadlock",
                file: rel_str(rel),
                line: raw.line,
                msg: raw.msg,
                status: if raw.waived {
                    SiteStatus::Waived
                } else {
                    SiteStatus::Violation
                },
            });
        }
    }

    analysis
        .sites
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(analysis)
}

/// Thin wrapper so `sources.iter().map(...)` gets a fn pointer with
/// the right lifetime relationship.
fn lex_source(src: &str) -> lexer::Lexed<'_> {
    lexer::lex(src)
}
