//! Future work (§IX): TBLASTX-like search in amino-acid space.
//!
//! Builds a protein-coding gene pair whose DNA has diverged heavily at
//! synonymous (third-codon) positions — the typical fate of coding
//! sequence between distant species. DNA-level alignment sees ~70%
//! identity scattered with mismatches every few bases; protein-level
//! search sees a near-identical peptide. This is why the paper's authors
//! name translated search as Darwin-WGA's next extension.
//!
//! Run with: `cargo run --release --example translated_search`

use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::markov::MarkovModel;
use darwin_wga::genome::{Base, Sequence};
use darwin_wga::protein::search::{tblastx, TblastxParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds two coding sequences with identical peptides but randomised
/// third codon positions (4-fold degenerate codon families only).
fn wobble_gene(codons: usize, rng: &mut StdRng) -> (Sequence, Sequence) {
    const FAMILIES: [(Base, Base); 8] = [
        (Base::C, Base::T),
        (Base::G, Base::T),
        (Base::T, Base::C),
        (Base::C, Base::C),
        (Base::A, Base::C),
        (Base::G, Base::C),
        (Base::C, Base::G),
        (Base::G, Base::G),
    ];
    let mut t = Sequence::new();
    let mut q = Sequence::new();
    for _ in 0..codons {
        let (c1, c2) = FAMILIES[rng.gen_range(0..8)];
        for s in [&mut t, &mut q] {
            s.push(c1);
            s.push(c2);
            s.push(Base::from_code(rng.gen_range(0..4)));
        }
    }
    (t, q)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let model = MarkovModel::genome_like();

    // A 150-codon gene with fully randomised wobble positions, embedded
    // in unrelated flanks.
    let (gene_t, gene_q) = wobble_gene(150, &mut rng);
    let dna_identity = gene_t
        .iter()
        .zip(gene_q.iter())
        .filter(|(a, b)| a == b)
        .count() as f64
        / gene_t.len() as f64;

    let mut target = model.generate(3_000, &mut rng);
    let gene_start = target.len();
    target.extend(gene_t.iter());
    target.extend(model.generate(3_000, &mut rng).iter());
    let mut query = model.generate(2_000, &mut rng);
    query.extend(gene_q.iter());
    query.extend(model.generate(2_000, &mut rng).iter());

    println!("A {}-bp gene with identical peptide but randomised wobble positions:", gene_t.len());
    println!("  DNA identity of the gene: {:.1}% (scattered mismatches every ~3 bp)\n", dna_identity * 100.0);

    // DNA-level Darwin-WGA.
    let report = WgaPipeline::new(WgaParams::darwin_wga()).run(&target, &query);
    let covering = report
        .alignments
        .iter()
        .filter(|a| {
            a.alignment.target_start < gene_start + 450 && a.alignment.target_end > gene_start
        })
        .count();
    println!("DNA-level Darwin-WGA:");
    println!(
        "  {} alignments total, {} covering the gene, {} matched bp",
        report.alignments.len(),
        covering,
        report.total_matches()
    );

    // Protein-level translated search.
    let hits = tblastx(&target, &query, &TblastxParams::default());
    println!("\nTranslated (TBLASTX-like) search:");
    match hits.first() {
        Some(best) => {
            println!(
                "  {} hits; best: score {} over {} residues, target DNA {}..{}",
                hits.len(),
                best.score,
                best.residues,
                best.target_dna.0,
                best.target_dna.1
            );
            let on_gene = best.target_dna.0 >= gene_start.saturating_sub(60)
                && best.target_dna.1 <= gene_start + 450 + 60;
            println!(
                "  hit lands on the gene: {}",
                if on_gene { "yes" } else { "NO (unexpected)" }
            );
        }
        None => println!("  no hits (unexpected)"),
    }

    println!("\n→ Protein space is immune to synonymous divergence: the peptide is");
    println!("  identical even though every third DNA base is random. This is the");
    println!("  sensitivity gain the paper's §IX extension targets.");
}
