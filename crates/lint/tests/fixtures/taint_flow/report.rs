//! Taint fixture: `canonical_text` is a canonical sink that reaches a
//! wall-clock read two calls down. The file is entry-reachable, so it
//! must also be classified in `[determinism]` / `[determinism-exempt]`
//! or the surface check fires.

pub fn canonical_text() -> String {
    render(compute())
}

fn compute() -> u64 {
    tick()
}

fn tick() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

fn render(x: u64) -> String {
    format!("{x}")
}
