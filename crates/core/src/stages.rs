//! Stage implementations: filtering and extension dispatch.

use crate::absorb::{merge_into_kept, AbsorptionGrid};
use crate::budget::deadline_event;
use crate::config::{ExtensionStage, FilterStage, GappedFilterParams, WgaParams};
use crate::obs::{strand_code, Counter, Obs, SpanName};
use crate::report::{BudgetKind, RunEvent, StageKind, Strand, WgaAlignment, WgaReport};
use align::banded::{banded_smith_waterman, tile_around, BandedOutcome};
use align::gactx::{self, ExtendedAlignment, TilingParams};
use align::ungapped::ungapped_extend;
use genome::Sequence;
use seed::{Anchor, SeedHit, SeedTable};
use std::time::{Duration, Instant};

/// Builds the seed table for `target`, returning it with the wall-clock
/// the build took.
///
/// Every driver (serial, barrier-parallel, dataflow, assembly) times the
/// table build through this one helper and adds only the returned
/// duration to `timings.seeding` — measuring it around a larger span
/// (the old pattern) silently folded filtering and extension time into
/// the seeding figure.
pub(crate) fn timed_seed_table(params: &WgaParams, target: &Sequence) -> (SeedTable, Duration) {
    let start = Instant::now();
    let table = SeedTable::build(target, &params.seed_pattern, params.max_seed_occurrences);
    (table, start.elapsed())
}

/// Result of filtering one seed hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterOutcome {
    /// The anchor, when the hit passed the threshold.
    pub anchor: Option<Anchor>,
    /// DP cells (gapped) or diagonal cells (ungapped) evaluated.
    pub cells: u64,
}

/// Thresholds one gapped-filter tile result into a [`FilterOutcome`],
/// translating tile-local maximum coordinates back to chromosome space.
///
/// Shared by [`run_filter`] and the batched engine in
/// [`crate::filter_engine`], so both BSW implementations apply byte-for-
/// byte identical anchor construction.
pub(crate) fn gapped_outcome(
    f: &GappedFilterParams,
    t0: usize,
    q0: usize,
    out: BandedOutcome,
) -> FilterOutcome {
    let anchor = (out.max_score >= f.threshold).then(|| Anchor {
        target_pos: t0 + out.target_pos,
        query_pos: q0 + out.query_pos,
        filter_score: out.max_score,
    });
    FilterOutcome {
        anchor,
        cells: out.cells,
    }
}

/// Runs the configured filter on one seed hit.
///
/// For the gapped filter a `T_f`-sized tile is centred on the hit
/// (Fig. 4b) and banded Smith-Waterman returns `V_max` and its position
/// `x_max`; for the ungapped filter the hit is extended along its
/// diagonal. Either way the anchor is the position of the maximum score.
pub fn run_filter(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    hit: SeedHit,
) -> FilterOutcome {
    match params.filter {
        FilterStage::Gapped(f) => {
            let (t_range, q_range) = tile_around(
                hit.target_pos,
                hit.query_pos,
                f.tile_size,
                target.len(),
                query.len(),
            );
            let (t0, q0) = (t_range.start, q_range.start);
            let out = banded_smith_waterman(
                &target.as_slice()[t_range],
                &query.as_slice()[q_range],
                &params.scoring,
                &params.gaps,
                f.band,
            );
            gapped_outcome(&f, t0, q0, out)
        }
        FilterStage::Ungapped(f) => {
            let seed_len = params
                .seed_pattern
                .span()
                .min(target.len() - hit.target_pos)
                .min(query.len() - hit.query_pos);
            let out = ungapped_extend(
                target.as_slice(),
                query.as_slice(),
                hit.target_pos,
                hit.query_pos,
                seed_len,
                &params.scoring,
                f.xdrop,
            );
            let anchor = (out.score >= f.threshold).then_some(Anchor {
                target_pos: out.anchor_target,
                query_pos: out.anchor_query,
                filter_score: out.score,
            });
            FilterOutcome {
                anchor,
                cells: out.cells,
            }
        }
    }
}

/// Runs the configured extension from one anchor.
pub fn run_extension(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    anchor: Anchor,
) -> Option<ExtendedAlignment> {
    let tiling = match params.extension {
        ExtensionStage::GactX(t) => t,
        ExtensionStage::Gact { traceback_bytes } => TilingParams::gact_with_memory(traceback_bytes),
        ExtensionStage::Ydrop { y } => TilingParams {
            tile_size: 8192,
            overlap: 256,
            y,
            edge_traceback: false,
        },
    };
    gactx::extend_alignment(
        target,
        query,
        anchor.target_pos.min(target.len()),
        anchor.query_pos.min(query.len()),
        &params.scoring,
        &params.gaps,
        &tiling,
    )
}

/// Extends `anchors` best-scoring-first with anchor absorption, budget
/// enforcement and deadline checks, appending results into `report`.
///
/// Shared by the serial ([`crate::pipeline::WgaPipeline`]) and parallel
/// ([`crate::parallel`]) drivers so budget semantics are identical: the
/// extension-cell budget and the pair deadline are checked before each
/// anchor; on a trip a [`RunEvent::BudgetExceeded`] is recorded and the
/// remaining (worse-scoring) anchors are skipped.
///
/// `pair_start` anchors the per-pair wall-clock deadline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_anchors(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    strand: Strand,
    anchors: Vec<Anchor>,
    pair_start: Instant,
    report: &mut WgaReport,
    obs: Obs<'_>,
) {
    extend_anchors_from(
        params,
        strand,
        anchors,
        pair_start,
        report,
        obs,
        &mut |_, anchor| run_extension(params, target, query, anchor),
    );
}

/// The commit loop behind [`extend_anchors`], with the per-anchor
/// extension supplied by `fetch(seq, anchor)` — `seq` is the anchor's
/// index in descending-filter-score order.
///
/// The serial driver passes a closure that calls [`run_extension`]
/// inline; [`crate::shard::extend_anchors_sharded`] passes one that
/// collects results speculatively computed by worker threads. Everything
/// observable — sort order, budget/deadline truncation, absorption,
/// fault-gate firing order, counters, report mutation — lives here and
/// runs on the calling thread, so both drivers are byte-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_anchors_from(
    params: &WgaParams,
    strand: Strand,
    mut anchors: Vec<Anchor>,
    pair_start: Instant,
    report: &mut WgaReport,
    obs: Obs<'_>,
    fetch: &mut dyn FnMut(usize, Anchor) -> Option<ExtendedAlignment>,
) {
    let ext_start = Instant::now();
    obs.add(Counter::AnchorsPassed, anchors.len() as u64);
    let anchors_in = anchors.len() as u64;
    let scode = strand_code(strand);
    let mut buf = obs.buffer();
    // Lane-level `extend` span enclosing the whole commit loop; its id
    // is allocated up front so each `extend.tile` child can carry it
    // as `parent` before the lane span itself finishes.
    let lane_timer = buf.start();
    let lane_id = buf.alloc_id();
    buf.set_parent(lane_id);
    let mut lane_cells = 0u64;
    // Extend best-scoring anchors first so absorption favours strong
    // alignments — and so budget truncation drops the weakest work.
    anchors.sort_by_key(|a| std::cmp::Reverse(a.filter_score));
    let mut grid = AbsorptionGrid::new();
    let mut kept: Vec<align::Alignment> = Vec::new();
    for (seq, anchor) in anchors.into_iter().enumerate() {
        if let Some(limit) = params.budget.max_extension_cells {
            if report.workload.extension_cells >= limit {
                report.events.push(RunEvent::BudgetExceeded {
                    budget: BudgetKind::ExtensionCells,
                    stage: StageKind::Extension,
                    limit,
                    observed: report.workload.extension_cells,
                });
                break;
            }
        }
        if params.budget.deadline_exceeded(pair_start) {
            report
                .events
                .push(deadline_event(&params.budget, StageKind::Extension, pair_start));
            break;
        }
        if grid.covers(anchor.target_pos, anchor.query_pos) {
            report.counters.anchors_absorbed += 1;
            continue;
        }
        // Chaos hook: per-pair extension is serial on every executor,
        // so `extend.tile` occurrence indices line up across them.
        obs.fault_gate(crate::faultsim::Hook::ExtendTile);
        let anchor_timer = buf.start();
        let Some(ext) = fetch(seq, anchor) else {
            continue;
        };
        obs.extension_anchor(ext.stats.tiles, ext.stats.cells, ext.stats.rows);
        lane_cells += ext.stats.cells;
        buf.finish(
            anchor_timer,
            SpanName::ExtendTile,
            scode,
            seq as u64,
            ext.stats.tiles,
            ext.stats.cells,
        );
        report.workload.extension_tiles += ext.stats.tiles;
        report.workload.extension_cells += ext.stats.cells;
        report.workload.extension_rows += ext.stats.rows;
        if ext.alignment.score >= params.extension_threshold {
            grid.insert_alignment(&ext.alignment);
            // Resolve staggered re-extensions (an anchor just past an
            // X-drop stopping point re-aligns the same region).
            if !merge_into_kept(&mut kept, ext.alignment) {
                report.counters.anchors_absorbed += 1;
            }
        }
    }
    buf.set_parent(crate::obs::NO_SPAN);
    buf.finish_with_id(lane_timer, lane_id, SpanName::Extend, scode, 0, anchors_in, lane_cells);
    obs.add(Counter::AlignmentsKept, kept.len() as u64);
    report.counters.alignments_kept += kept.len() as u64;
    report
        .alignments
        .extend(kept.into_iter().map(|alignment| WgaAlignment { alignment, strand }));
    report.timings.extension += ext_start.elapsed();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WgaParams;

    fn sequences() -> (Sequence, Sequence) {
        // 128 bp shared core with long distinct flanks (longer than the
        // 320-base filter tile, so a hit in the flank sees no homology).
        let core = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(4);
        let t: Sequence = format!("{}{}{}", "T".repeat(400), core, "T".repeat(400))
            .parse()
            .unwrap();
        let q: Sequence = format!("{}{}{}", "G".repeat(400), core, "G".repeat(400))
            .parse()
            .unwrap();
        (t, q)
    }

    #[test]
    fn gapped_filter_passes_true_hit() {
        let (t, q) = sequences();
        let params = WgaParams::darwin_wga();
        let out = run_filter(&params, &t, &q, SeedHit::new(420, 420));
        let anchor = out.anchor.expect("true hit should pass");
        assert!(anchor.filter_score >= 4000);
        assert!(out.cells > 0);
    }

    #[test]
    fn gapped_filter_rejects_noise() {
        let (t, q) = sequences();
        let params = WgaParams::darwin_wga();
        // A hit in the mismatching flank region.
        let out = run_filter(&params, &t, &q, SeedHit::new(10, 10));
        assert!(out.anchor.is_none());
    }

    #[test]
    fn ungapped_filter_passes_true_hit() {
        let (t, q) = sequences();
        let params = WgaParams::lastz_baseline();
        let out = run_filter(&params, &t, &q, SeedHit::new(420, 420));
        assert!(out.anchor.is_some());
    }

    #[test]
    fn extension_produces_full_alignment() {
        let (t, q) = sequences();
        let params = WgaParams::darwin_wga();
        let anchor = Anchor {
            target_pos: 460,
            query_pos: 460,
            filter_score: 5000,
        };
        let ext = run_extension(&params, &t, &q, anchor).expect("alignment");
        assert!(ext.alignment.matches() >= 120);
    }

    #[test]
    fn filter_near_sequence_edges_does_not_panic() {
        let (t, q) = sequences();
        for params in [WgaParams::darwin_wga(), WgaParams::lastz_baseline()] {
            let _ = run_filter(&params, &t, &q, SeedHit::new(0, 0));
            let last = SeedHit::new(t.len() - 20, q.len() - 20);
            let _ = run_filter(&params, &t, &q, last);
        }
    }
}
