//! Per-file rules: panics, determinism, hot-loop hygiene, unsafe
//! audit — plus the comment-directive layer (waivers and file tags)
//! they all consult.
//!
//! Each rule walks the token stream from [`crate::lexer`], skipping
//! test-masked tokens, and returns raw sites. Aggregation policy
//! (panic baselines, forbidden directories) lives in `lib.rs`; this
//! module only answers "where does the pattern occur, and is that
//! line waived".

use crate::lexer::{Lexed, TokKind, item_end};

/// One waiver: `// lint: allow(<rule>): <why>` covering a line range.
///
/// A trailing waiver covers only its own line. An own-line waiver
/// covers the next code line — or the whole following item (fn,
/// impl, const, …) when the next token starts one, so a single
/// waiver above a function covers every site inside it.
#[derive(Debug)]
pub struct Waiver {
    pub rule: String,
    pub start: u32,
    pub end: u32,
}

/// Comment directives extracted from one file.
#[derive(Debug, Default)]
pub struct Directives {
    /// File carries `// lint: hot` — hot-loop rule applies.
    pub hot: bool,
    pub waivers: Vec<Waiver>,
}

impl Directives {
    /// Whether `line` is waived for `rule`.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && w.start <= line && line <= w.end)
    }
}

/// A rule hit before aggregation: line, message, waiver status, and
/// the token index it anchors to (so interprocedural passes can map a
/// site to its enclosing fn).
#[derive(Debug)]
pub struct RawSite {
    pub line: u32,
    pub msg: String,
    pub waived: bool,
    pub tok: usize,
}

/// Tokens that begin an item or statement — an own-line waiver above
/// one of these covers the whole brace/semicolon extent.
const ITEM_STARTERS: &[&str] = &[
    "#", "pub", "fn", "const", "static", "struct", "enum", "impl", "trait", "mod", "unsafe",
    "type", "let", "for", "while", "loop", "match", "if",
];

/// Extracts `lint:` directives from a file's comments.
pub fn scan_directives(lexed: &Lexed<'_>) -> Directives {
    let mut out = Directives::default();
    for c in &lexed.comments {
        // Directives must START the comment (`// lint: …`); prose that
        // merely mentions the syntax — like this sentence — is inert.
        let Some(rest) = c.text.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let body = rest.trim();
        if let Some(rest) = body.strip_prefix("hot") {
            // `// lint: hot` possibly followed by prose, but not e.g.
            // a hypothetical `lint: hotfix` directive.
            if rest.is_empty() || !rest.starts_with(|ch: char| ch.is_ascii_alphanumeric()) {
                out.hot = true;
                continue;
            }
        }
        let Some(rest) = body.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim();
        // A waiver must say why; `allow(rule)` with no rationale is
        // ignored, so the underlying site stays a violation.
        let why = rest[close + 1..]
            .trim_start_matches(':')
            .trim();
        if rule.is_empty() || why.is_empty() {
            continue;
        }
        let (start, end) = if c.trailing {
            (c.line, c.line)
        } else {
            match lexed.toks.iter().position(|t| t.line > c.line) {
                Some(idx) => {
                    let start = lexed.toks[idx].line;
                    let end = if ITEM_STARTERS.contains(&lexed.toks[idx].text) {
                        lexed.toks[item_end(&lexed.toks, idx)].line
                    } else {
                        start
                    };
                    (start, end)
                }
                None => continue, // waiver at EOF covers nothing
            }
        };
        out.waivers.push(Waiver {
            rule: rule.to_string(),
            start,
            end,
        });
    }
    out
}

/// Panic-prone call sites in non-test code: `.unwrap()`, `.expect(`,
/// and the `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros.
pub fn panics(lexed: &Lexed<'_>, dir: &Directives) -> Vec<RawSite> {
    const METHODS: &[&str] = &["unwrap", "expect"];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        if t.text == "."
            && matches!(toks.get(i + 1), Some(m) if m.kind == TokKind::Ident && METHODS.contains(&m.text))
            && matches!(toks.get(i + 2), Some(p) if p.text == "(")
        {
            let line = toks[i + 1].line;
            out.push(RawSite {
                line,
                msg: format!(".{}()", toks[i + 1].text),
                waived: dir.waived("panics", line),
                tok: i + 1,
            });
        }
        if t.kind == TokKind::Ident
            && MACROS.contains(&t.text)
            && matches!(toks.get(i + 1), Some(p) if p.text == "!")
        {
            out.push(RawSite {
                line: t.line,
                msg: format!("{}!", t.text),
                waived: dir.waived("panics", t.line),
                tok: i,
            });
        }
    }
    out
}

/// Methods whose call on a hash container observes its nondeterministic
/// iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Determinism violations in a canonical-output module: hash-map/set
/// iteration, wall-clock reads, and float literals/types.
pub fn determinism(lexed: &Lexed<'_>, dir: &Directives) -> Vec<RawSite> {
    let toks = &lexed.toks;
    let mut out = Vec::new();

    // Pass 1: names bound to HashMap/HashSet, via a type ascription
    // (`name: [path::]HashMap<…>`, possibly behind `&`/`mut`) or a
    // constructor assignment (`name = HashMap::new()`).
    let mut hash_names: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a path (`std ::`, `collections ::` — the
        // lexer splits `::` into two `:` puncts) and any `&` / `mut`
        // to the `:` or `=` that binds a name.
        let mut k = i;
        while k >= 3
            && toks[k - 1].text == ":"
            && toks[k - 2].text == ":"
            && toks[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        while k >= 1 && (toks[k - 1].text == "&" || toks[k - 1].text == "mut") {
            k -= 1;
        }
        let ascription = k >= 2
            && toks[k - 1].text == ":"
            && toks[k - 2].kind == TokKind::Ident;
        let assignment = k >= 2
            && toks[k - 1].text == "="
            && toks[k - 2].kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(c) if c.text == ":");
        if ascription || assignment {
            let name = toks[k - 2].text;
            if !hash_names.contains(&name) {
                hash_names.push(name);
            }
        }
    }

    // Pass 2: flag order-observing uses.
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                // name . iter ( …   where name is hash-bound
                if hash_names.contains(&t.text)
                    && matches!(toks.get(i + 1), Some(d) if d.text == ".")
                    && matches!(toks.get(i + 2), Some(m) if m.kind == TokKind::Ident && HASH_ITER_METHODS.contains(&m.text))
                    && matches!(toks.get(i + 3), Some(p) if p.text == "(")
                {
                    out.push(RawSite {
                        line: t.line,
                        msg: format!("hash iteration: {}.{}()", t.text, toks[i + 2].text),
                        waived: dir.waived("determinism", t.line),
                        tok: i,
                    });
                }
                // for … in [&][mut] name {
                if t.text == "in" {
                    let mut j = i + 1;
                    while matches!(toks.get(j), Some(x) if x.text == "&" || x.text == "mut") {
                        j += 1;
                    }
                    if matches!(toks.get(j), Some(x) if x.kind == TokKind::Ident && hash_names.contains(&x.text))
                        && matches!(toks.get(j + 1), Some(b) if b.text == "{")
                    {
                        out.push(RawSite {
                            line: toks[j].line,
                            msg: format!("hash iteration: for … in {}", toks[j].text),
                            waived: dir.waived("determinism", toks[j].line),
                            tok: j,
                        });
                    }
                }
                if t.text == "Instant"
                    && matches!(toks.get(i + 1), Some(c) if c.text == ":")
                {
                    out.push(RawSite {
                        line: t.line,
                        msg: "wall clock: Instant::now".to_string(),
                        waived: dir.waived("determinism", t.line),
                        tok: i,
                    });
                }
                if t.text == "SystemTime" {
                    out.push(RawSite {
                        line: t.line,
                        msg: "wall clock: SystemTime".to_string(),
                        waived: dir.waived("determinism", t.line),
                        tok: i,
                    });
                }
                if t.text == "f32" || t.text == "f64" {
                    out.push(RawSite {
                        line: t.line,
                        msg: format!("float type: {}", t.text),
                        waived: dir.waived("determinism", t.line),
                        tok: i,
                    });
                }
            }
            TokKind::Float => {
                out.push(RawSite {
                    line: t.line,
                    msg: format!("float literal: {}", t.text),
                    waived: dir.waived("determinism", t.line),
                    tok: i,
                });
            }
            _ => {}
        }
    }
    out
}

/// Thread-spawn sites (`thread::spawn(…)`, `s.spawn(…)`) — a
/// determinism-taint *source* only: the order results come back in is
/// scheduler-dependent, so a canonical sink must never transitively
/// observe it. Not a per-file determinism violation (orchestration
/// spawns freely); only the taint pass consumes these.
pub fn spawn_sources(lexed: &Lexed<'_>, dir: &Directives) -> Vec<RawSite> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && t.text == "spawn"
            && matches!(toks.get(i + 1), Some(p) if p.text == "(")
            && !(i >= 1 && toks[i - 1].text == "fn")
        {
            out.push(RawSite {
                line: t.line,
                msg: "spawn ordering".to_string(),
                waived: dir.waived("determinism", t.line),
                tok: i,
            });
        }
    }
    out
}

/// Allocation and formatting calls inside loop bodies of a file tagged
/// `// lint: hot`. Returns empty for untagged files.
pub fn hot_loop(lexed: &Lexed<'_>, dir: &Directives) -> Vec<RawSite> {
    if !dir.hot {
        return Vec::new();
    }
    let toks = &lexed.toks;
    let mut in_loop = vec![false; toks.len()];

    for i in 0..toks.len() {
        if lexed.test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let kw = toks[i].text;
        if kw != "for" && kw != "while" && kw != "loop" {
            continue;
        }
        // `impl Trait for Type` and `for<'a>` bounds are not loops: a
        // loop `for` never follows an identifier or `>`, and never
        // precedes `<`.
        if kw == "for" {
            if i > 0 && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ">") {
                continue;
            }
            if matches!(toks.get(i + 1), Some(t) if t.text == "<") {
                continue;
            }
        }
        // Body = first `{` outside parens/brackets after the keyword.
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut j = i + 1;
        let open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) => match t.text {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => break Some(j),
                    ";" if paren == 0 && bracket == 0 => break None,
                    _ => {}
                },
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let close = crate::lexer::item_end(toks, open);
        for flag in in_loop.iter_mut().take(close + 1).skip(open) {
            *flag = true;
        }
    }

    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test[i] || !in_loop[i] {
            continue;
        }
        let t = &toks[i];
        if t.text == "Vec"
            && matches!(toks.get(i + 1), Some(c) if c.text == ":")
            && matches!(toks.get(i + 2), Some(c) if c.text == ":")
            && matches!(toks.get(i + 3), Some(m) if m.text == "new")
        {
            out.push(RawSite {
                line: t.line,
                msg: "Vec::new in hot loop".to_string(),
                waived: dir.waived("hot-loop", t.line),
                tok: i,
            });
        }
        if t.text == "."
            && matches!(toks.get(i + 1), Some(m) if m.text == "to_vec")
            && matches!(toks.get(i + 2), Some(p) if p.text == "(")
        {
            let line = toks[i + 1].line;
            out.push(RawSite {
                line,
                msg: ".to_vec() in hot loop".to_string(),
                waived: dir.waived("hot-loop", line),
                tok: i + 1,
            });
        }
        if t.text == "."
            && matches!(toks.get(i + 1), Some(m) if m.text == "clone")
            && matches!(toks.get(i + 2), Some(p) if p.text == "(")
            && matches!(toks.get(i + 3), Some(p) if p.text == ")")
        {
            let line = toks[i + 1].line;
            out.push(RawSite {
                line,
                msg: ".clone() in hot loop".to_string(),
                waived: dir.waived("hot-loop", line),
                tok: i + 1,
            });
        }
        if t.text == "format"
            && matches!(toks.get(i + 1), Some(p) if p.text == "!")
        {
            out.push(RawSite {
                line: t.line,
                msg: "format! in hot loop".to_string(),
                waived: dir.waived("hot-loop", t.line),
                tok: i,
            });
        }
    }
    out
}

/// `unsafe` tokens in non-test code with no `// SAFETY:` comment on
/// the same line or within the three lines above. Each SAFETY comment
/// annotates at most one `unsafe` (the first one after it), so two
/// stacked blocks need two comments.
pub fn unsafe_audit(lexed: &Lexed<'_>, dir: &Directives) -> Vec<RawSite> {
    let mut safety: Vec<(u32, bool)> = lexed
        .comments
        .iter()
        .filter(|c| c.text.trim_start().starts_with("SAFETY:"))
        .map(|c| (c.line, false))
        .collect();
    let mut out = Vec::new();
    for i in 0..lexed.toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &lexed.toks[i];
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let annotated = safety
            .iter_mut()
            .find(|(line, used)| !used && *line >= lo && *line <= t.line)
            .map(|slot| {
                slot.1 = true;
            })
            .is_some();
        if !annotated {
            out.push(RawSite {
                line: t.line,
                msg: "unsafe without a // SAFETY: comment".to_string(),
                waived: dir.waived("unsafe", t.line),
                tok: i,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn raw(src: &str, f: fn(&Lexed<'_>, &Directives) -> Vec<RawSite>) -> Vec<RawSite> {
        let lexed = lex(src);
        let dir = scan_directives(&lexed);
        f(&lexed, &dir)
    }

    #[test]
    fn panics_finds_methods_and_macros() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a == 0 { panic!(\"zero\") }
    match b { 0 => unreachable!(), _ => todo!() }
}
";
        let sites = raw(src, panics);
        assert_eq!(sites.len(), 5);
        assert!(sites.iter().all(|s| !s.waived));
    }

    #[test]
    fn panics_skips_tests_strings_comments_and_unwrap_or() {
        let src = "
// .unwrap() in a comment
fn f() { let s = \"panic!\"; let v = o.unwrap_or(0); }
#[cfg(test)]
mod tests { fn t() { x.unwrap(); panic!(); } }
";
        assert!(raw(src, panics).is_empty());
    }

    #[test]
    fn trailing_waiver_covers_its_line_only() {
        let src = "
fn f() {
    a.unwrap(); // lint: allow(panics): poisoned mutex is fatal here
    b.unwrap();
}
";
        let sites = raw(src, panics);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].waived);
        assert!(!sites[1].waived);
    }

    #[test]
    fn item_waiver_covers_whole_fn() {
        let src = "
// lint: allow(panics): this constructor is infallible by invariant
fn f() {
    a.unwrap();
    b.unwrap();
}
fn g() { c.unwrap(); }
";
        let sites = raw(src, panics);
        assert_eq!(sites.len(), 3);
        assert!(sites[0].waived && sites[1].waived);
        assert!(!sites[2].waived);
    }

    #[test]
    fn waiver_without_why_is_ignored() {
        let src = "fn f() { a.unwrap(); } // lint: allow(panics):\n";
        let sites = raw(src, panics);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].waived);
    }

    #[test]
    fn determinism_flags_hash_iteration_only() {
        let src = "
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);                 // writes are fine
    let hit = m.contains_key(&1);   // point reads are fine
    for (k, v) in &m { use_it(k, v); }
    let vals: Vec<u32> = m.into_values().collect();
}
";
        let sites = raw(src, determinism);
        assert_eq!(sites.len(), 2, "{:?}", sites);
        assert!(sites.iter().all(|s| s.msg.starts_with("hash iteration")));
    }

    #[test]
    fn determinism_flags_clocks_and_floats() {
        let src = "
fn f() -> f64 {
    let t = Instant::now();
    let frac = 0.5;
    frac
}
";
        let sites = raw(src, determinism);
        // f64 type, Instant::now, 0.5 literal
        assert_eq!(sites.len(), 3, "{:?}", sites);
    }

    #[test]
    fn determinism_waiver_on_item() {
        let src = "
// lint: allow(determinism): display-only fraction, never in canonical_text
fn gc_fraction(gc: usize, n: usize) -> f64 {
    gc as f64 / n as f64
}
";
        let sites = raw(src, determinism);
        assert!(!sites.is_empty());
        assert!(sites.iter().all(|s| s.waived));
    }

    #[test]
    fn hot_loop_needs_tag_and_loop_body() {
        let untagged = "fn f() { for i in 0..3 { let v = Vec::new(); } }";
        assert!(raw(untagged, hot_loop).is_empty());

        let tagged = "
// lint: hot
fn f() {
    let outside = Vec::new();
    for i in 0..3 {
        let v: Vec<u8> = Vec::new();
        let s = format!(\"{}\", i);
        let c = x.clone();
        let d = x.clone_from_slice(y);
        let t = y.to_vec();
    }
}
impl Display for Foo { fn fmt(&self) { let v = Vec::new(); } }
";
        let sites = raw(tagged, hot_loop);
        // Vec::new, format!, .clone(), .to_vec() — not the impl body,
        // not the pre-loop Vec::new, not clone_from_slice.
        assert_eq!(sites.len(), 4, "{:?}", sites);
    }

    #[test]
    fn unsafe_audit_wants_safety_comment() {
        let src = "
fn f() {
    // SAFETY: index is bounds-checked above
    let a = unsafe { *p.add(i) };
    let b = unsafe { *p.add(j) };
}
";
        let sites = raw(src, unsafe_audit);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 5);
    }
}
