//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each table/figure has a dedicated binary (`src/bin/`); the functions
//! here generate the synthetic species pairs, run a configured pipeline,
//! chain its output and compute the Table III metric set.

#![warn(missing_docs)]

use chain::chainer::{chain_alignments, Chain};
use chain::metrics;
use genome::evolve::{EvolutionParams, SpeciesPair, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wga_core::{config::WgaParams, pipeline::WgaPipeline, WgaReport};

/// Minimum chain score used throughout (the LASTZ default threshold).
pub const CHAIN_MIN_SCORE: i64 = 3000;

/// Generates the synthetic stand-in for one of the paper's species pairs.
pub fn paper_pair(species: &SpeciesPair, len: usize, seed: u64) -> SyntheticPair {
    let mut rng = StdRng::seed_from_u64(seed);
    SyntheticPair::generate(len, &species.evolution_params(), &mut rng)
}

/// Generates a pair at an arbitrary distance.
pub fn pair_at_distance(distance: f64, len: usize, seed: u64) -> SyntheticPair {
    let mut rng = StdRng::seed_from_u64(seed);
    SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
}

/// Everything the Table III columns need from one pipeline run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// The raw pipeline report (workload, timings, alignments).
    pub report: WgaReport,
    /// Chains over the forward-strand alignments.
    pub chains: Vec<Chain>,
    /// Matched bp across all chains (the paper's metric; overlapping
    /// chains may count a position twice).
    pub matched: u64,
    /// Unique matched target positions (inflation-proof variant).
    pub unique_matched: u64,
    /// Sum of the top-10 chain scores.
    pub top10_score: i64,
    /// Conserved elements ("exons") recovered at ≥50% coverage.
    pub exons_found: usize,
    /// Conserved elements assessed.
    pub exons_total: usize,
}

/// Runs `params` on a pair and computes chains + metrics.
pub fn run_and_measure(params: WgaParams, pair: &SyntheticPair) -> RunMetrics {
    let report = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
    let alignments = report.forward_alignments();
    let chains = chain_alignments(&alignments, CHAIN_MIN_SCORE);
    let matched = metrics::matched_bases(&chains, &alignments);
    let unique_matched = metrics::unique_matched_bases(&chains, &alignments);
    let top10_score = metrics::top_k_total(&chains, 10);
    let exons = metrics::exon_recovery(&chains, &alignments, &pair.target.conserved, 0.5);
    RunMetrics {
        report,
        chains,
        matched,
        unique_matched,
        top10_score,
        exons_found: exons.found,
        exons_total: exons.total,
    }
}

/// Percentage-difference helper for table printing.
pub fn pct(new: f64, old: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_and_measure_produces_consistent_metrics() {
        let pair = pair_at_distance(0.2, 20_000, 7);
        let m = run_and_measure(WgaParams::darwin_wga(), &pair);
        assert!(m.matched >= m.unique_matched);
        assert!(m.top10_score > 0);
        assert!(m.exons_total > 0);
        assert!(!m.chains.is_empty());
    }

    #[test]
    fn pct_helper() {
        assert!((pct(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(pct(5.0, 0.0), 0.0);
    }
}
