//! Multi-threaded pipeline driver.
//!
//! The paper uses all 36 threads of the baseline instance (§V-B) and
//! D-SOFT itself is "implemented in software using multiple threads"
//! (§IV). Filtering dominates WGA runtime (§III-A), and every filter tile
//! is independent, so this driver fans the filter stage out across worker
//! threads. Seeding and extension (which needs the sequential anchor-
//! absorption state) stay on one thread, so results are *identical* to
//! [`WgaPipeline::run`] — only wall-clock time changes.

use crate::absorb::{merge_into_kept, AbsorptionGrid};
use crate::config::WgaParams;
use crate::pipeline::WgaPipeline;
use crate::report::{Strand, WgaAlignment, WgaReport};
use crate::stages::{run_extension, run_filter};
use genome::Sequence;
use parking_lot::Mutex;
use seed::{dsoft_seeds, Anchor, SeedHit, SeedTable};
use std::time::Instant;

/// Runs the pipeline with the filter stage spread over `threads` workers.
///
/// Produces the same alignments as the serial pipeline; stage timings are
/// wall-clock, so `timings.filtering` shrinks with thread count.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_parallel(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
) -> WgaReport {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return WgaPipeline::new(params.clone()).run(target, query);
    }

    let seed_start = Instant::now();
    let table = SeedTable::build(target, &params.seed_pattern, params.max_seed_occurrences);
    let mut report = WgaReport::default();
    report.timings.seeding += seed_start.elapsed();

    run_strand_parallel(params, &table, target, query, Strand::Forward, threads, &mut report);
    if params.both_strands {
        let rc = query.reverse_complement();
        run_strand_parallel(params, &table, target, &rc, Strand::Reverse, threads, &mut report);
    }

    report
        .alignments
        .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
    report
}

#[allow(clippy::too_many_arguments)]
fn run_strand_parallel(
    params: &WgaParams,
    table: &SeedTable,
    target: &Sequence,
    query: &Sequence,
    strand: Strand,
    threads: usize,
    report: &mut WgaReport,
) {
    // --- Seeding (serial) -------------------------------------------------
    let seed_start = Instant::now();
    let seeding = dsoft_seeds(table, query, &params.dsoft);
    report.timings.seeding += seed_start.elapsed();
    report.workload.seeds += seeding.seeds_queried;
    report.counters.raw_seed_hits += seeding.raw_hits;

    // --- Filtering (parallel over hits) ------------------------------------
    let filter_start = Instant::now();
    let anchors = filter_hits_parallel(params, target, query, &seeding.hits, threads);
    report.timings.filtering += filter_start.elapsed();
    report.workload.filter_tiles += seeding.hits.len() as u64;
    report.counters.hits_filtered += seeding.hits.len() as u64;
    report.counters.anchors_passed += anchors.len() as u64;

    // --- Extension (serial: absorption is stateful) -------------------------
    let ext_start = Instant::now();
    let mut anchors = anchors;
    anchors.sort_by_key(|a| std::cmp::Reverse(a.filter_score));
    let mut grid = AbsorptionGrid::new();
    let mut kept: Vec<align::Alignment> = Vec::new();
    for anchor in anchors {
        if grid.covers(anchor.target_pos, anchor.query_pos) {
            report.counters.anchors_absorbed += 1;
            continue;
        }
        let Some(ext) = run_extension(params, target, query, anchor) else {
            continue;
        };
        report.workload.extension_tiles += ext.stats.tiles;
        report.workload.extension_cells += ext.stats.cells;
        report.workload.extension_rows += ext.stats.rows;
        if ext.alignment.score >= params.extension_threshold {
            grid.insert_alignment(&ext.alignment);
            if !merge_into_kept(&mut kept, ext.alignment) {
                report.counters.anchors_absorbed += 1;
            }
        }
    }
    report.counters.alignments_kept += kept.len() as u64;
    report
        .alignments
        .extend(kept.into_iter().map(|alignment| WgaAlignment { alignment, strand }));
    report.timings.extension += ext_start.elapsed();
}

/// Filters `hits` across `threads` workers; anchor order follows hit
/// order, so the result is deterministic.
fn filter_hits_parallel(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    hits: &[SeedHit],
    threads: usize,
) -> Vec<Anchor> {
    let results: Mutex<Vec<(usize, Vec<Anchor>)>> = Mutex::new(Vec::new());
    let chunk = hits.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for (idx, batch) in hits.chunks(chunk).enumerate() {
            let results = &results;
            scope.spawn(move |_| {
                let anchors: Vec<Anchor> = batch
                    .iter()
                    .filter_map(|&hit| run_filter(params, target, query, hit).anchor)
                    .collect();
                results.lock().push((idx, anchors));
            });
        }
    })
    .expect("filter worker panicked");
    let mut batches = results.into_inner();
    batches.sort_unstable_by_key(|(idx, _)| *idx);
    batches.into_iter().flat_map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_is_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(17);
        let pair = SyntheticPair::generate(40_000, &EvolutionParams::at_distance(0.2), &mut rng);
        let params = WgaParams::darwin_wga();
        let serial =
            WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);
        let parallel = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, 4);
        assert_eq!(serial.total_matches(), parallel.total_matches());
        assert_eq!(serial.alignments.len(), parallel.alignments.len());
        assert_eq!(serial.workload.filter_tiles, parallel.workload.filter_tiles);
        assert_eq!(
            serial.counters.anchors_passed,
            parallel.counters.anchors_passed
        );
    }

    #[test]
    fn one_thread_delegates_to_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let pair = SyntheticPair::generate(10_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let params = WgaParams::darwin_wga();
        let a = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, 1);
        let b = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
        assert_eq!(a.total_matches(), b.total_matches());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let s: Sequence = "ACGT".parse().unwrap();
        run_parallel(&WgaParams::darwin_wga(), &s, &s, 0);
    }
}
