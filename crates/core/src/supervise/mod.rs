//! Supervision primitives: capped-exponential retry with deterministic
//! jitter, and a heartbeat watchdog for the dataflow executor.
//!
//! This module is deliberately panic-free (its wga-lint baseline is 0):
//! the supervisor must never take down the run it is supervising. It is
//! also integer-only — backoff jitter is drawn from a splitmix64 hash of
//! `(seed, site, attempt)` instead of a float RNG, so a chaos run under
//! a given `--fault-plan` retries with exactly the same delays every
//! time, on every executor.
//!
//! Three consumers:
//!
//! * [`crate::faultsim::FaultInjector::gate`] uses [`RetryPolicy`] to
//!   pace its internal retry loop for injected errors.
//! * Journal appends and CLI sink writes wrap their I/O in
//!   [`retry_io`], which retries *real* transient failures with the
//!   same policy.
//! * The dataflow executor spawns [`watch_heartbeat`] when
//!   `--stall-timeout-ms` is set; it escalates a stage that stops
//!   making progress (see `DESIGN.md`, "Fault injection &
//!   supervision").

use crate::error::WgaResult;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

/// How a supervised operation retries: attempt count, base/cap of the
/// capped-exponential backoff, and the seed the deterministic jitter is
/// drawn from (the fault plan's seed, or 0 without a plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Backoff before retry 0, milliseconds; doubles per retry.
    pub base_ms: u64,
    /// Upper bound on any single backoff, milliseconds.
    pub cap_ms: u64,
    /// Seed mixed into the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 1,
            base_ms: 2,
            cap_ms: 100,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` at call site `site`:
    /// `base * 2^attempt` capped at `cap_ms`, then jittered down to
    /// `[delay/2, delay]` by a splitmix64 hash — deterministic in
    /// `(seed, site, attempt)`, so chaos runs replay byte-for-byte.
    pub fn backoff_ms(&self, site: u64, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let half = exp / 2;
        let jitter_span = exp - half;
        if jitter_span == 0 {
            return exp;
        }
        let h = mix64(self.seed ^ site.rotate_left(17) ^ u64::from(attempt).wrapping_mul(0x9E37));
        half + (h % (jitter_span + 1))
    }

    /// Sleeps the backoff for retry `attempt` at `site`.
    pub fn sleep_backoff(&self, site: u64, attempt: u32) {
        let ms = self.backoff_ms(site, attempt);
        if ms > 0 {
            thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// splitmix64 finalizer — the integer hash behind the jitter. Public so
/// `faultsim` can key per-site decisions off the same mixer.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `op`, retrying up to `policy.max_retries` times on `Err` with
/// the policy's backoff. `on_retry(attempt)` fires before each retry so
/// the caller can count it (into `ExecutorMetrics::retries` / the fault
/// injector's totals).
pub fn retry_io<T>(
    policy: &RetryPolicy,
    site: u64,
    mut on_retry: impl FnMut(u32),
    mut op: impl FnMut() -> WgaResult<T>,
) -> WgaResult<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= policy.max_retries {
                    return Err(e);
                }
                on_retry(attempt);
                policy.sleep_backoff(site, attempt);
                attempt += 1;
            }
        }
    }
}

/// Heartbeat watchdog: polls `heartbeat` until `stop` is set; if the
/// counter does not advance for `timeout_ms`, calls `on_stall` once and
/// returns. Workers bump the heartbeat on every unit of progress
/// (planned pair, filtered batch, extended pair, journaled record), so
/// a wedged stage — not a merely slow one — is what trips it.
///
/// The escalation itself is the closure's job: the dataflow executor
/// closes its bounded queues there, which unblocks every worker parked
/// on a push/pop and lets the run drain; pairs left unfinished surface
/// as `Failed`, never as a hang.
pub fn watch_heartbeat(
    stop: &AtomicBool,
    heartbeat: &AtomicU64,
    timeout_ms: u64,
    on_stall: impl FnOnce(),
) {
    // Poll at a fraction of the timeout so detection latency stays
    // within ~2 windows without burning CPU.
    let poll_ms = (timeout_ms / 4).clamp(1, 50);
    let mut last = heartbeat.load(Ordering::Relaxed);
    let mut idle_ms = 0u64;
    while !stop.load(Ordering::Relaxed) {
        thread::sleep(Duration::from_millis(poll_ms));
        let now = heartbeat.load(Ordering::Relaxed);
        if now != last {
            last = now;
            idle_ms = 0;
        } else {
            idle_ms = idle_ms.saturating_add(poll_ms);
            if idle_ms >= timeout_ms {
                on_stall();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WgaError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let p = RetryPolicy {
            max_retries: 5,
            base_ms: 2,
            cap_ms: 10,
            seed: 42,
        };
        for attempt in 0..8 {
            let a = p.backoff_ms(7, attempt);
            let b = p.backoff_ms(7, attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(a <= p.cap_ms, "attempt {attempt}: {a} > cap");
        }
        // Different sites draw different jitter (with overwhelming
        // probability for these constants).
        let draws: Vec<u64> = (0..64).map(|site| p.backoff_ms(site, 2)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]));
        // The un-jittered floor grows until the cap.
        assert!(p.backoff_ms(0, 0) <= p.backoff_ms(0, 5).max(p.cap_ms));
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy {
            base_ms: 0,
            cap_ms: 0,
            ..RetryPolicy::default()
        };
        for attempt in 0..4 {
            assert_eq!(p.backoff_ms(3, attempt), 0);
        }
    }

    #[test]
    fn retry_io_succeeds_after_transient_failures() {
        let p = RetryPolicy {
            max_retries: 3,
            base_ms: 0,
            cap_ms: 0,
            seed: 1,
        };
        let failures = AtomicUsize::new(2);
        let retried = AtomicUsize::new(0);
        let out = retry_io(
            &p,
            9,
            |_| {
                retried.fetch_add(1, Ordering::Relaxed);
            },
            || {
                if failures.load(Ordering::Relaxed) > 0 {
                    failures.fetch_sub(1, Ordering::Relaxed);
                    Err(WgaError::config("transient"))
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(out.ok(), Some(99));
        assert_eq!(retried.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_io_exhausts_and_returns_last_error() {
        let p = RetryPolicy {
            max_retries: 2,
            base_ms: 0,
            cap_ms: 0,
            seed: 1,
        };
        let attempts = AtomicUsize::new(0);
        let out: WgaResult<()> = retry_io(
            &p,
            9,
            |_| {},
            || {
                attempts.fetch_add(1, Ordering::Relaxed);
                Err(WgaError::config("permanent"))
            },
        );
        assert!(out.is_err());
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "1 try + 2 retries");
    }

    #[test]
    fn watchdog_trips_on_a_flat_heartbeat() {
        let stop = AtomicBool::new(false);
        let beat = AtomicU64::new(0);
        let stalled = AtomicUsize::new(0);
        watch_heartbeat(&stop, &beat, 20, || {
            stalled.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stalled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn watchdog_stays_quiet_while_progress_flows() {
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let beat = std::sync::Arc::new(AtomicU64::new(0));
        let stalled = std::sync::Arc::new(AtomicUsize::new(0));
        let (s2, b2, st2) = (stop.clone(), beat.clone(), stalled.clone());
        let watcher = thread::spawn(move || {
            watch_heartbeat(&s2, &b2, 500, || {
                st2.fetch_add(1, Ordering::Relaxed);
            });
        });
        for _ in 0..10 {
            beat.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        let joined = watcher.join();
        assert!(joined.is_ok());
        assert_eq!(stalled.load(Ordering::Relaxed), 0);
    }
}
