//! The UCSC axtChain "loose" gap-cost schedule.
//!
//! AXTCHAIN charges the gap between two chained blocks with a piecewise-
//! linear function of the target-side and query-side gap lengths; the
//! `-linearGap=loose` table (used by the paper, §V-E) is reproduced here
//! verbatim. Costs are interpolated between breakpoints and extrapolated
//! with the final slope beyond the table.

use serde::{Deserialize, Serialize};

/// Breakpoint positions of the `loose` table.
const POSITIONS: [u64; 11] = [
    1, 2, 3, 11, 111, 2111, 12111, 32111, 72111, 152111, 252111,
];
/// One-sided gap costs (identical for target and query gaps in `loose`).
const ONE_SIDED: [u64; 11] = [
    325, 360, 400, 450, 600, 1100, 3600, 7600, 15600, 31600, 56600,
];
/// Double-sided gap costs.
const BOTH: [u64; 11] = [
    625, 660, 700, 750, 900, 1400, 4000, 8000, 16000, 32000, 57000,
];

/// The piecewise-linear gap cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LooseGapCost;

impl LooseGapCost {
    /// Cost of a gap of `dt` target bases and `dq` query bases between two
    /// chained blocks. Zero when both gaps are zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use chain::gapcost::LooseGapCost;
    ///
    /// let g = LooseGapCost;
    /// assert_eq!(g.cost(0, 0), 0);
    /// assert_eq!(g.cost(1, 0), 325);
    /// assert_eq!(g.cost(1, 1), 625); // double-sided gaps cost more
    /// assert!(g.cost(1000, 0) < g.cost(10_000, 0));
    /// ```
    pub fn cost(&self, dt: u64, dq: u64) -> u64 {
        match (dt, dq) {
            (0, 0) => 0,
            (t, 0) => interpolate(t, &ONE_SIDED),
            (0, q) => interpolate(q, &ONE_SIDED),
            (t, q) => interpolate(t.max(q), &BOTH),
        }
    }
}

/// Piecewise-linear interpolation over the breakpoint table.
fn interpolate(size: u64, costs: &[u64; 11]) -> u64 {
    debug_assert!(size >= 1);
    if size <= POSITIONS[0] {
        return costs[0];
    }
    for i in 1..POSITIONS.len() {
        if size <= POSITIONS[i] {
            let (x0, x1) = (POSITIONS[i - 1], POSITIONS[i]);
            let (y0, y1) = (costs[i - 1], costs[i]);
            return y0 + (y1 - y0) * (size - x0) / (x1 - x0);
        }
    }
    // Extrapolate with the last segment's slope.
    let n = POSITIONS.len();
    let slope_num = costs[n - 1] - costs[n - 2];
    let slope_den = POSITIONS[n - 1] - POSITIONS[n - 2];
    costs[n - 1] + (size - POSITIONS[n - 1]) * slope_num / slope_den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_breakpoints() {
        let g = LooseGapCost;
        assert_eq!(g.cost(1, 0), 325);
        assert_eq!(g.cost(0, 3), 400);
        assert_eq!(g.cost(111, 0), 600);
        assert_eq!(g.cost(2111, 2111), 1400);
    }

    #[test]
    fn interpolation_is_monotone() {
        let g = LooseGapCost;
        let mut prev = 0;
        for size in [1u64, 2, 5, 50, 500, 5_000, 50_000, 500_000, 5_000_000] {
            let c = g.cost(size, 0);
            assert!(c >= prev, "cost({size}) = {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn double_sided_costs_more_than_single() {
        let g = LooseGapCost;
        for size in [1u64, 10, 100, 10_000] {
            assert!(g.cost(size, size) > g.cost(size, 0));
        }
    }

    #[test]
    fn extrapolation_beyond_table() {
        let g = LooseGapCost;
        let at_end = g.cost(252_111, 0);
        assert_eq!(at_end, 56_600);
        let beyond = g.cost(352_111, 0);
        // slope = (56600-31600)/(252111-152111) = 0.25 per base
        assert_eq!(beyond, 56_600 + 25_000);
    }

    #[test]
    fn sublinear_growth_tolerates_large_gaps() {
        // The defining property of "loose": huge gaps are affordable
        // relative to the alignment scores flanking them, so chains span
        // rearrangement-scale distances.
        let g = LooseGapCost;
        assert!(g.cost(100_000, 0) < 25_000);
    }
}
