//! Full (unbanded) Smith-Waterman with affine gaps — the reference local
//! aligner (Gotoh 1982).
//!
//! This is the "foundational algorithm in WGA" (§II) and serves as the
//! exact oracle against which the banded filter and GACT-X are property-
//! tested. Quadratic time and memory: use only on tile-sized inputs.

use crate::alignment::Alignment;
use crate::cigar::{AlignOp, Cigar};
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i32 = i32::MIN / 4;

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalResult {
    /// The best-scoring local alignment, if any cell scored above zero.
    pub alignment: Option<Alignment>,
    /// The maximum cell score (0 when no positive cell exists).
    pub best_score: i64,
    /// DP cells computed (workload accounting).
    pub cells: u64,
}

/// Smith-Waterman local alignment of `target` (columns) vs `query` (rows).
///
/// Returns the single best local alignment with coordinates relative to the
/// given slices.
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "AAACGTACGTAAA".parse()?;
/// let q: Sequence = "CGTACGT".parse()?;
/// let r = align::sw::smith_waterman(
///     t.as_slice(),
///     q.as_slice(),
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
/// );
/// let a = r.alignment.unwrap();
/// assert_eq!(a.matches(), 7);
/// assert_eq!(a.target_start, 3);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn smith_waterman(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
) -> LocalResult {
    let (n, m) = (target.len(), query.len());
    if n == 0 || m == 0 {
        return LocalResult {
            alignment: None,
            best_score: 0,
            cells: 0,
        };
    }
    let cols = n + 1;
    // v/e/f matrices, row-major (m+1) x (n+1).
    let mut v = vec![0i32; (m + 1) * cols];
    let mut e = vec![NEG_INF; (m + 1) * cols]; // gap in target (insert)
    let mut f = vec![NEG_INF; (m + 1) * cols]; // gap in query (delete)

    // Pointers: 0 = stop, 1 = diag, 2 = from E (insert), 3 = from F (delete).
    let mut ptr = vec![0u8; (m + 1) * cols];
    let mut e_open = vec![false; (m + 1) * cols];
    let mut f_open = vec![false; (m + 1) * cols];

    let (mut best, mut best_i, mut best_j) = (0i32, 0usize, 0usize);
    for i in 1..=m {
        for j in 1..=n {
            let idx = i * cols + j;
            let up = (i - 1) * cols + j;
            let left = i * cols + (j - 1);
            let diag = (i - 1) * cols + (j - 1);

            let e_from_open = v[left] - gaps.open - gaps.extend;
            let e_from_ext = e[left] - gaps.extend;
            if e_from_open >= e_from_ext {
                e[idx] = e_from_open;
                e_open[idx] = true;
            } else {
                e[idx] = e_from_ext;
            }

            let f_from_open = v[up] - gaps.open - gaps.extend;
            let f_from_ext = f[up] - gaps.extend;
            if f_from_open >= f_from_ext {
                f[idx] = f_from_open;
                f_open[idx] = true;
            } else {
                f[idx] = f_from_ext;
            }

            let sub = v[diag] + w.score(target[j - 1], query[i - 1]);
            let mut val = 0i32;
            let mut p = 0u8;
            if sub > val {
                val = sub;
                p = 1;
            }
            if e[idx] > val {
                val = e[idx];
                p = 2;
            }
            if f[idx] > val {
                val = f[idx];
                p = 3;
            }
            v[idx] = val;
            ptr[idx] = p;
            if val > best {
                best = val;
                best_i = i;
                best_j = j;
            }
        }
    }

    let cells = (n as u64) * (m as u64);
    if best <= 0 {
        return LocalResult {
            alignment: None,
            best_score: 0,
            cells,
        };
    }

    // Traceback from (best_i, best_j) to the first stop cell.
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    let (mut i, mut j) = (best_i, best_j);
    // state: 0 = in V, 2 = in E, 3 = in F
    let mut state = 0u8;
    loop {
        let idx = i * cols + j;
        match state {
            0 => match ptr[idx] {
                0 => break,
                1 => {
                    let op = if target[j - 1] == query[i - 1] && target[j - 1] != Base::N {
                        AlignOp::Match
                    } else {
                        AlignOp::Subst
                    };
                    ops_rev.push(op);
                    i -= 1;
                    j -= 1;
                }
                2 => state = 2,
                3 => state = 3,
                _ => unreachable!(),
            },
            2 => {
                ops_rev.push(AlignOp::Delete); // consumes target (column)
                let was_open = e_open[idx];
                j -= 1;
                if was_open {
                    state = 0;
                }
            }
            3 => {
                ops_rev.push(AlignOp::Insert); // consumes query (row)
                let was_open = f_open[idx];
                i -= 1;
                if was_open {
                    state = 0;
                }
            }
            _ => unreachable!(),
        }
    }

    let mut cigar = Cigar::new();
    for op in ops_rev.into_iter().rev() {
        cigar.push(op, 1);
    }
    let alignment = Alignment::new(j, i, cigar, best as i64);
    debug_assert_eq!(alignment.target_end, best_j);
    debug_assert_eq!(alignment.query_end, best_i);
    LocalResult {
        alignment: Some(alignment),
        best_score: best as i64,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Sequence;

    fn run(t: &str, q: &str) -> LocalResult {
        let t: Sequence = t.parse().unwrap();
        let q: Sequence = q.parse().unwrap();
        smith_waterman(
            t.as_slice(),
            q.as_slice(),
            &SubstitutionMatrix::darwin_wga(),
            &GapPenalties::darwin_wga(),
        )
    }

    #[test]
    fn identical_sequences_align_fully() {
        let r = run("ACGTACGT", "ACGTACGT");
        let a = r.alignment.unwrap();
        assert_eq!(a.matches(), 8);
        assert_eq!(a.target_start, 0);
        assert_eq!(a.target_end, 8);
        assert_eq!(r.best_score, 91 + 100 + 100 + 91 + 91 + 100 + 100 + 91);
    }

    #[test]
    fn finds_embedded_match() {
        let r = run("TTTTTTACGTACGTTTTTTT", "CCCCACGTACGTCCCC");
        let a = r.alignment.unwrap();
        assert_eq!(a.matches(), 8);
        assert_eq!(a.target_start, 6);
        assert_eq!(a.query_start, 4);
    }

    #[test]
    fn alignment_with_gap() {
        // Query missing 2 bases in the middle; long match arms make the
        // gapped alignment beat the two separate arms.
        let t = "ACGTACGTACGTCCACGTACGTACGT";
        let q = "ACGTACGTACGTACGTACGTACGT";
        let r = run(t, q);
        let a = r.alignment.unwrap();
        assert_eq!(a.cigar.count(crate::cigar::AlignOp::Delete), 2);
        assert_eq!(a.matches(), 24);
        a.validate(&t.parse().unwrap(), &q.parse().unwrap()).unwrap();
    }

    #[test]
    fn no_alignment_between_unrelated() {
        let r = run("AAAAAAAA", "CCCCCCCC");
        // A vs C scores -90 everywhere; nothing positive.
        assert!(r.alignment.is_none());
        assert_eq!(r.best_score, 0);
    }

    #[test]
    fn empty_inputs() {
        let r = run("", "ACGT");
        assert!(r.alignment.is_none());
        assert_eq!(r.cells, 0);
    }

    #[test]
    fn score_equals_rescore() {
        let t: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGGATCG".parse().unwrap();
        let q: Sequence = "ACGGTCAGTTTCGATTGCAGTCTGCTAGCTAGG".parse().unwrap();
        let w = SubstitutionMatrix::darwin_wga();
        let g = GapPenalties::darwin_wga();
        let r = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        let a = r.alignment.unwrap();
        a.validate(&t, &q).unwrap();
        assert_eq!(a.score, a.rescore(&t, &q, &w, &g));
    }
}
