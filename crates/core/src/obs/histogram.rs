//! Lock-free log2-bucketed histograms.
//!
//! A [`Log2Histogram`] sorts `u64` samples into power-of-two buckets:
//! bucket 0 holds the value `0`, and bucket `b` (for `b >= 1`) holds
//! values in `[2^(b-1), 2^b - 1]`. That gives 65 buckets covering the
//! full `u64` range with a single `leading_zeros` instruction per
//! sample and one relaxed atomic increment — cheap enough to sit on
//! the per-tile filter path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` samples.
///
/// All operations use relaxed atomics; concurrent `observe` calls never
/// block and the snapshot is only guaranteed consistent once the
/// writers have quiesced (which is how the recorder uses it: histograms
/// are rendered after the run finishes).
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: `0 -> 0`, otherwise `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Smallest value that lands in `bucket` (the bucket's lower bound).
    pub fn bucket_lower_bound(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `count` samples directly to `bucket` — the trace-reader
    /// path (`wga profile` rebuilds histograms from `{"hist":…}` JSONL
    /// lines, which carry bucket indices, not raw samples).
    ///
    /// Out-of-range bucket indices saturate into the top bucket so a
    /// corrupt trace line cannot panic the reader.
    pub fn record_bucket(&self, bucket: usize, count: u64) {
        let idx = bucket.min(LOG2_BUCKETS - 1);
        self.buckets[idx].fetch_add(count, Ordering::Relaxed);
    }

    /// Adds every bucket of `other` into `self`. Relaxed like the rest
    /// of the API: the result is exact once writers have quiesced, and
    /// merging is associative and commutative (it is per-bucket
    /// integer addition).
    pub fn merge(&self, other: &Log2Histogram) {
        for (idx, bucket) in other.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                self.buckets[idx].fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Bucket index holding the sample at permille rank `p`
    /// (0 ..= 1000): the first bucket where the cumulative count
    /// reaches `ceil(total * p / 1000)` (at least 1, so `p = 0` is the
    /// minimum bucket and `p = 1000` the maximum). `None` when the
    /// histogram is empty. Integer-only, so percentile extraction is
    /// deterministic for the drift engine.
    pub fn percentile_bucket(&self, permille: u64) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let p = permille.min(1000);
        let rank = (total.saturating_mul(p)).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(idx);
            }
        }
        // Unreachable in practice (seen == total >= rank by the end);
        // report the top bucket rather than panic.
        Some(LOG2_BUCKETS - 1)
    }

    /// Lower bound of the [`Log2Histogram::percentile_bucket`] bucket:
    /// a conservative integer value estimate for the percentile.
    pub fn percentile_lower_bound(&self, permille: u64) -> Option<u64> {
        self.percentile_bucket(permille).map(Self::bucket_lower_bound)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sparse snapshot: `(bucket_index, count)` for every non-empty
    /// bucket, in ascending bucket order.
    pub fn snapshot(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then_some((idx, count))
            })
            .collect()
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Zero gets its own bucket.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        // Bucket b covers [2^(b-1), 2^b - 1].
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(1 << 20), 21);
        assert_eq!(Log2Histogram::bucket_index((1 << 21) - 1), 21);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_index(1 << 63), 64);
    }

    #[test]
    fn lower_bounds_invert_bucket_index() {
        for bucket in 0..LOG2_BUCKETS {
            let lo = Log2Histogram::bucket_lower_bound(bucket);
            assert_eq!(Log2Histogram::bucket_index(lo), bucket, "bucket {bucket}");
            if lo > 0 {
                // One below the lower bound falls in the previous bucket.
                assert_eq!(Log2Histogram::bucket_index(lo - 1), bucket - 1);
            }
        }
    }

    #[test]
    fn observe_and_snapshot() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.snapshot(), vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Log2Histogram::new();
        assert_eq!(h.total(), 0);
        assert!(h.snapshot().is_empty());
        for p in [0, 500, 1000] {
            assert_eq!(h.percentile_bucket(p), None);
            assert_eq!(h.percentile_lower_bound(p), None);
        }
    }

    #[test]
    fn single_bucket_percentiles_all_land_there() {
        let h = Log2Histogram::new();
        for _ in 0..7 {
            h.observe(100); // bucket 7: [64, 127]
        }
        for p in [0, 1, 250, 500, 900, 999, 1000] {
            assert_eq!(h.percentile_bucket(p), Some(7), "p={p}");
        }
        assert_eq!(h.percentile_lower_bound(500), Some(64));
    }

    #[test]
    fn saturating_top_bucket() {
        let h = Log2Histogram::new();
        h.observe(u64::MAX);
        h.observe(1 << 63);
        // Out-of-range trace bucket indices saturate into the top
        // bucket instead of panicking.
        h.record_bucket(LOG2_BUCKETS + 100, 3);
        assert_eq!(h.total(), 5);
        assert_eq!(h.snapshot(), vec![(LOG2_BUCKETS - 1, 5)]);
        assert_eq!(h.percentile_bucket(1000), Some(LOG2_BUCKETS - 1));
        assert_eq!(h.percentile_lower_bound(1000), Some(1 << 63));
    }

    #[test]
    fn merge_is_associative() {
        let observe_all = |h: &Log2Histogram, vs: &[u64]| {
            for &v in vs {
                h.observe(v);
            }
        };
        let (a1, b1, c1) = (Log2Histogram::new(), Log2Histogram::new(), Log2Histogram::new());
        let (a2, b2, c2) = (Log2Histogram::new(), Log2Histogram::new(), Log2Histogram::new());
        for h in [&a1, &a2] {
            observe_all(h, &[0, 1, 5, 5, 1024]);
        }
        for h in [&b1, &b2] {
            observe_all(h, &[2, 2, 9000, u64::MAX]);
        }
        for h in [&c1, &c2] {
            observe_all(h, &[7]);
        }
        // (a ∪ b) ∪ c ...
        a1.merge(&b1);
        a1.merge(&c1);
        // ... equals a ∪ (b ∪ c).
        b2.merge(&c2);
        a2.merge(&b2);
        assert_eq!(a1.snapshot(), a2.snapshot());
        assert_eq!(a1.total(), 10);
    }

    #[test]
    fn percentile_extraction_orders_buckets() {
        let h = Log2Histogram::new();
        // 90 small samples, 10 large: p50 small, p95+ large.
        for _ in 0..90 {
            h.observe(3); // bucket 2
        }
        for _ in 0..10 {
            h.observe(5000); // bucket 13
        }
        assert_eq!(h.percentile_bucket(0), Some(2));
        assert_eq!(h.percentile_bucket(500), Some(2));
        assert_eq!(h.percentile_bucket(900), Some(2));
        assert_eq!(h.percentile_bucket(901), Some(13));
        assert_eq!(h.percentile_bucket(1000), Some(13));
        assert_eq!(h.percentile_lower_bound(1000), Some(4096));
    }

    #[test]
    fn merge_from_trace_buckets_matches_direct_observation() {
        let direct = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 1024] {
            direct.observe(v);
        }
        let rebuilt = Log2Histogram::new();
        for (bucket, count) in direct.snapshot() {
            rebuilt.record_bucket(bucket, count);
        }
        assert_eq!(rebuilt.snapshot(), direct.snapshot());
    }
}
