//! Seed table: an index from seed words to target positions.

use crate::pattern::SeedPattern;
use genome::Sequence;
use std::collections::HashMap;

/// An index of every seed word in the target genome.
///
/// Built once per target; query positions are then matched by word lookup.
/// Words whose position list exceeds `max_occurrences` are dropped as
/// repeats (the standard masking heuristic — ultra-frequent words come
/// from repetitive DNA and only produce noise).
///
/// # Examples
///
/// ```
/// use seed::{pattern::SeedPattern, table::SeedTable};
/// use genome::Sequence;
///
/// let target: Sequence = "ACGTACGTACGT".parse()?;
/// let pattern = SeedPattern::exact(8);
/// let table = SeedTable::build(&target, &pattern, usize::MAX);
/// let word = pattern.extract(target.as_slice(), 0).unwrap();
/// assert_eq!(table.lookup(word), &[0, 4]);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeedTable {
    index: HashMap<u64, Vec<u32>>,
    pattern: SeedPattern,
    positions_indexed: u64,
    dropped_repeats: u64,
}

impl SeedTable {
    /// Indexes every position of `target`.
    ///
    /// `max_occurrences` caps the per-word position list; words over the
    /// cap are removed entirely.
    pub fn build(target: &Sequence, pattern: &SeedPattern, max_occurrences: usize) -> SeedTable {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let slice = target.as_slice();
        let mut positions_indexed = 0u64;
        let end = target.len().saturating_sub(pattern.span().saturating_sub(1));
        for pos in 0..end {
            if let Some(word) = pattern.extract(slice, pos) {
                index.entry(word).or_default().push(pos as u32);
                positions_indexed += 1;
            }
        }
        let mut dropped_repeats = 0u64;
        // lint: allow(determinism): per-entry predicate + commutative sum — visit order cannot change the surviving set or the count
        index.retain(|_, positions| {
            if positions.len() > max_occurrences {
                dropped_repeats += positions.len() as u64;
                false
            } else {
                true
            }
        });
        SeedTable {
            index,
            pattern: pattern.clone(),
            positions_indexed,
            dropped_repeats,
        }
    }

    /// Target positions whose window hashes to `word`.
    pub fn lookup(&self, word: u64) -> &[u32] {
        self.index.get(&word).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The pattern this table was built with.
    pub fn pattern(&self) -> &SeedPattern {
        &self.pattern
    }

    /// Number of positions successfully indexed.
    pub fn positions_indexed(&self) -> u64 {
        self.positions_indexed
    }

    /// Number of positions dropped by the repeat cap.
    pub fn dropped_repeats(&self) -> u64 {
        self.dropped_repeats
    }

    /// Number of distinct words present.
    pub fn distinct_words(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_all_positions() {
        let t: Sequence = "ACGTACGTAC".parse().unwrap();
        let p = SeedPattern::exact(4);
        let table = SeedTable::build(&t, &p, usize::MAX);
        assert_eq!(table.positions_indexed(), 7);
        let word = p.extract(t.as_slice(), 1).unwrap();
        assert_eq!(table.lookup(word), &[1, 5]);
    }

    #[test]
    fn skips_n_windows() {
        let t: Sequence = "ACGTNACGT".parse().unwrap();
        let p = SeedPattern::exact(4);
        let table = SeedTable::build(&t, &p, usize::MAX);
        // Positions 1..=4 contain the N.
        assert_eq!(table.positions_indexed(), 2);
    }

    #[test]
    fn repeat_cap_drops_frequent_words() {
        let t: Sequence = "AAAAAAAAAAAAAAAA".parse().unwrap();
        let p = SeedPattern::exact(4);
        let capped = SeedTable::build(&t, &p, 4);
        assert_eq!(capped.distinct_words(), 0);
        assert_eq!(capped.dropped_repeats(), 13);
        let uncapped = SeedTable::build(&t, &p, usize::MAX);
        assert_eq!(uncapped.distinct_words(), 1);
    }

    #[test]
    fn lookup_of_absent_word_is_empty() {
        let t: Sequence = "ACGT".parse().unwrap();
        let table = SeedTable::build(&t, &SeedPattern::exact(4), usize::MAX);
        assert!(table.lookup(u64::MAX).is_empty());
    }

    #[test]
    fn spaced_pattern_matches_despite_dont_care_mismatch() {
        // Pattern 1-0-1: middle base free.
        let p: SeedPattern = "101".parse().unwrap();
        let t: Sequence = "AGA".parse().unwrap();
        let q: Sequence = "ATA".parse().unwrap();
        let table = SeedTable::build(&t, &p, usize::MAX);
        let qword = p.extract(q.as_slice(), 0).unwrap();
        assert_eq!(table.lookup(qword), &[0]);
    }
}
