//! Figure 3 — a genome-browser view of chains over a gene region.
//!
//! The paper's Fig. 3 shows a UCSC browser snapshot of a C. elegans
//! region with an Ensembl gene track and the LASTZ chain track against
//! C. briggsae: thick blocks where base pairs align, single lines for
//! gaps in the query, double lines for double-sided gaps. We render the
//! same view as text for a region of the ce11-cb4 stand-in, with the
//! ground-truth conserved elements as the gene track.
//!
//! Run with: `cargo run --release -p wga-bench --bin fig3_browser`

use chain::browser::render;
use genome::evolve::SpeciesPair;
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);

    let sp = &SpeciesPair::paper_pairs()[0]; // ce11-cb4, as in Fig. 3
    let pair = paper_pair(sp, genome_len, 33);
    let m = run_and_measure(WgaParams::darwin_wga(), &pair);
    let alignments = m.report.forward_alignments();

    // Pick the densest 10-kbp window by chained coverage.
    let window = 10_000.min(pair.target.sequence.len());
    let mut best_start = 0usize;
    let mut best_cov = 0usize;
    for start in (0..pair.target.sequence.len().saturating_sub(window)).step_by(2_000) {
        let cov: usize = alignments
            .iter()
            .map(|a| {
                a.target_end.min(start + window).saturating_sub(a.target_start.max(start))
            })
            .sum();
        if cov > best_cov {
            best_cov = cov;
            best_start = start;
        }
    }

    println!(
        "Figure 3 — browser view of the {} stand-in (Darwin-WGA chains)\n",
        sp.name()
    );
    // Only chains with a member inside the window.
    let visible: Vec<chain::chainer::Chain> = m
        .chains
        .iter()
        .filter(|c| {
            c.members.iter().any(|&i| {
                alignments[i].target_end > best_start
                    && alignments[i].target_start < best_start + window
            })
        })
        .cloned()
        .collect();
    let text = render(
        (best_start, best_start + window),
        100,
        &pair.target.conserved,
        &visible,
        &alignments,
        6,
    );
    println!("{text}");
    println!("legend: '=' gene/conserved element, '█' aligning bases,");
    println!("        '─' gap in one species, '═' double-sided gap");
    println!("\nThe paper's Fig. 3 shows the same structure: chains cover the genes");
    println!("densely and bridge between them over single- and double-sided gaps.");
}
