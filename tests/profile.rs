//! Integration tests for the `wga profile` trace-analysis subsystem
//! (`wga-profile`), driven end-to-end through real pipeline runs.
//!
//! Pinned contracts:
//!
//! 1. **Determinism** — one trace always produces byte-identical
//!    `profile_report.json`, and the JSON is integer-only.
//! 2. **Schema compatibility** — headerless traces parse as schema 1;
//!    traces declaring a major above the writer's are rejected.
//! 3. **Zero drift by construction** — a trace recorded by a real run
//!    (workload counters + hwsim spans from the same run) replays
//!    through the cycle models to exactly the recorded figures.
//! 4. **The diff gate** — a report diffed against itself passes; a
//!    perturbed report trips the thresholds.

use darwin_wga::core::config::WgaParams;
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::genome_pipeline::{align_assemblies_observed, AlignOptions};
use darwin_wga::core::obs::{Obs, TraceRecorder};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::hwsim;
use darwin_wga::profile::{diff, Attribution, Drift, ProfileReport, TraceFile};
use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn load_assembly(name: &str, file: &str) -> Assembly {
    let path = data_dir().join(file);
    let reader = BufReader::new(fs::File::open(&path).expect("golden FASTA present"));
    Assembly::from_fasta(name, reader).expect("checked-in FASTA parses")
}

/// Runs the golden workload with a recorder, emits the hwsim spans the
/// way `wga align` does, and returns the serialised trace.
fn golden_trace(threads: usize, executor: ExecutorKind) -> String {
    let target = load_assembly("golden-target", "golden.target.fa");
    let query = load_assembly("golden-query", "golden.query.fa");
    let recorder = TraceRecorder::new();
    let obs = Obs::new(&recorder);
    let report = align_assemblies_observed(
        &WgaParams::darwin_wga(),
        &target,
        &query,
        &AlignOptions {
            threads,
            executor,
            ..AlignOptions::default()
        },
        obs,
    )
    .expect("golden run succeeds");
    let modeled =
        hwsim::perf::modeled_cycles(&report.workload, &hwsim::AcceleratorConfig::fpga());
    obs.hwsim_spans(
        modeled.bsw_tiles,
        modeled.bsw_cycles,
        modeled.gactx_tiles,
        modeled.gactx_cycles,
    );
    let mut out = Vec::new();
    recorder.write_trace(&mut out).expect("trace writes");
    String::from_utf8(out).expect("trace is UTF-8")
}

#[test]
fn report_json_is_byte_identical_for_one_trace() {
    let trace_text = golden_trace(1, ExecutorKind::Barrier);
    let a = ProfileReport::build(&TraceFile::parse(&trace_text).expect("parses"), 5).to_json();
    let b = ProfileReport::build(&TraceFile::parse(&trace_text).expect("parses"), 5).to_json();
    assert_eq!(a, b, "same trace must yield byte-identical reports");
    // Integer-only: no digit.digit token anywhere in the artifact.
    let bytes = a.as_bytes();
    for i in 1..bytes.len() - 1 {
        if bytes[i] == b'.' {
            assert!(
                !(bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()),
                "float-looking value in report JSON"
            );
        }
    }
}

#[test]
fn real_run_traces_have_zero_drift_on_every_executor() {
    for (threads, executor) in [
        (1, ExecutorKind::Barrier),
        (3, ExecutorKind::Barrier),
        (3, ExecutorKind::Dataflow),
    ] {
        let trace = TraceFile::parse(&golden_trace(threads, executor)).expect("parses");
        let drift = Drift::compute(&trace);
        assert!(drift.bsw.present && drift.gactx.present);
        assert_eq!(
            drift.max_gated_centi(),
            Some(0),
            "{executor:?}/{threads}t: trace-extracted workload must replay to the recorded cycles \
             (bsw {} vs {}, gactx {} vs {})",
            drift.bsw.recorded_cycles,
            drift.bsw.replayed_cycles,
            drift.gactx.recorded_cycles,
            drift.gactx.replayed_cycles,
        );
        // The extracted workload matches what the run measured.
        assert!(drift.workload.seeds > 0);
        assert!(drift.workload.filter_tiles > 0);
        assert!(drift.workload.extension_cells > 0);
        assert!(drift.workload.extension_rows > 0);
    }
}

#[test]
fn attribution_reconstructs_the_timeline() {
    let trace = TraceFile::parse(&golden_trace(3, ExecutorKind::Dataflow)).expect("parses");
    let attr = Attribution::compute(&trace, 5);
    assert_eq!(attr.pairs, 4, "golden workload has 4 chromosome pairs");
    let critical = attr.critical.expect("critical path over a real run");
    assert!(critical.total_us > 0);
    assert!(attr.wall_us >= critical.filter_us);
    assert!(attr.workers.len() >= 2, "threaded dataflow uses several workers");
    assert!(
        attr.workers.iter().any(|w| w.wait_us > 0),
        "dataflow workers must record queue waits"
    );
    assert!(!attr.top_filter_batches.is_empty());
    let t = &attr.top_filter_batches;
    assert!(
        t.windows(2).all(|w| w[0].dur_us >= w[1].dur_us),
        "top-K is sorted slowest-first"
    );
    let share_sum = attr.seed_share_centi + attr.filter_share_centi + attr.extend_share_centi;
    assert!(share_sum <= 10_000, "shares are centi-percent of stage time");
}

#[test]
fn headerless_trace_parses_as_schema_1_and_unknown_major_is_rejected() {
    let with_header = golden_trace(1, ExecutorKind::Barrier);
    let headerless: String = with_header
        .lines()
        .filter(|l| !l.starts_with("{\"schema\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let t = TraceFile::parse(&headerless).expect("schema-1 trace parses");
    assert_eq!(t.schema, 1);

    let future = with_header.replacen(
        "{\"schema\":2}",
        "{\"schema\":3}",
        1,
    );
    let err = TraceFile::parse(&future).expect_err("future major rejected");
    assert!(err.to_string().contains("unsupported trace schema"), "{err}");
}

#[test]
fn diff_gate_passes_self_and_fails_perturbation() {
    let trace_text = golden_trace(1, ExecutorKind::Barrier);
    let json = ProfileReport::build(&TraceFile::parse(&trace_text).expect("parses"), 5).to_json();
    let summary = diff::ReportSummary::from_json(&json).expect("summary parses");
    let thresholds = diff::Thresholds::default();
    assert!(diff::diff(&summary, &summary, &thresholds).is_pass());

    // A drift regression beyond the threshold fails the gate.
    let mut worse = summary;
    worse.gactx_drift_centi = Some(
        summary.gactx_drift_centi.unwrap_or(0) + thresholds.drift_regression_centi + 1,
    );
    let outcome = diff::diff(&summary, &worse, &thresholds);
    assert!(!outcome.is_pass());
    assert!(outcome.render().contains("REGRESSION"));

    // Losing the drift signal entirely also fails.
    let mut lost = summary;
    lost.bsw_drift_centi = None;
    assert!(!diff::diff(&summary, &lost, &thresholds).is_pass());
}
