//! Integration tests for the observability layer (`wga_core::obs`).
//!
//! Three contracts are pinned here:
//!
//! 1. **Inertness** — running with a live [`TraceRecorder`] produces a
//!    report byte-identical to the checked-in golden report (and hence to
//!    a recorder-off run) on every executor and thread count. The
//!    observability layer may observe; it may never perturb.
//! 2. **Trace schema** — `TraceRecorder::write_trace` emits JSONL that
//!    the repo's own JSON parser accepts: every span line carries the
//!    full integer field set and a known span name; every counter line
//!    carries a known counter name and non-negative value; every
//!    histogram line carries sorted log2 buckets that sum to its total.
//! 3. **Metrics universality** — every executor reports
//!    [`ExecutorMetrics`] whose JSON round-trips through the parser and
//!    is tagged with the executor that produced it.

use darwin_wga::core::config::{FilterEngineKind, WgaParams};
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::genome_pipeline::{align_assemblies_observed, AlignOptions};
use darwin_wga::core::journal::json::{self, Json};
use darwin_wga::core::obs::{
    Counter, HistKind, Log2Histogram, Obs, SpanName, TraceRecorder, NO_SPAN, STRAND_NA,
    TRACE_SCHEMA,
};
use darwin_wga::genome::assembly::Assembly;
use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn load_assembly(name: &str, file: &str) -> Assembly {
    let path = data_dir().join(file);
    let reader = BufReader::new(fs::File::open(&path).expect("golden FASTA present"));
    Assembly::from_fasta(name, reader).expect("checked-in FASTA parses")
}

fn golden_inputs() -> (Assembly, Assembly, String) {
    let target = load_assembly("golden-target", "golden.target.fa");
    let query = load_assembly("golden-query", "golden.query.fa");
    let expected = fs::read_to_string(data_dir().join("golden.report.txt"))
        .expect("golden.report.txt present");
    (target, query, expected)
}

fn int_field(obj: &Json, key: &str) -> i128 {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {obj:?}"))
        .as_int()
        .unwrap_or_else(|| panic!("field {key:?} is not an integer in {obj:?}"))
}

/// Recorder on vs recorder off: same bytes on every executor × filter
/// engine × thread count — the "provably inert" acceptance gate. The
/// schema-2 span fields (tid/id/parent, extend lane spans, queue-wait
/// spans) must leave the canonical report untouched too.
#[test]
fn golden_report_is_identical_with_recorder_on() {
    let (target, query, expected) = golden_inputs();
    for engine in [
        FilterEngineKind::Scalar,
        FilterEngineKind::Batched,
        FilterEngineKind::Simd,
    ] {
        let params = WgaParams::darwin_wga().with_filter_engine(engine);
        for executor in [ExecutorKind::Barrier, ExecutorKind::Dataflow] {
            for threads in [1usize, 3] {
                let options = AlignOptions {
                    threads,
                    executor,
                    ..AlignOptions::default()
                };
                let recorder = TraceRecorder::new();
                let observed = align_assemblies_observed(
                    &params,
                    &target,
                    &query,
                    &options,
                    Obs::new(&recorder),
                )
                .expect("observed run succeeds");
                assert_eq!(
                    observed.canonical_text(),
                    expected,
                    "{executor:?}/{engine:?}/{threads}t: recorder changed the report"
                );
                // The recorder actually saw the run, i.e. the comparison
                // above exercised live instrumentation, not a no-op.
                assert_eq!(recorder.counter(Counter::PairsDone), 4);
                assert!(recorder.counter(Counter::FilterTiles) > 0);
                assert!(!recorder.spans().is_empty());
            }
        }
    }
}

/// Every span line in the trace parses, uses a known span name, and
/// carries the full integer schema; counter lines carry a known counter
/// name and a non-negative value, with exactly one line per counter;
/// histogram lines carry sorted buckets summing to their totals.
#[test]
fn trace_jsonl_matches_schema() {
    let (target, query, _) = golden_inputs();
    let recorder = TraceRecorder::new();
    let report = align_assemblies_observed(
        &WgaParams::darwin_wga(),
        &target,
        &query,
        &AlignOptions::default(),
        Obs::new(&recorder),
    )
    .expect("run succeeds");
    assert!(!report.alignments.is_empty());

    let mut out = Vec::new();
    recorder.write_trace(&mut out).expect("trace writes");
    let text = String::from_utf8(out).expect("trace is UTF-8");

    let known: Vec<&str> = SpanName::ALL.iter().map(|n| n.as_str()).collect();
    let known_hists: Vec<&str> = HistKind::ALL.iter().map(|h| h.as_str()).collect();
    let known_counters: Vec<&str> = Counter::ALL.iter().map(|c| c.as_str()).collect();
    let mut seen_spans = Vec::new();
    let mut seen_hists = Vec::new();
    let mut seen_counters = Vec::new();
    let mut seen_schema = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        if let Some(version) = doc.get("schema") {
            assert_eq!(idx, 0, "schema header must be the first line");
            assert_eq!(version.as_int(), Some(TRACE_SCHEMA as i128));
            seen_schema += 1;
        } else if let Some(name) = doc.get("span").and_then(Json::as_str) {
            assert!(known.contains(&name), "unknown span name {name:?}");
            for key in [
                "pair", "strand", "seq", "start_us", "dur_us", "items", "cells", "tid", "id",
                "parent",
            ] {
                assert!(int_field(&doc, key) >= 0, "{name}: negative {key}");
            }
            let strand = int_field(&doc, "strand");
            assert!((0..=2).contains(&strand), "strand code out of range");
            // Schema 2: every span names its recording thread and a
            // nonzero process-unique id.
            assert!(int_field(&doc, "tid") >= 1, "{name}: unassigned tid");
            assert!(int_field(&doc, "id") > 0, "{name}: id must never be NO_SPAN");
            seen_spans.push(name.to_string());
        } else if let Some(name) = doc.get("counter").and_then(Json::as_str) {
            assert!(known_counters.contains(&name), "unknown counter {name:?}");
            assert!(int_field(&doc, "value") >= 0, "{name}: negative value");
            seen_counters.push(name.to_string());
        } else if let Some(name) = doc.get("hist").and_then(Json::as_str) {
            assert!(known_hists.contains(&name), "unknown histogram {name:?}");
            let total = int_field(&doc, "total");
            let buckets = doc.get("buckets").and_then(Json::as_arr).expect("buckets");
            let mut sum = 0i128;
            let mut last_bucket = -1i128;
            for entry in buckets {
                let pair = entry.as_arr().expect("bucket entry is [index, count]");
                assert_eq!(pair.len(), 2);
                let (b, c) = (pair[0].as_int().unwrap(), pair[1].as_int().unwrap());
                assert!(b > last_bucket, "buckets not strictly ascending");
                assert!(c > 0, "empty buckets must be omitted");
                last_bucket = b;
                sum += c;
            }
            assert_eq!(sum, total, "{name}: bucket counts must sum to total");
            seen_hists.push(name.to_string());
        } else {
            panic!("line is neither a schema header, a span, a counter, nor a histogram: {line:?}");
        }
    }
    assert_eq!(seen_schema, 1, "exactly one schema header");
    // Exactly one line per counter, including `shard.spec_discard`.
    for required in &known_counters {
        assert_eq!(
            seen_counters.iter().filter(|c| *c == required).count(),
            1,
            "expected exactly one counter line for {required:?}"
        );
    }
    // The serial golden run must produce the core span taxonomy,
    // including the schema-2 lane-level `extend` span…
    for required in ["seed.table", "seed", "filter.batch", "extend.tile", "extend"] {
        assert!(
            seen_spans.iter().any(|s| s == required),
            "required span {required:?} missing from trace"
        );
    }
    // …and one line per histogram kind.
    for required in known_hists {
        assert_eq!(
            seen_hists.iter().filter(|h| *h == required).count(),
            1,
            "expected exactly one {required:?} line"
        );
    }
}

/// A checkpointed run emits `checkpoint` spans, one per computed pair.
#[test]
fn checkpointed_run_traces_checkpoint_spans() {
    let (target, query, _) = golden_inputs();
    let path = std::env::temp_dir().join(format!("wga-obs-ckpt-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    let recorder = TraceRecorder::new();
    align_assemblies_observed(
        &WgaParams::darwin_wga(),
        &target,
        &query,
        &AlignOptions {
            checkpoint: Some(path.clone()),
            ..AlignOptions::default()
        },
        Obs::new(&recorder),
    )
    .expect("run succeeds");
    let _ = fs::remove_file(&path);
    let checkpoints = recorder
        .spans()
        .iter()
        .filter(|s| s.name == SpanName::Checkpoint)
        .count();
    assert_eq!(checkpoints, 4, "one checkpoint span per journaled pair");
}

/// Every executor emits metrics; the JSON parses and names its executor.
#[test]
fn metrics_json_is_valid_on_every_executor() {
    let (target, query, _) = golden_inputs();
    for (executor, tag) in [(ExecutorKind::Barrier, "barrier"), (ExecutorKind::Dataflow, "dataflow")]
    {
        let options = AlignOptions {
            threads: 2,
            executor,
            ..AlignOptions::default()
        };
        let report = align_assemblies_observed(
            &WgaParams::darwin_wga(),
            &target,
            &query,
            &options,
            Obs::off(),
        )
        .expect("run succeeds");
        let metrics = report.stage_metrics.expect("metrics on every executor");
        assert_eq!(metrics.executor, executor);
        let doc = json::parse(&metrics.to_json()).expect("metrics JSON parses");
        assert_eq!(doc.get("executor").and_then(Json::as_str), Some(tag));
        for stage in ["seeding", "filtering", "extension"] {
            let s = doc.get(stage).unwrap_or_else(|| panic!("missing {stage}"));
            for key in ["workers", "items", "cells", "busy_us", "idle_us", "max_queue_occupancy"] {
                assert!(int_field(s, key) >= 0);
            }
        }
        // Both executors agree on what work the run contained.
        assert_eq!(metrics.filtering.items, report.workload.filter_tiles);
        assert_eq!(metrics.seeding.cells, report.workload.seeds);
    }
}

/// Log2 histogram boundary behaviour via the public API: 0 → bucket 0,
/// powers of two open new buckets, `u64::MAX` lands in the last one.
#[test]
fn histogram_bucket_boundaries() {
    let h = Log2Histogram::new();
    for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
        h.observe(v);
    }
    assert_eq!(h.total(), 8);
    let snapshot = h.snapshot();
    // 0→b0; 1→b1; 2,3→b2; 4→b3; 1023→b10; 1024→b11; MAX→b64.
    assert_eq!(
        snapshot,
        vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1), (11, 1), (64, 1)]
    );
    for (bucket, _) in snapshot {
        let lower = Log2Histogram::bucket_lower_bound(bucket);
        if bucket > 0 {
            assert_eq!(Log2Histogram::bucket_index(lower), bucket);
        }
    }
}

/// `Span::to_json_line` is the schema: field order and integer-only
/// rendering pinned byte-for-byte so external consumers can rely on it.
#[test]
fn span_line_is_byte_stable() {
    let recorder = TraceRecorder::new();
    let obs = Obs::new(&recorder).with_pair(3);
    let mut buf = obs.buffer();
    let timer = buf.start();
    buf.finish(timer, SpanName::Chain, STRAND_NA, 7, 2, 99);
    buf.flush();
    let spans = recorder.spans();
    assert_eq!(spans.len(), 1);
    let line = spans[0].to_json_line();
    let doc = json::parse(&line).expect("span line parses");
    assert_eq!(doc.get("span").and_then(Json::as_str), Some("chain"));
    assert_eq!(int_field(&doc, "pair"), 3);
    assert_eq!(int_field(&doc, "seq"), 7);
    assert_eq!(int_field(&doc, "items"), 2);
    assert_eq!(int_field(&doc, "cells"), 99);
    // Schema-2 fields ride on every line: a real thread id, a nonzero
    // span id, and NO_SPAN parent for a top-level span.
    assert!(int_field(&doc, "tid") >= 1);
    assert!(int_field(&doc, "id") > 0);
    assert_eq!(int_field(&doc, "parent"), NO_SPAN as i128);
}

/// A threaded dataflow run records `queue.wait` spans on the known
/// queue codes, and every `extend.tile` span is parented under an
/// `extend` lane span recorded by the same thread.
#[test]
fn dataflow_run_records_queue_waits_and_extend_lanes() {
    let (target, query, _) = golden_inputs();
    let recorder = TraceRecorder::new();
    align_assemblies_observed(
        &WgaParams::darwin_wga(),
        &target,
        &query,
        &AlignOptions {
            threads: 3,
            executor: ExecutorKind::Dataflow,
            ..AlignOptions::default()
        },
        Obs::new(&recorder),
    )
    .expect("run succeeds");
    let spans = recorder.spans();

    let waits: Vec<_> = spans.iter().filter(|s| s.name == SpanName::QueueWait).collect();
    assert!(!waits.is_empty(), "dataflow run must record queue waits");
    for w in &waits {
        assert!(w.seq <= 3, "queue code out of range: {}", w.seq);
    }

    let lanes: std::collections::HashMap<u64, u64> = spans
        .iter()
        .filter(|s| s.name == SpanName::Extend)
        .map(|s| (s.id, s.tid))
        .collect();
    assert!(!lanes.is_empty(), "extension work must record lane spans");
    let mut tiles = 0usize;
    for t in spans.iter().filter(|s| s.name == SpanName::ExtendTile) {
        tiles += 1;
        let lane_tid = lanes
            .get(&t.parent)
            .unwrap_or_else(|| panic!("extend.tile parent {} is not a lane span id", t.parent));
        assert_eq!(*lane_tid, t.tid, "tile and its lane recorded by different threads");
    }
    assert!(tiles > 0, "golden run must extend at least one anchor");
}
