//! FPGA resource model — why "50 BSW and 2 GACT-X arrays" fit (§V-C).
//!
//! The paper maps its design onto the Xilinx Virtex UltraScale+ VU9P of
//! an AWS f1.2xlarge and reports the array counts that fit at 150 MHz.
//! This model budgets LUTs and BRAM per processing element (calibrated
//! so the paper's configuration lands at a realistic ~70–85% device
//! utilisation, past which routing congestion breaks timing closure) and
//! answers provisioning questions like "how many arrays would a bigger
//! part take?".

use serde::{Deserialize, Serialize};

/// An FPGA part's usable resources (after shell/DMA overhead).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaPart {
    /// Part name.
    pub name: &'static str,
    /// LUTs available to user logic.
    pub luts: u64,
    /// BRAM36 blocks available (36 Kb each).
    pub bram36: u64,
    /// Fraction of the device usable before routing congestion breaks
    /// timing at the target clock (0–1).
    pub max_utilisation: f64,
}

impl FpgaPart {
    /// The VU9P on an f1.2xlarge, minus the AWS shell (~20% of the part).
    pub fn vu9p_f1() -> FpgaPart {
        FpgaPart {
            name: "VU9P (f1.2xlarge, shell excluded)",
            luts: 945_000,
            bram36: 1_680,
            max_utilisation: 0.85,
        }
    }
}

/// Per-PE resource costs for the two array types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeCosts {
    /// LUTs per BSW PE (score-only datapath).
    pub bsw_luts_per_pe: u64,
    /// LUTs per GACT-X PE (adds pointer generation and control).
    pub gactx_luts_per_pe: u64,
    /// BRAM36 blocks per GACT-X PE (16 KB traceback = 4 × 36 Kb blocks
    /// with ECC/width padding).
    pub gactx_bram_per_pe: u64,
    /// BRAM36 blocks per array for sequence buffers.
    pub seq_bram_per_array: u64,
}

impl PeCosts {
    /// Calibrated defaults: with these, the paper's 50 × 32-PE BSW +
    /// 2 × 32-PE GACT-X configuration uses ~79% of the VU9P's LUTs.
    pub fn calibrated() -> PeCosts {
        PeCosts {
            bsw_luts_per_pe: 430,
            gactx_luts_per_pe: 900,
            gactx_bram_per_pe: 4,
            seq_bram_per_array: 4,
        }
    }
}

/// A candidate mapping of arrays onto a part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// BSW arrays.
    pub bsw_arrays: usize,
    /// GACT-X arrays.
    pub gactx_arrays: usize,
    /// PEs per array (both kinds).
    pub pes_per_array: usize,
}

impl Mapping {
    /// The paper's FPGA mapping.
    pub fn darwin_wga_fpga() -> Mapping {
        Mapping {
            bsw_arrays: 50,
            gactx_arrays: 2,
            pes_per_array: 32,
        }
    }

    /// LUTs this mapping consumes.
    pub fn luts(&self, costs: &PeCosts) -> u64 {
        let bsw = self.bsw_arrays as u64 * self.pes_per_array as u64 * costs.bsw_luts_per_pe;
        let gactx =
            self.gactx_arrays as u64 * self.pes_per_array as u64 * costs.gactx_luts_per_pe;
        bsw + gactx
    }

    /// BRAM36 blocks this mapping consumes.
    pub fn bram(&self, costs: &PeCosts) -> u64 {
        let tb = self.gactx_arrays as u64 * self.pes_per_array as u64 * costs.gactx_bram_per_pe;
        let seq = (self.bsw_arrays + self.gactx_arrays) as u64 * costs.seq_bram_per_array;
        tb + seq
    }

    /// Whether the mapping fits the part within its utilisation ceiling.
    pub fn fits(&self, part: &FpgaPart, costs: &PeCosts) -> bool {
        (self.luts(costs) as f64) <= part.luts as f64 * part.max_utilisation
            && (self.bram(costs) as f64) <= part.bram36 as f64 * part.max_utilisation
    }

    /// LUT utilisation fraction on the part.
    pub fn lut_utilisation(&self, part: &FpgaPart, costs: &PeCosts) -> f64 {
        self.luts(costs) as f64 / part.luts as f64
    }
}

/// The largest BSW array count that fits alongside `gactx_arrays` at the
/// given PE width.
pub fn max_bsw_arrays(
    part: &FpgaPart,
    costs: &PeCosts,
    gactx_arrays: usize,
    pes_per_array: usize,
) -> usize {
    let mut best = 0;
    for n in 0..=4096 {
        let m = Mapping {
            bsw_arrays: n,
            gactx_arrays,
            pes_per_array,
        };
        if m.fits(part, costs) {
            best = n;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mapping_fits_the_vu9p() {
        let part = FpgaPart::vu9p_f1();
        let costs = PeCosts::calibrated();
        let m = Mapping::darwin_wga_fpga();
        assert!(m.fits(&part, &costs));
        let util = m.lut_utilisation(&part, &costs);
        assert!((0.6..0.85).contains(&util), "LUT utilisation {util}");
    }

    #[test]
    fn paper_mapping_is_near_the_ceiling() {
        // The paper reports 50 as what they "were able to map": materially
        // more should NOT fit.
        let part = FpgaPart::vu9p_f1();
        let costs = PeCosts::calibrated();
        let max = max_bsw_arrays(&part, &costs, 2, 32);
        assert!((50..=60).contains(&max), "max {max}");
    }

    #[test]
    fn bram_budget_covers_the_traceback() {
        let part = FpgaPart::vu9p_f1();
        let costs = PeCosts::calibrated();
        let m = Mapping::darwin_wga_fpga();
        // 2 arrays × 32 PEs × 16 KB = 1 MB of traceback must fit easily.
        assert!(m.bram(&costs) < part.bram36 / 2);
    }

    #[test]
    fn doubling_pe_width_halves_array_count() {
        let part = FpgaPart::vu9p_f1();
        let costs = PeCosts::calibrated();
        let at32 = max_bsw_arrays(&part, &costs, 2, 32);
        let at64 = max_bsw_arrays(&part, &costs, 2, 64);
        let ratio = at32 as f64 / at64.max(1) as f64;
        assert!((1.8..=2.3).contains(&ratio), "ratio {ratio}");
    }
}
