//! Genomic intervals and ground-truth coordinate maps.
//!
//! The synthetic evolution model tracks, for every ancestral position, where
//! it landed in each descendant. That gives us a ground-truth orthology map
//! the paper did not have (it had to approximate one with TBLASTX), which we
//! use for the exon-recovery metric of Table III.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A half-open interval `[start, end)` on a sequence, with a label.
///
/// Used for conserved elements ("exons") in the synthetic ancestor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Start coordinate (inclusive).
    pub start: usize,
    /// End coordinate (exclusive).
    pub end: usize,
    /// Free-form label, e.g. `exon_17`.
    pub label: String,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize, label: impl Into<String>) -> Interval {
        assert!(start <= end, "interval start {start} > end {end}");
        Interval {
            start,
            end,
            label: label.into(),
        }
    }

    /// Interval length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `pos` lies inside the interval.
    pub fn contains(&self, pos: usize) -> bool {
        (self.start..self.end).contains(&pos)
    }

    /// The interval as a `Range`.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of positions shared with `other`.
    pub fn overlap(&self, other: &Interval) -> usize {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        hi.saturating_sub(lo)
    }
}

/// Maps ancestral coordinates to descendant coordinates.
///
/// `map[i] == Some(j)` means ancestral base `i` survives (possibly
/// substituted) at descendant position `j`; `None` means it was deleted.
/// Positions are strictly increasing over the surviving entries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinateMap {
    map: Vec<Option<u32>>,
    descendant_len: usize,
}

impl CoordinateMap {
    /// Builds a map from raw entries.
    ///
    /// # Panics
    ///
    /// Panics if surviving positions are not strictly increasing or exceed
    /// `descendant_len`.
    pub fn from_entries(map: Vec<Option<u32>>, descendant_len: usize) -> CoordinateMap {
        let mut prev: Option<u32> = None;
        for &entry in map.iter().flatten() {
            assert!(
                prev.is_none_or(|p| entry > p),
                "coordinate map not increasing"
            );
            assert!(
                (entry as usize) < descendant_len,
                "coordinate {entry} out of bounds"
            );
            prev = Some(entry);
        }
        CoordinateMap {
            map,
            descendant_len,
        }
    }

    /// Length of the ancestral sequence.
    pub fn ancestor_len(&self) -> usize {
        self.map.len()
    }

    /// Length of the descendant sequence.
    pub fn descendant_len(&self) -> usize {
        self.descendant_len
    }

    /// Descendant position of ancestral base `pos`, if it survives.
    pub fn lookup(&self, pos: usize) -> Option<usize> {
        self.map.get(pos).copied().flatten().map(|p| p as usize)
    }

    /// Number of ancestral bases that survive in the descendant.
    pub fn surviving(&self) -> usize {
        self.map.iter().filter(|e| e.is_some()).count()
    }

    /// Projects an ancestral interval to the descendant: the smallest
    /// interval containing all surviving bases, or `None` if every base was
    /// deleted.
    pub fn project(&self, interval: &Interval) -> Option<Interval> {
        let mut lo: Option<usize> = None;
        let mut hi: Option<usize> = None;
        for pos in interval.range() {
            if let Some(d) = self.lookup(pos) {
                if lo.is_none() {
                    lo = Some(d);
                }
                hi = Some(d);
            }
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => Some(Interval::new(lo, hi + 1, interval.label.clone())),
            _ => None,
        }
    }
}

/// Ground-truth orthologous base pairs between two descendants of a common
/// ancestor: ancestral bases surviving in *both* lineages.
///
/// Returns `(pos_in_a, pos_in_b)` pairs in increasing order.
pub fn orthologous_pairs(a: &CoordinateMap, b: &CoordinateMap) -> Vec<(usize, usize)> {
    assert_eq!(
        a.ancestor_len(),
        b.ancestor_len(),
        "maps have different ancestors"
    );
    let mut pairs = Vec::new();
    for pos in 0..a.ancestor_len() {
        if let (Some(pa), Some(pb)) = (a.lookup(pos), b.lookup(pos)) {
            pairs.push((pa, pb));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(10, 20, "exon_1");
        assert_eq!(iv.len(), 10);
        assert!(iv.contains(10));
        assert!(!iv.contains(20));
        assert!(!iv.is_empty());
        assert_eq!(iv.overlap(&Interval::new(15, 30, "x")), 5);
        assert_eq!(iv.overlap(&Interval::new(20, 30, "x")), 0);
    }

    #[test]
    #[should_panic(expected = "interval start")]
    fn interval_rejects_inverted() {
        Interval::new(5, 4, "bad");
    }

    #[test]
    fn coordinate_map_lookup_and_project() {
        // ancestor len 6; base 2 deleted; insertion shifted tail.
        let map = CoordinateMap::from_entries(
            vec![Some(0), Some(1), None, Some(4), Some(5), Some(6)],
            7,
        );
        assert_eq!(map.ancestor_len(), 6);
        assert_eq!(map.descendant_len(), 7);
        assert_eq!(map.lookup(0), Some(0));
        assert_eq!(map.lookup(2), None);
        assert_eq!(map.lookup(3), Some(4));
        assert_eq!(map.surviving(), 5);

        let projected = map.project(&Interval::new(1, 5, "e")).unwrap();
        assert_eq!((projected.start, projected.end), (1, 6));

        // Fully deleted interval projects to None.
        assert_eq!(map.project(&Interval::new(2, 3, "gone")), None);
    }

    #[test]
    #[should_panic(expected = "not increasing")]
    fn coordinate_map_rejects_decreasing() {
        CoordinateMap::from_entries(vec![Some(3), Some(2)], 5);
    }

    #[test]
    fn orthologous_pairs_intersect_survivors() {
        let a = CoordinateMap::from_entries(vec![Some(0), None, Some(1), Some(2)], 3);
        let b = CoordinateMap::from_entries(vec![Some(0), Some(1), Some(2), None], 3);
        assert_eq!(orthologous_pairs(&a, &b), vec![(0, 0), (1, 2)]);
    }
}
