//! Synthetic genome evolution.
//!
//! The paper evaluates on six real genomes (Table I) at the phylogenetic
//! distances of Fig. 8. We substitute an explicit two-lineage evolution
//! model: an ancestral sequence (order-1 Markov, genome-like 2-mer stats)
//! accumulates substitutions and indels independently along two lineages,
//! each evolving for half the pairwise distance. Conserved "exon" islands
//! evolve at a reduced rate and are tracked, giving ground-truth orthology
//! for the Table III sensitivity metrics.
//!
//! The key property the model must reproduce — because it drives *every*
//! headline result — is Fig. 2: the expected length of a gap-free alignment
//! block shrinks as phylogenetic distance grows (~641 bp for human–chimp,
//! ~31 bp for human–mouse), which is what defeats ungapped filtering for
//! distant pairs.

use crate::alphabet::Base;
use crate::annotation::{CoordinateMap, Interval};
use crate::markov::MarkovModel;
use crate::sequence::Sequence;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the two-lineage evolution model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionParams {
    /// Total pairwise distance between the two descendants, in expected
    /// substitutions per site (each lineage receives half).
    pub distance: f64,
    /// Fraction of substitutions that are transitions (A↔G, C↔T).
    /// Empirically ≈ 2/3 (a 2:1 transition:transversion ratio).
    pub transition_fraction: f64,
    /// Indel events per substitution event. Mammal-like genomes show
    /// roughly 0.05–0.15.
    pub indels_per_substitution: f64,
    /// Mean length of short (geometric) indels.
    pub short_indel_mean: f64,
    /// Probability that an indel is drawn from the long power-law tail.
    pub long_indel_prob: f64,
    /// Maximum long-indel length (power-law exponent fixed at ~1.6).
    pub long_indel_max: usize,
    /// Substitution-rate multiplier inside conserved elements (purifying
    /// selection).
    pub conserved_rate_factor: f64,
    /// Indel-rate multiplier inside conserved elements. Indels are purged
    /// less strongly than substitutions in much functional sequence, which
    /// keeps conserved islands recognisable yet indel-dense — the exact
    /// regime (Fig. 2, Fig. 9) where ungapped filtering fails.
    pub conserved_indel_factor: f64,
    /// Fraction of the ancestor covered by conserved elements.
    pub conserved_fraction: f64,
    /// Mean conserved-element ("exon") length in bp.
    pub conserved_mean_len: usize,
    /// Segmental duplications per lineage per Mbp (creates paralogs).
    pub duplications_per_mbp: f64,
    /// Mean duplication length in bp.
    pub duplication_mean_len: usize,
    /// Lineage-specific *turnover* insertions per kb per lineage:
    /// transposon-like sequence gains that fragment the alignable genome
    /// into separate homology blocks, as real genomes are. Without them a
    /// synthetic pair is one contiguous homologous run and a single lucky
    /// seed recovers everything, hiding filter-sensitivity differences.
    pub turnover_per_kb: f64,
    /// Mean turnover-insertion length in bp (long enough that extension
    /// cannot cross: the gap cost must exceed the Y-drop).
    pub turnover_mean_len: usize,
}

impl EvolutionParams {
    /// Model parameters at a given pairwise distance, with defaults for the
    /// remaining rates.
    pub fn at_distance(distance: f64) -> EvolutionParams {
        EvolutionParams {
            distance,
            ..EvolutionParams::default()
        }
    }
}

impl Default for EvolutionParams {
    fn default() -> Self {
        EvolutionParams {
            distance: 0.2,
            transition_fraction: 2.0 / 3.0,
            indels_per_substitution: 0.15,
            short_indel_mean: 3.0,
            long_indel_prob: 0.02,
            long_indel_max: 400,
            conserved_rate_factor: 0.25,
            conserved_indel_factor: 0.6,
            conserved_fraction: 0.22,
            conserved_mean_len: 250,
            duplications_per_mbp: 2.0,
            duplication_mean_len: 1000,
            turnover_per_kb: 1.5,
            turnover_mean_len: 450,
        }
    }
}

/// One evolved lineage: the descendant sequence plus ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lineage {
    /// Descendant sequence.
    pub sequence: Sequence,
    /// Ancestor→descendant coordinate map.
    pub coordinates: CoordinateMap,
    /// Conserved elements projected into descendant coordinates
    /// (elements fully deleted in this lineage are absent).
    pub conserved: Vec<Interval>,
    /// Number of substitutions applied.
    pub substitutions: u64,
    /// Number of indel events applied.
    pub indel_events: u64,
    /// Total inserted + deleted bases.
    pub indel_bases: u64,
}

/// A complete synthetic species pair with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticPair {
    /// The ancestral sequence.
    pub ancestor: Sequence,
    /// Conserved elements in ancestral coordinates.
    pub ancestral_conserved: Vec<Interval>,
    /// The "target" descendant (lineage A).
    pub target: Lineage,
    /// The "query" descendant (lineage B).
    pub query: Lineage,
    /// Parameters used.
    pub params: EvolutionParams,
}

impl SyntheticPair {
    /// Generates a pair: ancestor of `len` bases, conserved islands, two
    /// independently evolved lineages at `params.distance / 2` each.
    ///
    /// # Examples
    ///
    /// ```
    /// use genome::evolve::{EvolutionParams, SyntheticPair};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    /// let pair = SyntheticPair::generate(10_000, &EvolutionParams::at_distance(0.2), &mut rng);
    /// assert!(pair.target.sequence.len() > 8_000);
    /// assert!(!pair.ancestral_conserved.is_empty());
    /// ```
    pub fn generate<R: Rng + ?Sized>(
        len: usize,
        params: &EvolutionParams,
        rng: &mut R,
    ) -> SyntheticPair {
        let ancestor = MarkovModel::genome_like().generate(len, rng);
        let ancestral_conserved = place_conserved_elements(len, params, rng);
        let target = evolve_lineage(&ancestor, &ancestral_conserved, params, rng);
        let query = evolve_lineage(&ancestor, &ancestral_conserved, params, rng);
        SyntheticPair {
            ancestor,
            ancestral_conserved,
            target,
            query,
            params: params.clone(),
        }
    }

    /// Ground-truth orthologous base pairs `(target_pos, query_pos)`.
    pub fn orthologous_pairs(&self) -> Vec<(usize, usize)> {
        crate::annotation::orthologous_pairs(&self.target.coordinates, &self.query.coordinates)
    }
}

/// Places non-overlapping conserved elements covering roughly
/// `conserved_fraction` of the ancestor.
fn place_conserved_elements<R: Rng + ?Sized>(
    len: usize,
    params: &EvolutionParams,
    rng: &mut R,
) -> Vec<Interval> {
    let mut intervals = Vec::new();
    if params.conserved_fraction <= 0.0 || params.conserved_mean_len == 0 || len == 0 {
        return intervals;
    }
    let target_bases = (len as f64 * params.conserved_fraction).round() as usize;
    let n_elements = (target_bases / params.conserved_mean_len).max(1);
    // One element per window keeps elements spread genome-wide (as real
    // exons are) while the geometric length gives the size variation.
    let window = len / n_elements;
    if window < 40 {
        return intervals;
    }
    for (index, wstart) in (0..n_elements).map(|i| (i, i * window)) {
        let elen = sample_geometric(params.conserved_mean_len as f64, rng)
            .clamp(30, window.saturating_sub(1).max(30));
        if elen + 1 >= window {
            continue;
        }
        let offset = rng.gen_range(0..window - elen);
        let start = wstart + offset;
        let end = (start + elen).min(len);
        if start < end {
            intervals.push(Interval::new(start, end, format!("exon_{index}")));
        }
    }
    intervals
}

/// Geometric sample with the given mean (support ≥ 1).
fn sample_geometric<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    let mean = mean.max(1.0);
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as usize
}

/// Power-law (discrete Pareto) sample on `[lo, hi]` with exponent ~1.6.
fn sample_power_law<R: Rng + ?Sized>(lo: usize, hi: usize, rng: &mut R) -> usize {
    let alpha = 1.6f64;
    let (lo_f, hi_f) = (lo as f64, hi as f64);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let exp = 1.0 - alpha;
    let x = (lo_f.powf(exp) + u * (hi_f.powf(exp) - lo_f.powf(exp))).powf(1.0 / exp);
    (x as usize).clamp(lo, hi)
}

/// Evolves one lineage for `params.distance / 2` substitutions per site.
fn evolve_lineage<R: Rng + ?Sized>(
    ancestor: &Sequence,
    conserved: &[Interval],
    params: &EvolutionParams,
    rng: &mut R,
) -> Lineage {
    let lineage_distance = params.distance / 2.0;
    // Per-site probabilities. For the distances in the paper (≤ ~0.3 per
    // lineage) treating distance as probability is adequate; multiple hits
    // at one site only saturate observed identity, which the model's users
    // measure anyway.
    let p_sub = lineage_distance.min(0.75);
    let p_indel = (p_sub * params.indels_per_substitution).min(0.5);

    // Conserved membership lookup.
    let mut conserved_mask = vec![false; ancestor.len()];
    for iv in conserved {
        for pos in iv.range() {
            if pos < conserved_mask.len() {
                conserved_mask[pos] = true;
            }
        }
    }

    let mut sequence = Sequence::with_capacity(ancestor.len() + ancestor.len() / 10);
    let mut map: Vec<Option<u32>> = Vec::with_capacity(ancestor.len());
    let mut substitutions = 0u64;
    let mut indel_events = 0u64;
    let mut indel_bases = 0u64;

    let insert_model = MarkovModel::genome_like();
    // Turnover accumulates with evolutionary time, like substitutions: the
    // nominal per-kb rate applies at a lineage distance of 0.25.
    let p_turnover = params.turnover_per_kb / 1000.0 * (lineage_distance / 0.25);
    let mut pos = 0usize;
    while pos < ancestor.len() {
        let (sub_factor, indel_factor) = if conserved_mask[pos] {
            (params.conserved_rate_factor, params.conserved_indel_factor)
        } else {
            (1.0, 1.0)
        };
        // Turnover: a lineage-specific long insertion (transposon gain).
        // Conserved elements resist turnover like they resist substitutions.
        if rng.gen::<f64>() < p_turnover * sub_factor {
            let len = sample_geometric(params.turnover_mean_len as f64, rng).max(50);
            let inserted = insert_model.generate(len, rng);
            sequence.extend(inserted.iter());
            indel_events += 1;
            indel_bases += len as u64;
        }
        let roll: f64 = rng.gen();
        if roll < p_indel * indel_factor {
            // Indel event: deletion or insertion with equal probability.
            let len = if rng.gen::<f64>() < params.long_indel_prob {
                sample_power_law(10, params.long_indel_max.max(10), rng)
            } else {
                sample_geometric(params.short_indel_mean, rng)
            };
            indel_events += 1;
            indel_bases += len as u64;
            if rng.gen::<bool>() {
                // Deletion: skip `len` ancestral bases.
                let end = (pos + len).min(ancestor.len());
                for _ in pos..end {
                    map.push(None);
                }
                pos = end;
            } else {
                // Insertion before current base.
                let inserted = insert_model.generate(len, rng);
                sequence.extend(inserted.iter());
                // Current ancestral base copied afterwards (fall through by
                // not consuming `pos` here; handle copy below).
                copy_base(
                    ancestor,
                    pos,
                    p_sub * sub_factor,
                    params,
                    rng,
                    &mut sequence,
                    &mut map,
                    &mut substitutions,
                );
                pos += 1;
            }
        } else {
            copy_base(
                ancestor,
                pos,
                p_sub * sub_factor,
                params,
                rng,
                &mut sequence,
                &mut map,
                &mut substitutions,
            );
            pos += 1;
        }
    }

    // Segmental duplications: copy a segment to a random position.
    let expected_dups = params.duplications_per_mbp * (sequence.len() as f64 / 1e6);
    let n_dups = poisson_like(expected_dups, rng);
    for _ in 0..n_dups {
        if sequence.len() < 2 * params.duplication_mean_len {
            break;
        }
        let dlen = sample_geometric(params.duplication_mean_len as f64, rng)
            .clamp(100, sequence.len() / 2);
        let src = rng.gen_range(0..sequence.len() - dlen);
        let dst = rng.gen_range(0..sequence.len());
        let segment = sequence.subsequence(src..src + dlen);
        let mut rebuilt = Sequence::with_capacity(sequence.len() + dlen);
        rebuilt.extend(sequence.slice(0..dst).iter().copied());
        rebuilt.extend(segment.iter());
        rebuilt.extend(sequence.slice(dst..sequence.len()).iter().copied());
        sequence = rebuilt;
        // Shift the coordinate map across the insertion point.
        for entry in map.iter_mut().flatten() {
            if (*entry as usize) >= dst {
                *entry += dlen as u32;
            }
        }
    }

    let coordinates = CoordinateMap::from_entries(map, sequence.len());
    let conserved_projected = conserved
        .iter()
        .filter_map(|iv| coordinates.project(iv))
        .collect();

    Lineage {
        sequence,
        coordinates,
        conserved: conserved_projected,
        substitutions,
        indel_events,
        indel_bases,
    }
}

#[allow(clippy::too_many_arguments)]
fn copy_base<R: Rng + ?Sized>(
    ancestor: &Sequence,
    pos: usize,
    p_sub: f64,
    params: &EvolutionParams,
    rng: &mut R,
    sequence: &mut Sequence,
    map: &mut Vec<Option<u32>>,
    substitutions: &mut u64,
) {
    let mut base = ancestor[pos];
    if base != Base::N && rng.gen::<f64>() < p_sub {
        *substitutions += 1;
        base = if rng.gen::<f64>() < params.transition_fraction {
            base.transition_partner()
        } else {
            // One of the two transversions, uniformly.
            let options: Vec<Base> = Base::DNA
                .iter()
                .copied()
                .filter(|&b| base.is_transversion(b))
                .collect();
            options[rng.gen_range(0..options.len())]
        };
    }
    map.push(Some(sequence.len() as u32));
    sequence.push(base);
}

/// Cheap Poisson-ish sampler (sum of Bernoulli over unit intervals).
fn poisson_like<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let whole = mean.floor() as usize;
    let mut n = 0;
    for _ in 0..whole * 2 {
        if rng.gen::<f64>() < 0.5 {
            n += 1;
        }
    }
    if rng.gen::<f64>() < mean.fract() {
        n += 1;
    }
    n
}

/// A named species pair from the paper's evaluation with its Fig. 8
/// phylogenetic distance and a scaled default size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeciesPair {
    /// Target assembly name (e.g. `ce11`).
    pub target: &'static str,
    /// Query assembly name (e.g. `cb4`).
    pub query: &'static str,
    /// Pairwise phylogenetic distance in substitutions/site (Fig. 8,
    /// approximated from the published tree).
    pub distance: f64,
    /// Real genome size of the target in Mbp (Table I).
    pub real_size_mbp: f64,
}

impl SpeciesPair {
    /// The four whole-genome alignments evaluated in the paper
    /// (Tables III and V), ordered as the paper lists them.
    pub fn paper_pairs() -> [SpeciesPair; 4] {
        [
            SpeciesPair {
                target: "ce11",
                query: "cb4",
                distance: 1.10,
                real_size_mbp: 100.0,
            },
            SpeciesPair {
                target: "dm6",
                query: "dp4",
                distance: 0.90,
                real_size_mbp: 137.5,
            },
            SpeciesPair {
                target: "dm6",
                query: "droYak2",
                distance: 0.50,
                real_size_mbp: 137.5,
            },
            SpeciesPair {
                target: "dm6",
                query: "droSim1",
                distance: 0.22,
                real_size_mbp: 137.5,
            },
        ]
    }

    /// Human-readable pair name, e.g. `ce11-cb4`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.target, self.query)
    }

    /// Evolution parameters for this pair.
    pub fn evolution_params(&self) -> EvolutionParams {
        EvolutionParams::at_distance(self.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(distance: f64, len: usize, seed: u64) -> SyntheticPair {
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
    }

    #[test]
    fn lengths_are_plausible() {
        // Turnover insertions inflate the descendant relative to the
        // ancestor; at distance 0.2 expect up to ~40%.
        let p = pair(0.2, 20_000, 1);
        for lin in [&p.target, &p.query] {
            let ratio = lin.sequence.len() as f64 / 20_000.0;
            assert!((0.8..1.6).contains(&ratio), "length ratio {ratio}");
        }
    }

    #[test]
    fn coordinate_maps_are_consistent() {
        let p = pair(0.3, 10_000, 2);
        for lin in [&p.target, &p.query] {
            assert_eq!(lin.coordinates.ancestor_len(), 10_000);
            assert_eq!(lin.coordinates.descendant_len(), lin.sequence.len());
            // Surviving bases must be most of the genome at this distance.
            assert!(lin.coordinates.surviving() > 8_000);
        }
    }

    #[test]
    fn identity_decreases_with_distance() {
        let close = pair(0.05, 20_000, 3);
        let far = pair(0.6, 20_000, 3);
        let identity = |p: &SyntheticPair| {
            let pairs = p.orthologous_pairs();
            let matches = pairs
                .iter()
                .filter(|&&(t, q)| p.target.sequence[t] == p.query.sequence[q])
                .count();
            matches as f64 / pairs.len() as f64
        };
        let id_close = identity(&close);
        let id_far = identity(&far);
        assert!(id_close > 0.9, "close identity {id_close}");
        assert!(id_far < id_close - 0.2, "far {id_far} vs close {id_close}");
    }

    #[test]
    fn conserved_elements_evolve_slower() {
        let p = pair(0.5, 50_000, 4);
        let pairs = p.orthologous_pairs();
        // Build reverse lookup: target position -> inside conserved?
        let mut cons = vec![false; p.target.sequence.len()];
        for iv in &p.target.conserved {
            for pos in iv.range() {
                if pos < cons.len() {
                    cons[pos] = true;
                }
            }
        }
        let (mut m_in, mut n_in, mut m_out, mut n_out) = (0u64, 0u64, 0u64, 0u64);
        for &(t, q) in &pairs {
            let is_match = p.target.sequence[t] == p.query.sequence[q];
            if cons[t] {
                n_in += 1;
                m_in += is_match as u64;
            } else {
                n_out += 1;
                m_out += is_match as u64;
            }
        }
        let id_in = m_in as f64 / n_in.max(1) as f64;
        let id_out = m_out as f64 / n_out.max(1) as f64;
        assert!(
            id_in > id_out + 0.05,
            "conserved identity {id_in} vs background {id_out}"
        );
    }

    #[test]
    fn transition_bias_present() {
        let p = pair(0.4, 50_000, 5);
        let (mut ts, mut tv) = (0u64, 0u64);
        for &(t, q) in &p.orthologous_pairs() {
            let (a, b) = (p.target.sequence[t], p.query.sequence[q]);
            if a.is_transition(b) {
                ts += 1;
            } else if a.is_transversion(b) {
                tv += 1;
            }
        }
        assert!(ts > tv, "transitions {ts} should outnumber transversions {tv}");
    }

    #[test]
    fn ungapped_block_length_shrinks_with_distance() {
        // The Fig. 2 property: mean distance between indels in the true
        // alignment shrinks as distance grows.
        let block_mean = |p: &SyntheticPair| {
            let pairs = p.orthologous_pairs();
            let mut blocks = Vec::new();
            let mut cur = 1usize;
            for w in pairs.windows(2) {
                let ((t0, q0), (t1, q1)) = (w[0], w[1]);
                if t1 == t0 + 1 && q1 == q0 + 1 {
                    cur += 1;
                } else {
                    blocks.push(cur);
                    cur = 1;
                }
            }
            blocks.push(cur);
            blocks.iter().sum::<usize>() as f64 / blocks.len() as f64
        };
        let close = pair(0.1, 60_000, 6);
        let far = pair(0.6, 60_000, 6);
        let (bc, bf) = (block_mean(&close), block_mean(&far));
        assert!(bc > 2.0 * bf, "close blocks {bc} vs far {bf}");
    }

    #[test]
    fn paper_pairs_ordered_by_table() {
        let pairs = SpeciesPair::paper_pairs();
        assert_eq!(pairs[0].name(), "ce11-cb4");
        assert_eq!(pairs[3].name(), "dm6-droSim1");
        // Distance ordering matches Fig. 8: droSim closest, ce-cb farthest.
        assert!(pairs[0].distance > pairs[1].distance);
        assert!(pairs[1].distance > pairs[2].distance);
        assert!(pairs[2].distance > pairs[3].distance);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = pair(0.2, 5_000, 42);
        let b = pair(0.2, 5_000, 42);
        assert_eq!(a.target.sequence, b.target.sequence);
        assert_eq!(a.query.sequence, b.query.sequence);
    }
}
