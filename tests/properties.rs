//! Cross-kernel property tests: BSW symmetry, BSW vs full Smith-Waterman,
//! CIGAR length round-trips, and intra-pair shard algebra.
//!
//! These pin the algebraic invariants the pipeline silently relies on:
//! the banded filter is symmetric under query/reference swap (the
//! Darwin-WGA matrix is symmetric and gap penalties are strand-agnostic),
//! a banded maximum can never beat the unbanded optimum, every CIGAR
//! a kernel emits consumes exactly the aligned spans it claims, D-SOFT
//! binning over chunk-aligned shards merges to exactly the whole-query
//! result for *any* cut set, and shard scheduling never changes what the
//! pipeline outputs.

use darwin_wga::align::banded::banded_smith_waterman;
use darwin_wga::align::bsw_fast::{banded_smith_waterman_wavefront, WavefrontScratch};
use darwin_wga::align::cigar::{AlignOp, Cigar};
use darwin_wga::align::nw::needleman_wunsch;
use darwin_wga::align::sw::smith_waterman;
use darwin_wga::align::xdrop::xdrop_tile;
use darwin_wga::core::config::WgaParams;
use darwin_wga::core::parallel::run_parallel;
use darwin_wga::core::pipeline::WgaPipeline;
use darwin_wga::seed::dsoft::{dsoft_seeds, dsoft_seeds_range, merge_dsoft_results, DsoftParams, DsoftResult};
use darwin_wga::seed::{SeedPattern, SeedTable};
use darwin_wga::genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use proptest::prelude::*;

fn dna_strategy(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0u8..4, min..max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// A base sequence plus a mutated copy (substitutions and indels).
fn related_pair() -> impl Strategy<Value = (Sequence, Sequence)> {
    (dna_strategy(10, 240), any::<u64>()).prop_map(|(s, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Sequence::new();
        for b in s.iter() {
            match rng.gen_range(0..16) {
                0 => {}
                1 => {
                    q.push(Base::from_code(rng.gen_range(0..4)));
                    q.push(b);
                }
                2 => q.push(Base::from_code(rng.gen_range(0..4))),
                _ => q.push(b),
            }
        }
        (s, q)
    })
}

fn scoring() -> (SubstitutionMatrix, GapPenalties) {
    (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bsw_is_symmetric_under_sequence_swap((t, q) in related_pair(), band in 1usize..80) {
        // The Table IIa matrix is symmetric and gap penalties apply
        // identically to either sequence, and the band |i-j| <= B is a
        // symmetric region — so swapping target and query transposes the
        // DP matrix without changing its values: the maximum score and
        // the number of banded cells are invariant. (The argmax *cell*
        // may differ under ties: row-major order is not transpose-
        // invariant.)
        let (w, g) = scoring();
        let fwd = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        let rev = banded_smith_waterman(q.as_slice(), t.as_slice(), &w, &g, band);
        prop_assert_eq!(fwd.max_score, rev.max_score);
        prop_assert_eq!(fwd.cells, rev.cells);
        // The swapped argmax must attain the same maximum in the
        // transposed matrix; spot-check via the wavefront engine too.
        let mut scratch = WavefrontScratch::new();
        let wf_rev = banded_smith_waterman_wavefront(
            q.as_slice(), t.as_slice(), &w, &g, band, &mut scratch);
        prop_assert_eq!(rev, wf_rev);
    }

    #[test]
    fn bsw_never_exceeds_full_smith_waterman((t, q) in related_pair(), band in 1usize..64) {
        // Banding only removes paths, so the banded maximum is a lower
        // bound on the full Gotoh local optimum — for both engines.
        let (w, g) = scoring();
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        prop_assert!(banded.max_score <= full.best_score,
            "banded {} > full {}", banded.max_score, full.best_score);
        let mut scratch = WavefrontScratch::new();
        let wf = banded_smith_waterman_wavefront(
            t.as_slice(), q.as_slice(), &w, &g, band, &mut scratch);
        prop_assert!(wf.max_score <= full.best_score);
        prop_assert_eq!(wf, banded);
    }

    #[test]
    fn sw_cigar_consumes_exactly_the_aligned_spans((t, q) in related_pair()) {
        let (w, g) = scoring();
        if let Some(a) = smith_waterman(t.as_slice(), q.as_slice(), &w, &g).alignment {
            prop_assert_eq!(a.cigar.target_len(), a.target_span());
            prop_assert_eq!(a.cigar.query_len(), a.query_span());
            prop_assert!(a.validate(&t, &q).is_ok());
        }
    }

    #[test]
    fn nw_cigar_consumes_both_sequences_completely((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert_eq!(r.cigar.target_len(), t.len());
        prop_assert_eq!(r.cigar.query_len(), q.len());
    }

    #[test]
    fn xdrop_cigar_consumes_exactly_the_reported_spans((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, 9430);
        prop_assert_eq!(r.cigar.target_len(), r.max_target);
        prop_assert_eq!(r.cigar.query_len(), r.max_query);
    }

    #[test]
    fn cigar_push_roundtrips_op_counts(ops in prop::collection::vec((0u8..4, 1u32..9), 0..24)) {
        // Building a CIGAR run-by-run preserves exactly the pushed ops
        // (merging adjacent equal ops changes representation, never
        // content): lengths, per-op counts and the op stream round-trip.
        let decode = |c: u8| match c {
            0 => AlignOp::Match,
            1 => AlignOp::Subst,
            2 => AlignOp::Insert,
            _ => AlignOp::Delete,
        };
        let mut cigar = Cigar::new();
        let mut expect_target = 0usize;
        let mut expect_query = 0usize;
        let mut expect_ops: Vec<AlignOp> = Vec::new();
        for &(code, count) in &ops {
            let op = decode(code);
            cigar.push(op, count);
            if op.consumes_target() { expect_target += count as usize; }
            if op.consumes_query() { expect_query += count as usize; }
            expect_ops.extend(std::iter::repeat_n(op, count as usize));
        }
        prop_assert_eq!(cigar.target_len(), expect_target);
        prop_assert_eq!(cigar.query_len(), expect_query);
        prop_assert_eq!(cigar.iter_ops().collect::<Vec<_>>(), expect_ops);
        // Adjacent runs are always merged: no two consecutive runs share
        // an op, so the text form is canonical.
        for pair in cigar.runs().windows(2) {
            prop_assert!(pair[0].0 != pair[1].0, "unmerged runs in {}", cigar);
        }
        // And a rebuilt copy from the op stream is identical.
        let mut rebuilt = Cigar::new();
        for op in cigar.iter_ops() {
            rebuilt.push(op, 1);
        }
        prop_assert_eq!(rebuilt.runs(), cigar.runs());
    }
}

/// A longer related pair for whole-pipeline properties: big enough that
/// a 64-base shard floor yields many shards and most cases survive the
/// filter, small enough that 24 pipeline runs stay fast.
fn pipeline_pair() -> impl Strategy<Value = (Sequence, Sequence)> {
    (dna_strategy(500, 1200), any::<u64>()).prop_map(|(s, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Sequence::new();
        for b in s.iter() {
            match rng.gen_range(0..24) {
                0 => {}
                1 => {
                    q.push(Base::from_code(rng.gen_range(0..4)));
                    q.push(b);
                }
                2 => q.push(Base::from_code(rng.gen_range(0..4))),
                _ => q.push(b),
            }
        }
        (s, q)
    })
}

proptest! {
    // Pipeline-level properties run whole seed-filter-extend passes per
    // case; fewer cases keep the suite inside its time budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dsoft_shard_merge_equals_whole_query(
        (t, q) in pipeline_pair(),
        boundary_bits in any::<u64>(),
        chunk_pow in 4usize..8,
        stride in 1usize..4,
        threshold in 1u32..3,
        cap_repeats in any::<bool>(),
    ) {
        // Concatenated per-shard D-SOFT bins equal whole-pair bins for
        // *random* chunk-aligned shard cuts: every subset of chunk
        // boundaries (from the 64 random bits) is a valid cut set, and
        // the merged hits, counters, and first-hit selections must be
        // indistinguishable from the unsharded walk.
        let chunk = 1usize << chunk_pow;
        let params = DsoftParams {
            chunk_size: chunk,
            bin_size: chunk,
            threshold,
            transitions: false,
            query_stride: stride,
        };
        let max_occ = if cap_repeats { 4 } else { usize::MAX };
        let table = SeedTable::build(&t, &SeedPattern::exact(8), max_occ);
        let whole = dsoft_seeds(&table, &q, &params);
        // Cut set: chunk boundary i is a cut iff bit i is set; the ends
        // are always cuts. Adjacent cuts give empty shards — also legal.
        let mut cuts = vec![0usize];
        for i in 1..q.len().div_ceil(chunk) {
            if boundary_bits >> (i % 64) & 1 == 1 {
                cuts.push(i * chunk);
            }
        }
        cuts.push(q.len());
        let parts: Vec<DsoftResult> = cuts
            .windows(2)
            .map(|w| dsoft_seeds_range(&table, &q, &params, w[0]..w[1]))
            .collect();
        prop_assert_eq!(merge_dsoft_results(parts), whole,
            "cuts={:?} chunk={} stride={}", cuts, chunk, stride);
    }

    #[test]
    fn shard_scheduling_never_changes_pipeline_output(
        (t, q) in pipeline_pair(),
        threads in 2usize..9,
        shard_pow in 6usize..11,
    ) {
        // Tile scheduling order is free: however the self-scheduled
        // workers interleave shard claims (thread count and shard floor
        // both randomised), the committed chain output — alignments,
        // workload, counters — is exactly the serial pipeline's.
        let serial = WgaParams::darwin_wga();
        let sharded = serial.clone().with_shard_bases(1 << shard_pow);
        let reference = WgaPipeline::new(serial).run(&t, &q);
        let report = run_parallel(&sharded, &t, &q, threads);
        prop_assert_eq!(&reference.alignments, &report.alignments);
        prop_assert_eq!(&reference.workload, &report.workload);
        // spec_discard counts discarded speculative work and depends on
        // the thread schedule; the deterministic view must still match.
        prop_assert_eq!(
            reference.counters.deterministic_view(),
            report.counters.deterministic_view()
        );
    }
}
