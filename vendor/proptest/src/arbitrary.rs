//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Distribution, Rng, Standard};
use std::marker::PhantomData;

/// Strategy generating any value of `T` via the standard distribution.
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy producing uniformly random values of `T`.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}
