//! The `profile_report.json` artifact and its human rendering.
//!
//! The JSON is handwritten with a fixed field order and integer-only
//! values (shares and drift are centi-percent, durations are
//! microseconds, cycles are cycles), so the same trace always produces
//! byte-identical output — that is what lets CI diff reports across
//! commits. The human table is a rendering of the same numbers.

use crate::analyze::{Attribution, TopSpan};
use crate::drift::Drift;
use crate::trace::TraceFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the report layout itself (bump on field changes).
pub const PROFILE_SCHEMA: u64 = 1;

/// Everything `wga profile report` derives from one trace.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Schema the trace declared.
    pub trace_schema: u64,
    /// Total span lines in the trace.
    pub total_spans: u64,
    /// Funnel counters, by wire name.
    pub counters: BTreeMap<String, u64>,
    /// Per-stage / per-worker / critical-path attribution.
    pub attr: Attribution,
    /// Modeled-vs-measured drift scores.
    pub drift: Drift,
}

/// Formats centi-percent as `12.34%`.
pub fn fmt_centi(centi: u64) -> String {
    format!("{}.{:02}%", centi / 100, centi % 100)
}

fn push_top(out: &mut String, key: &str, entries: &[TopSpan]) {
    let _ = write!(out, "\"{key}\":[");
    for (i, t) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pair\":{},\"strand\":{},\"seq\":{},\"dur_us\":{},\"items\":{},\"cells\":{}}}",
            t.pair, t.strand, t.seq, t.dur_us, t.items, t.cells
        );
    }
    out.push(']');
}

impl ProfileReport {
    /// Builds the report for `trace`, keeping `top_k` entries in the
    /// slowest-span listings.
    pub fn build(trace: &TraceFile, top_k: usize) -> ProfileReport {
        ProfileReport {
            trace_schema: trace.schema,
            total_spans: trace.spans.len() as u64,
            counters: trace.counters.clone(),
            attr: Attribution::compute(trace, top_k),
            drift: Drift::compute(trace),
        }
    }

    /// Serialises the report: fixed field order, integers only, one
    /// top-level key per line. Byte-identical for identical traces.
    pub fn to_json(&self) -> String {
        let a = &self.attr;
        let d = &self.drift;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "\"profile_schema\":{PROFILE_SCHEMA},");
        let _ = writeln!(out, "\"trace_schema\":{},", self.trace_schema);
        let _ = writeln!(out, "\"total_spans\":{},", self.total_spans);
        let _ = writeln!(
            out,
            "\"workload\":{{\"seeds\":{},\"filter_tiles\":{},\"extension_tiles\":{},\"extension_cells\":{},\"extension_rows\":{}}},",
            d.workload.seeds,
            d.workload.filter_tiles,
            d.workload.extension_tiles,
            d.workload.extension_cells,
            d.workload.extension_rows
        );
        out.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\n");
        out.push_str("\"stages\":[");
        for (i, s) in a.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"spans\":{},\"total_us\":{},\"items\":{},\"cells\":{}}}",
                s.stage, s.spans, s.total_us, s.items, s.cells
            );
        }
        out.push_str("],\n");
        let _ = writeln!(
            out,
            "\"shares\":{{\"seed_centi\":{},\"filter_centi\":{},\"extend_centi\":{}}},",
            a.seed_share_centi, a.filter_share_centi, a.extend_share_centi
        );
        out.push_str("\"workers\":[");
        for (i, w) in a.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tid\":{},\"spans\":{},\"busy_us\":{},\"wait_us\":{},\"idle_us\":{}}}",
                w.tid, w.spans, w.busy_us, w.wait_us, w.idle_us
            );
        }
        out.push_str("],\n");
        // A pairless trace reports pair u64::MAX with all-zero legs.
        let (cp_pair, cp_seed, cp_filter, cp_extend, cp_total) = match &a.critical {
            Some(c) => (c.pair, c.seed_us, c.filter_us, c.extend_us, c.total_us),
            None => (u64::MAX, 0, 0, 0, 0),
        };
        let _ = writeln!(
            out,
            "\"critical_path\":{{\"pairs\":{},\"pair\":{cp_pair},\"seed_us\":{cp_seed},\"filter_us\":{cp_filter},\"extend_us\":{cp_extend},\"total_us\":{cp_total},\"wall_us\":{}}},",
            a.pairs, a.wall_us
        );
        push_top(&mut out, "top_filter_batches", &a.top_filter_batches);
        out.push_str(",\n");
        push_top(&mut out, "top_extend_tiles", &a.top_extend_tiles);
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "\"speculation\":{{\"spec_discard\":{},\"extended\":{},\"discard_centi\":{}}},",
            a.spec_discard, a.extended_tiles, a.discard_centi
        );
        let _ = writeln!(out, "\"faults\":{{\"spans\":{}}},", a.fault_spans);
        let _ = writeln!(
            out,
            "\"drift\":{{\"bsw\":{{\"present\":{},\"recorded_cycles\":{},\"replayed_cycles\":{},\"drift_centi\":{}}},\"gactx\":{{\"present\":{},\"recorded_cycles\":{},\"replayed_cycles\":{},\"drift_centi\":{}}},\"filter_time_offmedian_centi\":{},\"filter_cells_offmedian_centi\":{}}}",
            u64::from(d.bsw.present),
            d.bsw.recorded_cycles,
            d.bsw.replayed_cycles,
            d.bsw.drift_centi,
            u64::from(d.gactx.present),
            d.gactx.recorded_cycles,
            d.gactx.replayed_cycles,
            d.gactx.drift_centi,
            d.filter_time_offmedian_centi,
            d.filter_cells_offmedian_centi
        );
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable table `wga profile report` prints.
    pub fn render_table(&self) -> String {
        let a = &self.attr;
        let d = &self.drift;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(
            out,
            "trace: schema {}, {} spans, {} pairs, wall {} us",
            self.trace_schema, self.total_spans, a.pairs, a.wall_us
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>12} {:>12} {:>16}",
            "stage", "spans", "total_us", "items", "cells"
        );
        for s in &a.stages {
            if s.spans == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>7} {:>12} {:>12} {:>16}",
                s.stage, s.spans, s.total_us, s.items, s.cells
            );
        }
        let _ = writeln!(
            out,
            "shares: seed {}  filter {}  extend {}",
            fmt_centi(a.seed_share_centi),
            fmt_centi(a.filter_share_centi),
            fmt_centi(a.extend_share_centi)
        );
        for w in &a.workers {
            let _ = writeln!(
                out,
                "worker tid {:>3}: {:>5} spans, busy {} us, queue-wait {} us, idle {} us",
                w.tid, w.spans, w.busy_us, w.wait_us, w.idle_us
            );
        }
        if let Some(c) = &a.critical {
            let _ = writeln!(
                out,
                "critical path: pair {} — seed {} us + slowest filter batch {} us + extend {} us = {} us",
                c.pair, c.seed_us, c.filter_us, c.extend_us, c.total_us
            );
        }
        if !a.top_filter_batches.is_empty() {
            let _ = writeln!(out, "slowest filter batches:");
            for t in &a.top_filter_batches {
                let _ = writeln!(
                    out,
                    "  pair {:>4} strand {} seq {:>4}: {} us ({} items, {} cells)",
                    t.pair, t.strand, t.seq, t.dur_us, t.items, t.cells
                );
            }
        }
        if !a.top_extend_tiles.is_empty() {
            let _ = writeln!(out, "slowest extension tiles:");
            for t in &a.top_extend_tiles {
                let _ = writeln!(
                    out,
                    "  pair {:>4} strand {} seq {:>4}: {} us ({} tiles, {} cells)",
                    t.pair, t.strand, t.seq, t.dur_us, t.items, t.cells
                );
            }
        }
        let _ = writeln!(
            out,
            "speculation: {} discarded vs {} committed extensions ({} of extension work)",
            a.spec_discard,
            a.extended_tiles,
            fmt_centi(a.discard_centi)
        );
        if a.fault_spans > 0 {
            let _ = writeln!(out, "faults: {} injected-fault spans", a.fault_spans);
        }
        for (name, s) in [("bsw", &d.bsw), ("gactx", &d.gactx)] {
            if s.present {
                let _ = writeln!(
                    out,
                    "drift {name}: recorded {} cycles, replayed {} cycles — {}",
                    s.recorded_cycles,
                    s.replayed_cycles,
                    fmt_centi(s.drift_centi)
                );
            } else {
                let _ = writeln!(out, "drift {name}: no hwsim span in trace");
            }
        }
        let _ = writeln!(
            out,
            "filter shape: off-median time {}  off-median cells {}",
            fmt_centi(d.filter_time_offmedian_centi),
            fmt_centi(d.filter_cells_offmedian_centi)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"schema\":2}\n",
        "{\"span\":\"seed\",\"pair\":0,\"strand\":0,\"seq\":0,\"start_us\":0,\"dur_us\":10,\"items\":3,\"cells\":100,\"tid\":1,\"id\":5,\"parent\":0}\n",
        "{\"span\":\"filter.batch\",\"pair\":0,\"strand\":0,\"seq\":0,\"start_us\":10,\"dur_us\":20,\"items\":4,\"cells\":400,\"tid\":1,\"id\":6,\"parent\":0}\n",
        "{\"counter\":\"filter.tiles\",\"value\":4}\n",
        "{\"counter\":\"pairs.done\",\"value\":1}\n",
    );

    #[test]
    fn json_is_byte_stable_and_integer_only() {
        let t = TraceFile::parse(TRACE).unwrap();
        let r1 = ProfileReport::build(&t, 5).to_json();
        let r2 = ProfileReport::build(&TraceFile::parse(TRACE).unwrap(), 5).to_json();
        assert_eq!(r1, r2, "same trace must yield byte-identical reports");
        // Integer-only: no digit.digit anywhere (stage names like
        // "seed.table" legitimately contain dots between letters).
        let bytes = r1.as_bytes();
        for i in 1..bytes.len().saturating_sub(1) {
            if bytes[i] == b'.' {
                assert!(
                    !(bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()),
                    "float-looking value in report JSON near byte {i}"
                );
            }
        }
        assert!(r1.contains("\"profile_schema\":1"));
        assert!(r1.contains("\"trace_schema\":2"));
        // Valid JSON by the crate's own parser (single document).
        let joined = r1.replace('\n', "");
        wga_core::journal::json::parse(&joined).expect("report is valid JSON");
    }

    #[test]
    fn table_mentions_key_sections() {
        let t = TraceFile::parse(TRACE).unwrap();
        let table = ProfileReport::build(&t, 5).render_table();
        assert!(table.contains("shares:"));
        assert!(table.contains("drift bsw: no hwsim span in trace"));
        assert!(table.contains("filter.batch"));
    }

    #[test]
    fn centi_formatting_is_fixed_width_fraction() {
        assert_eq!(fmt_centi(0), "0.00%");
        assert_eq!(fmt_centi(5), "0.05%");
        assert_eq!(fmt_centi(1234), "12.34%");
        assert_eq!(fmt_centi(10_000), "100.00%");
    }
}
