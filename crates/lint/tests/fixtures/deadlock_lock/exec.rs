//! Deadlock fixture (held lock): one push under a live guard, one
//! correctly dropped first. Expected: 1 held-lock site, 0 cycles.

pub fn bad_deposit(cells: &Cells, out_q: &BoundedQueue<u32>) {
    let mut slot = cells.lock();
    *slot = 1;
    let _ = out_q.push(1); // guard `slot` still live: site
}

pub fn good_deposit(cells: &Cells, out_q: &BoundedQueue<u32>) {
    let mut slot = cells.lock();
    *slot = 1;
    drop(slot);
    let _ = out_q.push(1);
}
