//! Table V — runtimes, workload, and accelerator improvements.
//!
//! For each species pair we run the LASTZ-like baseline and the
//! Darwin-WGA pipeline in software, measure their wall-clock stage times
//! and workloads, then roll up:
//!
//! * LASTZ runtime — the baseline's measured software time;
//! * workload — seeds / filter tiles / extension tiles (paper columns);
//! * iso-sensitive software runtime — the gapped pipeline's measured
//!   software time (our BSW kernel plays the Parasail role);
//! * Darwin-WGA FPGA & ASIC runtimes — the `hwsim` cycle models fed with
//!   the measured workload;
//! * FPGA performance/$ and ASIC performance/W improvements over the
//!   iso-sensitive software, using the paper's prices and powers.
//!
//! Expected shape: iso-sensitive software is orders of magnitude slower
//! than LASTZ (the paper's ~200×); the FPGA recovers a 19–24× perf/$
//! improvement and the ASIC a ~1,500× perf/W improvement.
//!
//! Run with: `cargo run --release -p wga-bench --bin table5_performance`
//! Optional args: `[genome_len]` (default 80000).

use genome::evolve::SpeciesPair;
use hwsim::perf::{
    accelerated_runtime, perf_per_dollar_improvement, perf_per_watt_improvement, SoftwareThroughput,
};
use hwsim::platform::{AcceleratorConfig, CpuConfig};
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::WgaParams;

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(80_000);

    println!("Table V — runtime and workload comparison ({genome_len}-bp synthetic pairs)\n");
    println!(
        "{:<14} {:>9} | {:>9} {:>11} {:>9} | {:>10} {:>9} {:>9} | {:>9} {:>11}",
        "pair",
        "LASTZ(s)",
        "seeds",
        "filt.tiles",
        "ext.tiles",
        "iso-sw(s)",
        "FPGA(s)",
        "ASIC(s)",
        "perf/$",
        "perf/W"
    );

    let cpu = CpuConfig::c4_8xlarge();
    let fpga = AcceleratorConfig::fpga();
    let asic = AcceleratorConfig::asic();

    for (i, sp) in SpeciesPair::paper_pairs().iter().enumerate() {
        let pair = paper_pair(sp, genome_len, 2000 + i as u64);

        let lastz = run_and_measure(WgaParams::lastz_baseline(), &pair);
        let darwin = run_and_measure(WgaParams::darwin_wga(), &pair);

        let lastz_s = lastz.report.timings.total().as_secs_f64();
        let iso_sw_s = darwin.report.timings.total().as_secs_f64();
        let w = darwin.report.workload;

        // Software throughputs measured from this very run.
        let sw = SoftwareThroughput {
            seeds_per_second: w.seeds as f64
                / darwin.report.timings.seeding.as_secs_f64().max(1e-9),
            filter_tiles_per_second: w.filter_tiles as f64
                / darwin.report.timings.filtering.as_secs_f64().max(1e-9),
            ungapped_filters_per_second: 0.0,
            extension_tiles_per_second: w.extension_tiles as f64
                / darwin.report.timings.extension.as_secs_f64().max(1e-9),
        };

        let fpga_rt = accelerated_runtime(&w, &sw, &fpga).total_s();
        let asic_rt = accelerated_runtime(&w, &sw, &asic).total_s();
        let perf_dollar = perf_per_dollar_improvement(iso_sw_s, &cpu, fpga_rt, &fpga);
        let perf_watt = perf_per_watt_improvement(iso_sw_s, &cpu, asic_rt, &asic);

        println!(
            "{:<14} {:>9.2} | {:>9} {:>11} {:>9} | {:>10.2} {:>9.4} {:>9.4} | {:>8.1}x {:>10.0}x",
            sp.name(),
            lastz_s,
            w.seeds,
            w.filter_tiles,
            w.extension_tiles,
            iso_sw_s,
            fpga_rt,
            asic_rt,
            perf_dollar,
            perf_watt
        );
    }

    println!("\nNotes:");
    println!(" * 'LASTZ(s)' and 'iso-sw(s)' are measured single-thread software times on THIS");
    println!("   machine; the paper's absolute seconds used 36 threads on a c4.8xlarge.");
    println!(" * the filter-tile count dwarfs the extension-tile count — filtering dominates");
    println!("   WGA runtime (§III-A), which is why the paper accelerates that stage first.");
    println!(" * FPGA perf/$ uses $1.59/h (c4.8xlarge) vs $1.65/h (f1.2xlarge); ASIC perf/W");
    println!("   uses 215 W vs 43.34 W (Tables V & VI). Paper: 19–24x perf/$, ~1,500x perf/W.");

    // The headline software-only observation: gapped vs ungapped filter cost.
    println!("\nGapped-vs-ungapped software filter cost (the paper's '200x' §I claim) is");
    println!("measured directly by `cargo bench -p wga-bench --bench ungapped`.");
}
