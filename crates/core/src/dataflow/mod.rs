//! Streaming dataflow executor: decoupled seed → filter → extend stages.
//!
//! Darwin-WGA's hardware throughput comes from *decoupling* the pipeline
//! stages: D-SOFT hits stream through queues into the BSW filter arrays
//! and surviving tiles stream into the GACT-X arrays, so filtering and
//! extension overlap instead of running to a barrier (PAPER.md §IV).
//! This module is that architecture in software:
//!
//! * a **seeding producer** walks chromosome pairs in canonical order
//!   and emits per-(pair, strand) tile batches;
//! * a **filter worker pool** consumes batches through the shared
//!   [`crate::filter_engine::FilterContext`] (the BSW array analogue);
//! * an **extension worker pool** runs GACT-X per independent pair
//!   stream (the GACT-X array analogue) — the sequential anchor-
//!   absorption stage stays *within* a stream, so results are
//!   bit-identical to the barrier executor after the deterministic
//!   stream-ordered merge.
//!
//! The queues are bounded ([`queue::BoundedQueue`], capacity
//! `--queue-depth`), providing the same backpressure a fixed-depth
//! hardware FIFO does. Per-stage telemetry ([`StageMetrics`]) reports
//! queue occupancy, busy/idle time and items/cells processed — the
//! software equivalent of the paper's array-utilisation numbers.
//!
//! Select it with `--executor dataflow`; the stage-barrier driver
//! remains the default.

mod executor;
mod metrics;
mod queue;

pub use metrics::{DataflowMetrics, ExecutorMetrics, StageMetrics};
pub use queue::BoundedQueue;

pub(crate) use executor::execute;

/// Default bounded-queue capacity (`--queue-depth`).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Which execution engine drives an assembly-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ExecutorKind {
    /// Stage-barrier driver: the filter stage fans out per pair, seeding
    /// and extension run serially ([`crate::parallel`]).
    #[default]
    Barrier,
    /// Streaming executor: all three stages run concurrently over
    /// bounded queues.
    Dataflow,
}

impl ExecutorKind {
    /// Stable lower-case name, used in metrics JSON and CLI summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecutorKind::Barrier => "barrier",
            ExecutorKind::Dataflow => "dataflow",
        }
    }
}

impl std::str::FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecutorKind, String> {
        match s {
            "barrier" => Ok(ExecutorKind::Barrier),
            "dataflow" => Ok(ExecutorKind::Dataflow),
            other => Err(format!(
                "unknown executor '{other}' (expected 'barrier' or 'dataflow')"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterEngineKind, ResourceBudget, WgaParams};
    use crate::genome_pipeline::{align_assemblies_with, AlignOptions};
    use genome::assembly::Assembly;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn executor_kind_parses() -> Result<(), String> {
        assert_eq!("barrier".parse::<ExecutorKind>()?, ExecutorKind::Barrier);
        assert_eq!("dataflow".parse::<ExecutorKind>()?, ExecutorKind::Dataflow);
        Ok(())
    }

    #[test]
    fn executor_kind_from_str() {
        executor_kind_parses().unwrap();
        assert!("streaming".parse::<ExecutorKind>().is_err());
        assert_eq!(ExecutorKind::default(), ExecutorKind::Barrier);
        assert_eq!(ExecutorKind::Barrier.as_str(), "barrier");
        assert_eq!(ExecutorKind::Dataflow.as_str(), "dataflow");
    }

    fn assemblies(seed: u64, sizes: &[(usize, f64)]) -> (Assembly, Assembly) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut target = Assembly::new("t");
        let mut query = Assembly::new("q");
        for (i, &(len, dist)) in sizes.iter().enumerate() {
            let pair = SyntheticPair::generate(len, &EvolutionParams::at_distance(dist), &mut rng);
            target.push(format!("chr{i}T"), pair.target.sequence.clone());
            query.push(format!("chr{i}Q"), pair.query.sequence.clone());
        }
        (target, query)
    }

    fn run(
        params: &WgaParams,
        target: &Assembly,
        query: &Assembly,
        executor: ExecutorKind,
        threads: usize,
        queue_depth: usize,
    ) -> crate::genome_pipeline::AssemblyReport {
        align_assemblies_with(
            params,
            target,
            query,
            &AlignOptions {
                threads,
                executor,
                queue_depth,
                ..AlignOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn dataflow_matches_barrier_across_thread_counts() {
        let (target, query) = assemblies(101, &[(12_000, 0.2), (9_000, 0.3)]);
        let params = WgaParams::darwin_wga();
        let barrier = run(&params, &target, &query, ExecutorKind::Barrier, 1, 64);
        assert!(barrier.total_matches() > 0);
        for threads in [1, 2, 4] {
            for queue_depth in [1, 3, 64] {
                let dataflow = run(
                    &params,
                    &target,
                    &query,
                    ExecutorKind::Dataflow,
                    threads,
                    queue_depth,
                );
                assert_eq!(
                    barrier.canonical_text(),
                    dataflow.canonical_text(),
                    "threads={threads} queue_depth={queue_depth}"
                );
                assert_eq!(barrier.workload, dataflow.workload);
                let metrics = dataflow.stage_metrics.expect("dataflow sets metrics");
                assert_eq!(metrics.executor, ExecutorKind::Dataflow);
                assert_eq!(metrics.threads, threads);
                assert_eq!(metrics.queue_depth, queue_depth);
                assert_eq!(metrics.filtering.items, barrier.workload.filter_tiles);
                assert!(metrics.filtering.max_queue_occupancy <= queue_depth as u64);
            }
        }
        // Since the observability PR the barrier executor reports stage
        // metrics too, derived from its aggregate timings and counters.
        let bm = barrier.stage_metrics.expect("barrier sets metrics too");
        assert_eq!(bm.executor, ExecutorKind::Barrier);
        assert_eq!(bm.filtering.items, barrier.workload.filter_tiles);
        assert_eq!(bm.threads, 1);
    }

    #[test]
    fn dataflow_matches_barrier_with_budgets_and_both_strands() {
        let (target, query) = assemblies(202, &[(10_000, 0.25)]);
        let mut params = WgaParams::darwin_wga().with_budget(ResourceBudget {
            max_seed_hits: Some(40),
            max_filter_tiles: Some(60),
            max_extension_cells: Some(2_000_000),
            ..ResourceBudget::default()
        });
        params.both_strands = true;
        let barrier = run(&params, &target, &query, ExecutorKind::Barrier, 2, 64);
        let dataflow = run(&params, &target, &query, ExecutorKind::Dataflow, 3, 8);
        assert_eq!(barrier.canonical_text(), dataflow.canonical_text());
        assert!(dataflow.degraded_pairs() > 0, "budgets should trip");
    }

    #[test]
    fn dataflow_matches_barrier_with_scalar_engine() {
        let (target, query) = assemblies(303, &[(8_000, 0.2)]);
        let params = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Scalar);
        let barrier = run(&params, &target, &query, ExecutorKind::Barrier, 1, 64);
        let dataflow = run(&params, &target, &query, ExecutorKind::Dataflow, 2, 4);
        assert_eq!(barrier.canonical_text(), dataflow.canonical_text());
    }

    #[test]
    fn dataflow_handles_empty_and_unrelated_assemblies() {
        let params = WgaParams::darwin_wga();
        let empty = run(
            &params,
            &Assembly::new("a"),
            &Assembly::new("b"),
            ExecutorKind::Dataflow,
            2,
            4,
        );
        assert!(empty.alignments.is_empty());
        assert!(empty.pairs.is_empty());
        assert!(empty.stage_metrics.is_some());

        // Unrelated sequences: zero hits on some pairs exercises the
        // zero-batch fast path (pair goes straight to extension).
        let mut rng = StdRng::seed_from_u64(404);
        let mut target = Assembly::new("t");
        let mut query = Assembly::new("q");
        target.push(
            "chrT",
            genome::markov::MarkovModel::genome_like().generate(6_000, &mut rng),
        );
        query.push(
            "chrQ",
            genome::markov::MarkovModel::genome_like().generate(6_000, &mut rng),
        );
        let barrier = run(&params, &target, &query, ExecutorKind::Barrier, 1, 64);
        let dataflow = run(&params, &target, &query, ExecutorKind::Dataflow, 2, 2);
        assert_eq!(barrier.canonical_text(), dataflow.canonical_text());
        assert_eq!(dataflow.pairs.len(), 1);
    }

    #[test]
    fn zero_queue_depth_is_a_config_error() {
        let (target, query) = assemblies(505, &[(4_000, 0.1)]);
        let err = align_assemblies_with(
            &WgaParams::darwin_wga(),
            &target,
            &query,
            &AlignOptions {
                threads: 2,
                executor: ExecutorKind::Dataflow,
                queue_depth: 0,
                ..AlignOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::WgaError::Config(_)), "{err}");
        // The barrier executor ignores queue_depth entirely.
        let ok = align_assemblies_with(
            &WgaParams::darwin_wga(),
            &target,
            &query,
            &AlignOptions {
                threads: 1,
                executor: ExecutorKind::Barrier,
                queue_depth: 0,
                ..AlignOptions::default()
            },
        );
        assert!(ok.is_ok());
    }

    /// CI deadlock-guard entry point: thread count comes from
    /// `WGA_DATAFLOW_THREADS` (default 2) so the same test runs the
    /// suite's queue machinery at different pool sizes under `timeout`.
    #[test]
    fn dataflow_stress_env_threads() {
        let threads: usize = std::env::var("WGA_DATAFLOW_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        let (target, query) = assemblies(606, &[(9_000, 0.2), (7_000, 0.35), (5_000, 0.15)]);
        let params = WgaParams::darwin_wga();
        let barrier = run(&params, &target, &query, ExecutorKind::Barrier, 1, 64);
        // Tiny queues maximise backpressure stalls — the deadlock-prone
        // regime.
        let dataflow = run(&params, &target, &query, ExecutorKind::Dataflow, threads, 1);
        assert_eq!(barrier.canonical_text(), dataflow.canonical_text());
    }

    #[test]
    fn dataflow_checkpoint_resume_is_byte_identical() {
        let (target, query) = assemblies(707, &[(9_000, 0.2), (7_000, 0.3)]);
        let params = WgaParams::darwin_wga();
        let path = std::env::temp_dir().join(format!(
            "wga-dataflow-ckpt-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let opts = AlignOptions {
            threads: 3,
            checkpoint: Some(path.clone()),
            executor: ExecutorKind::Dataflow,
            queue_depth: 4,
            ..AlignOptions::default()
        };
        let first = align_assemblies_with(&params, &target, &query, &opts).unwrap();
        assert_eq!(first.resumed_pairs, 0);
        let second = align_assemblies_with(&params, &target, &query, &opts).unwrap();
        assert_eq!(second.resumed_pairs, 4);
        assert_eq!(first.canonical_text(), second.canonical_text());
        // Cross-executor resume: a barrier run picks up the dataflow
        // journal (the executor is not part of the params fingerprint).
        let barrier_opts = AlignOptions {
            threads: 1,
            checkpoint: Some(path.clone()),
            ..AlignOptions::default()
        };
        let third = align_assemblies_with(&params, &target, &query, &barrier_opts).unwrap();
        assert_eq!(third.resumed_pairs, 4);
        assert_eq!(first.canonical_text(), third.canonical_text());
        let _ = std::fs::remove_file(&path);
    }
}
