//! Translated (TBLASTX-like) sequence search.
//!
//! The paper's §IX names "TBLASTX-like search in the amino acid space for
//! protein-coding genes" as Darwin-WGA's next extension, and §V-E uses
//! TBLASTX as the oracle defining which exons a whole-genome aligner
//! *should* find. This crate implements that capability from scratch:
//! the standard genetic code and six-frame translation ([`amino`]),
//! BLOSUM62 scoring ([`blosum`]), and a seeded, X-drop-extended
//! translated search ([`search`]).
//!
//! Protein space is far more conserved than DNA space for coding
//! sequence — synonymous third-codon positions diverge freely without
//! touching the peptide — so translated search recovers coding homology
//! that DNA-level alignment loses at distance.
//!
//! # Quick start
//!
//! ```
//! use genome::Sequence;
//! use protein::amino::{translate, Frame};
//!
//! let dna: Sequence = "ATGGCATGGTAA".parse()?;
//! let peptide = translate(&dna, Frame { offset: 0, reverse: false });
//! let text: String = peptide.peptide.iter().map(|a| a.to_char()).collect();
//! assert_eq!(text, "MAW*");
//! # Ok::<(), genome::ParseBaseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amino;
pub mod blosum;
pub mod search;

pub use amino::{translate, AminoAcid, Frame};
pub use blosum::ProteinMatrix;
pub use search::{tblastx, TblastxParams, TranslatedHit};
