//! Streaming, schema-validated reader for `--trace-out` JSONL.
//!
//! One pass over the input, one [`SpanRec`] per span line; counter and
//! histogram lines land in sorted maps. Validation is strict — every
//! line must be the schema header, a span, a counter or a histogram,
//! names must come from the observability layer's taxonomy, integer
//! fields must be present and non-negative, and histogram buckets must
//! be ascending and sum to their totals — so everything downstream
//! (attribution, drift, the report) can assume a well-formed timeline.

use crate::ProfileError;
use std::collections::BTreeMap;
use std::io::BufRead;
use wga_core::journal::json::{self, Json};
use wga_core::obs::{Counter, HistKind, Log2Histogram, SpanName, TRACE_SCHEMA};

/// One span line of the trace. Mirrors `wga_core::obs::Span` with the
/// name as a string and the schema-2 fields defaulted for schema-1
/// traces (`tid`/`id`/`parent` = 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Wire name (`seed`, `filter.batch`, `extend.tile`, …).
    pub name: String,
    /// Pair id, `u64::MAX` for pairless spans.
    pub pair: u64,
    /// Strand code (0 fwd, 1 rev, 2 n/a).
    pub strand: u8,
    /// Sibling sequence number (batch index, anchor index, queue code…).
    pub seq: u64,
    /// Microseconds since the observation epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Work items covered.
    pub items: u64,
    /// DP cells covered (or modeled cycles for `hwsim.*` spans).
    pub cells: u64,
    /// Recording worker thread (schema 2; 0 in schema 1).
    pub tid: u64,
    /// Process-unique span id (schema 2; 0 in schema 1).
    pub id: u64,
    /// Enclosing span id, 0 for top-level spans.
    pub parent: u64,
}

impl SpanRec {
    /// End of the span on the trace clock.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// One parsed histogram line: total plus the sparse ascending buckets,
/// also materialised as a [`Log2Histogram`] for percentile queries.
#[derive(Debug)]
pub struct HistRec {
    /// Declared sample total (equals the bucket sum — validated).
    pub total: u64,
    /// Sparse `(bucket, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// The same distribution as a queryable histogram.
    pub hist: Log2Histogram,
}

/// A fully parsed and validated trace.
#[derive(Debug)]
pub struct TraceFile {
    /// Schema the trace declared (1 when headerless).
    pub schema: u64,
    /// Every span, in file order (the writer's stable timeline order).
    pub spans: Vec<SpanRec>,
    /// Funnel counters by wire name; known counters missing from the
    /// trace (older schemas) are present with value 0.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by wire name.
    pub hists: BTreeMap<String, HistRec>,
}

fn req_int(doc: &Json, key: &str, line: usize) -> Result<u64, ProfileError> {
    let v = doc
        .get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| ProfileError::at(line, format!("missing integer field {key:?}")))?;
    u64::try_from(v).map_err(|_| ProfileError::at(line, format!("field {key:?} out of range: {v}")))
}

fn opt_int(doc: &Json, key: &str, line: usize) -> Result<u64, ProfileError> {
    match doc.get(key) {
        None => Ok(0),
        Some(v) => {
            let v = v
                .as_int()
                .ok_or_else(|| ProfileError::at(line, format!("field {key:?} is not an integer")))?;
            u64::try_from(v)
                .map_err(|_| ProfileError::at(line, format!("field {key:?} out of range: {v}")))
        }
    }
}

impl TraceFile {
    /// Reads and validates a whole trace from `reader`.
    pub fn read<R: BufRead>(reader: R) -> Result<TraceFile, ProfileError> {
        let known_spans: Vec<&str> = SpanName::ALL.iter().map(|n| n.as_str()).collect();
        let known_counters: Vec<&str> = Counter::ALL.iter().map(|c| c.as_str()).collect();
        let known_hists: Vec<&str> = HistKind::ALL.iter().map(|h| h.as_str()).collect();

        let mut schema: Option<u64> = None;
        let mut spans = Vec::new();
        let mut counters: BTreeMap<String, u64> = known_counters
            .iter()
            .map(|c| (c.to_string(), 0u64))
            .collect();
        let mut seen_counters: BTreeMap<String, ()> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistRec> = BTreeMap::new();

        for (idx, line) in reader.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.map_err(|e| ProfileError::at(lineno, format!("read failed: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            let doc = json::parse(&line)
                .map_err(|e| ProfileError::at(lineno, format!("invalid JSON: {e}")))?;

            if let Some(v) = doc.get("schema") {
                if lineno != 1 {
                    return Err(ProfileError::at(lineno, "schema header must be the first line"));
                }
                let declared = v
                    .as_int()
                    .and_then(|n| u64::try_from(n).ok())
                    .ok_or_else(|| ProfileError::at(lineno, "schema version is not an integer"))?;
                if declared == 0 || declared > TRACE_SCHEMA {
                    return Err(ProfileError::at(
                        lineno,
                        format!(
                            "unsupported trace schema {declared} (this reader supports 1..={TRACE_SCHEMA})"
                        ),
                    ));
                }
                schema = Some(declared);
            } else if let Some(name) = doc.get("span").and_then(Json::as_str) {
                if !known_spans.contains(&name) {
                    return Err(ProfileError::at(lineno, format!("unknown span name {name:?}")));
                }
                let strand = req_int(&doc, "strand", lineno)?;
                if strand > 2 {
                    return Err(ProfileError::at(lineno, format!("strand code out of range: {strand}")));
                }
                spans.push(SpanRec {
                    name: name.to_string(),
                    pair: req_int(&doc, "pair", lineno)?,
                    strand: strand as u8,
                    seq: req_int(&doc, "seq", lineno)?,
                    start_us: req_int(&doc, "start_us", lineno)?,
                    dur_us: req_int(&doc, "dur_us", lineno)?,
                    items: req_int(&doc, "items", lineno)?,
                    cells: req_int(&doc, "cells", lineno)?,
                    tid: opt_int(&doc, "tid", lineno)?,
                    id: opt_int(&doc, "id", lineno)?,
                    parent: opt_int(&doc, "parent", lineno)?,
                });
            } else if let Some(name) = doc.get("counter").and_then(Json::as_str) {
                if !known_counters.contains(&name) {
                    return Err(ProfileError::at(lineno, format!("unknown counter {name:?}")));
                }
                if seen_counters.insert(name.to_string(), ()).is_some() {
                    return Err(ProfileError::at(lineno, format!("duplicate counter line {name:?}")));
                }
                let value = req_int(&doc, "value", lineno)?;
                counters.insert(name.to_string(), value);
            } else if let Some(name) = doc.get("hist").and_then(Json::as_str) {
                if !known_hists.contains(&name) {
                    return Err(ProfileError::at(lineno, format!("unknown histogram {name:?}")));
                }
                if hists.contains_key(name) {
                    return Err(ProfileError::at(lineno, format!("duplicate histogram line {name:?}")));
                }
                let total = req_int(&doc, "total", lineno)?;
                let entries = doc
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProfileError::at(lineno, "histogram without buckets array"))?;
                let mut buckets = Vec::with_capacity(entries.len());
                let hist = Log2Histogram::new();
                let mut sum = 0u64;
                let mut last: Option<usize> = None;
                for entry in entries {
                    let pair = entry
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| ProfileError::at(lineno, "bucket entry is not [index, count]"))?;
                    let bucket = pair
                        .first()
                        .and_then(Json::as_int)
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(|| ProfileError::at(lineno, "bucket index is not an integer"))?;
                    let count = pair
                        .get(1)
                        .and_then(Json::as_int)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| ProfileError::at(lineno, "bucket count is not an integer"))?;
                    if count == 0 {
                        return Err(ProfileError::at(lineno, "empty buckets must be omitted"));
                    }
                    if last.is_some_and(|l| bucket <= l) {
                        return Err(ProfileError::at(lineno, "buckets not strictly ascending"));
                    }
                    last = Some(bucket);
                    sum = sum.saturating_add(count);
                    hist.record_bucket(bucket, count);
                    buckets.push((bucket, count));
                }
                if sum != total {
                    return Err(ProfileError::at(
                        lineno,
                        format!("bucket counts sum to {sum}, total says {total}"),
                    ));
                }
                hists.insert(name.to_string(), HistRec { total, buckets, hist });
            } else {
                return Err(ProfileError::at(
                    lineno,
                    "line is neither a schema header, a span, a counter, nor a histogram",
                ));
            }
        }

        Ok(TraceFile {
            schema: schema.unwrap_or(1),
            spans,
            counters,
            hists,
        })
    }

    /// Parses a trace held in memory.
    pub fn parse(text: &str) -> Result<TraceFile, ProfileError> {
        TraceFile::read(text.as_bytes())
    }

    /// Counter value by wire name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Every span with the given wire name, in file order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"{"schema":2}
{"span":"seed","pair":0,"strand":0,"seq":0,"start_us":10,"dur_us":5,"items":3,"cells":40,"tid":1,"id":1099511627777,"parent":0}
{"counter":"pairs.done","value":1}
{"hist":"filter.tile_ns","total":3,"buckets":[[2,1],[5,2]]}
"#;

    #[test]
    fn parses_schema_2_lines() {
        let t = TraceFile::parse(MINI).expect("parses");
        assert_eq!(t.schema, 2);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].cells, 40);
        assert_eq!(t.spans[0].tid, 1);
        assert_eq!(t.counter("pairs.done"), 1);
        assert_eq!(t.counter("filter.tiles"), 0, "missing counters default to 0");
        assert_eq!(t.hists["filter.tile_ns"].total, 3);
        assert_eq!(t.hists["filter.tile_ns"].hist.percentile_bucket(1000), Some(5));
    }

    #[test]
    fn headerless_trace_is_schema_1() {
        let body = MINI.lines().skip(1).collect::<Vec<_>>().join("\n");
        let t = TraceFile::parse(&body).expect("parses");
        assert_eq!(t.schema, 1);
    }

    #[test]
    fn schema_1_spans_default_new_fields() {
        let t = TraceFile::parse(
            r#"{"span":"seed","pair":0,"strand":0,"seq":0,"start_us":1,"dur_us":2,"items":3,"cells":4}"#,
        )
        .expect("parses");
        assert_eq!(t.spans[0].tid, 0);
        assert_eq!(t.spans[0].id, 0);
        assert_eq!(t.spans[0].parent, 0);
    }

    #[test]
    fn unknown_major_is_rejected() {
        let err = TraceFile::parse("{\"schema\":99}\n").unwrap_err();
        assert!(err.msg.contains("unsupported trace schema 99"), "{err}");
    }

    #[test]
    fn late_schema_header_is_rejected() {
        let input = format!("{}{}", MINI.lines().nth(1).map(|l| format!("{l}\n")).unwrap_or_default(), "{\"schema\":2}\n");
        let err = TraceFile::parse(&input).unwrap_err();
        assert!(err.msg.contains("first line"), "{err}");
    }

    #[test]
    fn junk_lines_are_rejected() {
        assert!(TraceFile::parse("{\"other\":1}\n").is_err());
        assert!(TraceFile::parse("not json\n").is_err());
        let err = TraceFile::parse(
            r#"{"span":"bogus","pair":0,"strand":0,"seq":0,"start_us":1,"dur_us":2,"items":3,"cells":4}"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown span name"), "{err}");
    }

    #[test]
    fn bad_histograms_are_rejected() {
        let descending = r#"{"hist":"filter.tile_ns","total":2,"buckets":[[5,1],[2,1]]}"#;
        assert!(TraceFile::parse(descending).is_err());
        let bad_total = r#"{"hist":"filter.tile_ns","total":5,"buckets":[[2,1]]}"#;
        assert!(TraceFile::parse(bad_total).is_err());
    }
}
