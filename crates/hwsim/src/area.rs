//! ASIC area/power breakdown (Table IV).
//!
//! The paper's place-and-route produced per-component area and power at
//! TSMC 40 nm for the default provisioning (64 BSW arrays, 12 GACT-X
//! arrays of 64 PEs, 16 KB traceback SRAM per PE, 4 DDR4 channels). We
//! take those published constants per unit and scale linearly when the
//! provisioning changes, which is how the paper itself sizes the chip
//! ("scaled the area and power estimates accordingly").

use serde::{Deserialize, Serialize};

/// Published Table IV constants (per component, at the default config).
mod constants {
    /// BSW logic: 64 × 64-PE arrays → 16.6 mm², 25.6 W.
    pub const BSW_AREA_PER_PE_MM2: f64 = 16.6 / (64.0 * 64.0);
    pub const BSW_POWER_PER_PE_W: f64 = 25.6 / (64.0 * 64.0);
    /// GACT-X logic: 12 × 64-PE arrays → 4.2 mm², 6.72 W.
    pub const GACTX_AREA_PER_PE_MM2: f64 = 4.2 / (12.0 * 64.0);
    pub const GACTX_POWER_PER_PE_W: f64 = 6.72 / (12.0 * 64.0);
    /// Traceback SRAM: 12 MB → 15.12 mm², 7.92 W.
    pub const SRAM_AREA_PER_KB_MM2: f64 = 15.12 / (12.0 * 64.0 * 16.0);
    pub const SRAM_POWER_PER_KB_W: f64 = 7.92 / (12.0 * 64.0 * 16.0);
    /// DRAM: 4 × DDR4-2400 channels → 3.10 W (off-chip, no die area).
    pub const DRAM_POWER_PER_CHANNEL_W: f64 = 3.10 / 4.0;
}

/// One row of the breakdown table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Component name.
    pub component: String,
    /// Configuration description.
    pub configuration: String,
    /// Die area in mm² (0 for off-chip components).
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

/// ASIC provisioning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsicProvisioning {
    /// Number of BSW arrays.
    pub bsw_arrays: usize,
    /// PEs per BSW array.
    pub bsw_pes: usize,
    /// Number of GACT-X arrays.
    pub gactx_arrays: usize,
    /// PEs per GACT-X array.
    pub gactx_pes: usize,
    /// Traceback SRAM per GACT-X PE, KB.
    pub traceback_kb_per_pe: usize,
    /// DDR4 channels.
    pub dram_channels: usize,
}

impl AsicProvisioning {
    /// The paper's chip (Table IV).
    pub fn darwin_wga() -> AsicProvisioning {
        AsicProvisioning {
            bsw_arrays: 64,
            bsw_pes: 64,
            gactx_arrays: 12,
            gactx_pes: 64,
            traceback_kb_per_pe: 16,
            dram_channels: 4,
        }
    }

    /// Full per-component breakdown, in Table IV order.
    pub fn breakdown(&self) -> Vec<ComponentRow> {
        use constants::*;
        let bsw_pes = (self.bsw_arrays * self.bsw_pes) as f64;
        let gactx_pes = (self.gactx_arrays * self.gactx_pes) as f64;
        let sram_kb = gactx_pes * self.traceback_kb_per_pe as f64;
        vec![
            ComponentRow {
                component: "BSW Logic".into(),
                configuration: format!("{} × ({}PE array)", self.bsw_arrays, self.bsw_pes),
                area_mm2: bsw_pes * BSW_AREA_PER_PE_MM2,
                power_w: bsw_pes * BSW_POWER_PER_PE_W,
            },
            ComponentRow {
                component: "GACT-X Logic".into(),
                configuration: format!("{} × ({}PE array)", self.gactx_arrays, self.gactx_pes),
                area_mm2: gactx_pes * GACTX_AREA_PER_PE_MM2,
                power_w: gactx_pes * GACTX_POWER_PER_PE_W,
            },
            ComponentRow {
                component: "Traceback SRAM".into(),
                configuration: format!(
                    "{} × ({}PE × {}KB/PE)",
                    self.gactx_arrays, self.gactx_pes, self.traceback_kb_per_pe
                ),
                area_mm2: sram_kb * SRAM_AREA_PER_KB_MM2,
                power_w: sram_kb * SRAM_POWER_PER_KB_W,
            },
            ComponentRow {
                component: "DRAM".into(),
                configuration: format!("{} × DDR4-2400", self.dram_channels),
                area_mm2: 0.0,
                power_w: self.dram_channels as f64 * DRAM_POWER_PER_CHANNEL_W,
            },
        ]
    }

    /// Total die area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.breakdown().iter().map(|r| r.area_mm2).sum()
    }

    /// Total power, watts.
    pub fn total_power_w(&self) -> f64 {
        self.breakdown().iter().map(|r| r.power_w).sum()
    }
}

impl Default for AsicProvisioning {
    fn default() -> Self {
        AsicProvisioning::darwin_wga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_table_4_totals() {
        let p = AsicProvisioning::darwin_wga();
        assert!((p.total_area_mm2() - 35.92).abs() < 0.01, "{}", p.total_area_mm2());
        assert!((p.total_power_w() - 43.34).abs() < 0.01, "{}", p.total_power_w());
    }

    #[test]
    fn default_reproduces_table_4_rows() {
        let rows = AsicProvisioning::darwin_wga().breakdown();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].area_mm2 - 16.6).abs() < 1e-9);
        assert!((rows[0].power_w - 25.6).abs() < 1e-9);
        assert!((rows[1].area_mm2 - 4.2).abs() < 1e-9);
        assert!((rows[2].area_mm2 - 15.12).abs() < 1e-9);
        assert!((rows[2].power_w - 7.92).abs() < 1e-9);
        assert_eq!(rows[3].area_mm2, 0.0);
        assert!((rows[3].power_w - 3.10).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_linear() {
        let mut p = AsicProvisioning::darwin_wga();
        p.bsw_arrays = 128;
        let rows = p.breakdown();
        assert!((rows[0].area_mm2 - 2.0 * 16.6).abs() < 1e-9);
        // GACT-X unchanged.
        assert!((rows[1].area_mm2 - 4.2).abs() < 1e-9);
    }

    #[test]
    fn bsw_dominates_logic_area_and_power() {
        // §VI-A: "BSW arrays dominate the logic area of the ASIC and
        // consume almost 60% of the chip power."
        let p = AsicProvisioning::darwin_wga();
        let rows = p.breakdown();
        assert!(rows[0].area_mm2 > rows[1].area_mm2);
        assert!(rows[0].power_w / p.total_power_w() > 0.55);
    }

    #[test]
    fn sram_is_about_half_the_area() {
        // §VI-A: traceback pointers "take up nearly half of the chip area".
        let p = AsicProvisioning::darwin_wga();
        let rows = p.breakdown();
        let frac = rows[2].area_mm2 / p.total_area_mm2();
        assert!((0.35..0.55).contains(&frac), "{frac}");
    }
}
