//! Many-genome mode vs N² independent pairwise runs.
//!
//! Builds a deterministic set of `--genomes` synthetic genomes (pairs of
//! cluster mates descended from shared ancestors, so every genome has at
//! least one near neighbour) and times two ways of aligning the set:
//!
//! * **baseline** — what a user without `wga many` runs: one independent
//!   pairwise invocation per *ordered* genome pair (each genome serves
//!   as target once per partner), N×(N-1) full pipeline runs, each
//!   rebuilding its own seed tables;
//! * **many** — [`wga_core::pangenome::align_many`] with the shared
//!   lazily-built index over the unordered pair matrix.
//!
//! The shared-index run is cross-checked against per-pair-index mode
//! byte-for-byte while timing, so the bench doubles as a differential
//! smoke test, and a `--knn 2` pass reports how many distant pairs
//! sparsification skips. Results go to stdout and to an integer-only
//! `BENCH_many.json`; the binary **asserts** `speedup_x100 >= 150` —
//! the ≥1.5× end-to-end gate many-genome mode has to clear to exist.
//!
//! Each timing runs `--reps` times and keeps the minimum wall clock,
//! the usual noise-robust estimator on shared hosts.
//!
//! Run with: `cargo run --release -p wga-bench --bin bench_many`
//! Optional flags: `--genomes N` (default 6, must be ≥ 6 and even),
//! `--length N` (bp per genome, default 4000), `--threads N`
//! (default 1), `--reps N` (default 1), `--out PATH` (BENCH_many.json).

use genome::assembly::Assembly;
use genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wga_core::config::WgaParams;
use wga_core::genome_pipeline::{align_assemblies_with, AlignOptions};
use wga_core::pangenome::{self, index::scaled_params, ManyOptions};

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn parse_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> T {
    match take_opt(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Cluster-structured genome set: genomes `2c` and `2c+1` descend from
/// ancestor `c`, so within-cluster pairs are near homologs and
/// cross-cluster pairs are unrelated background.
fn genome_set(count: usize, length: usize) -> Vec<Assembly> {
    let mut genomes = Vec::new();
    for c in 0..count / 2 {
        let mut rng = StdRng::seed_from_u64(7_000 + c as u64);
        let pair =
            SyntheticPair::generate(length, &EvolutionParams::at_distance(0.15), &mut rng);
        for (side, seq) in [("t", &pair.target.sequence), ("q", &pair.query.sequence)] {
            let mut g = Assembly::new(format!("c{c}{side}"));
            g.push("chr", seq.clone());
            genomes.push(g);
        }
    }
    genomes
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let genomes_n: usize = parse_opt(&mut args, "--genomes", 6);
    let length: usize = parse_opt(&mut args, "--length", 4_000);
    let threads: usize = parse_opt(&mut args, "--threads", 1);
    let reps: usize = parse_opt(&mut args, "--reps", 1);
    let out = take_opt(&mut args, "--out").unwrap_or_else(|| "BENCH_many.json".into());
    if genomes_n < 6 || genomes_n % 2 != 0 {
        eprintln!("error: --genomes must be an even number >= 6");
        std::process::exit(2);
    }

    let params = WgaParams::darwin_wga();
    let genomes = genome_set(genomes_n, length);
    let pairs_total = genomes_n * (genomes_n - 1) / 2;
    eprintln!(
        "bench_many: {genomes_n} genomes x {length} bp, {pairs_total} unordered pairs, \
         {threads} thread(s), {reps} rep(s)"
    );

    // Baseline: every ordered pair as its own pairwise run, with the
    // same scaled parameters many mode uses, so the two sides do the
    // same per-pair work and the speedup measures orchestration +
    // index sharing, not a parameter change.
    let scaled = scaled_params(&params, genomes_n);
    let baseline_options = AlignOptions {
        threads,
        ..AlignOptions::default()
    };
    let mut baseline_us = u64::MAX;
    let mut baseline_matches = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut matches = 0u64;
        for (i, target) in genomes.iter().enumerate() {
            for (j, query) in genomes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let report = align_assemblies_with(&scaled, target, query, &baseline_options)
                    .unwrap_or_else(|e| {
                        eprintln!("error: baseline {i} vs {j} failed: {e}");
                        std::process::exit(1);
                    });
                matches += report.total_matches();
            }
        }
        baseline_us = baseline_us.min(start.elapsed().as_micros() as u64);
        baseline_matches = matches;
    }

    let many_options = ManyOptions {
        threads,
        ..ManyOptions::default()
    };
    let mut many_us = u64::MAX;
    let mut many_report = None;
    for _ in 0..reps {
        let start = Instant::now();
        let report =
            pangenome::align_many(&params, &genomes, &many_options).unwrap_or_else(|e| {
                eprintln!("error: many-genome run failed: {e}");
                std::process::exit(1);
            });
        many_us = many_us.min(start.elapsed().as_micros() as u64);
        many_report = Some(report);
    }
    let many_report = many_report.expect("reps >= 1");

    // Differential smoke: shared-index vs per-pair-index byte-identity.
    let per_pair = pangenome::align_many(
        &params,
        &genomes,
        &ManyOptions {
            shared_index: false,
            ..many_options.clone()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: per-pair-index run failed: {e}");
        std::process::exit(1);
    });
    assert_eq!(
        many_report.canonical_text(),
        per_pair.canonical_text(),
        "shared-index and per-pair-index modes must be byte-identical"
    );

    // kNN sparsification: with 2-genome clusters, knn=2 keeps every
    // cluster mate and prunes most of the unrelated background.
    let knn_report = pangenome::align_many(
        &params,
        &genomes,
        &ManyOptions {
            knn: Some(2),
            ..many_options
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: knn run failed: {e}");
        std::process::exit(1);
    });
    let knn_scheduled = knn_report.pairs.iter().filter(|p| p.scheduled).count();
    let knn_skipped = knn_report.pairs.len() - knn_scheduled;

    let speedup_x100 = baseline_us.saturating_mul(100) / many_us.max(1);
    println!("baseline (N(N-1) independent runs): {} us", baseline_us);
    println!("many-genome (shared index):         {} us", many_us);
    println!("speedup: {}.{:02}x", speedup_x100 / 100, speedup_x100 % 100);
    println!(
        "knn=2: {knn_scheduled}/{} pairs scheduled, {knn_skipped} skipped",
        knn_report.pairs.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"bench_many\",\n  \"genomes\": {genomes_n},\n  \
         \"length\": {length},\n  \"threads\": {threads},\n  \"reps\": {reps},\n  \
         \"pairs_total\": {pairs_total},\n  \"baseline_runs\": {},\n  \
         \"baseline_us\": {baseline_us},\n  \"baseline_matches\": {baseline_matches},\n  \
         \"many_us\": {many_us},\n  \"many_alignments\": {},\n  \
         \"many_tables_built\": {},\n  \"speedup_x100\": {speedup_x100},\n  \
         \"knn2_scheduled\": {knn_scheduled},\n  \"knn2_skipped\": {knn_skipped}\n}}\n",
        genomes_n * (genomes_n - 1),
        many_report.alignments.len(),
        many_report.tables_built,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");

    assert!(
        speedup_x100 >= 150,
        "many-genome mode must be >= 1.5x faster end-to-end than N(N-1) \
         independent runs, measured {}.{:02}x",
        speedup_x100 / 100,
        speedup_x100 % 100
    );
}
