//! Offline stand-in for the `bytes` API subset the workspace uses:
//! `BytesMut::{with_capacity, extend_from_slice, freeze}` and an immutable
//! `Bytes` that derefs to `[u8]`. Backed by `Vec<u8>` (no refcounted
//! zero-copy slicing — nothing in the workspace relies on it).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Immutable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.0.extend_from_slice(extend);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn freeze_round_trips() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }
}
