//! End-to-end pipeline throughput: stage-barrier vs streaming dataflow.
//!
//! Generates a deterministic multi-chromosome assembly pair and runs the
//! full seed→filter→extend pipeline under both executors across a ladder
//! of thread counts:
//!
//! * **barrier** — [`wga_core::parallel`]: only the filter stage fans
//!   out; seeding and extension run serially per pair;
//! * **dataflow** — [`wga_core::dataflow`]: seeding producer, filter
//!   pool and extension pool all stream concurrently over bounded
//!   queues, so independent pair streams overlap across stages.
//!
//! Every run's `canonical_text` is cross-checked against a single-thread
//! barrier reference while timing, so the bench doubles as a
//! differential smoke test. Results go to stdout and to a
//! machine-readable `BENCH_pipeline.json` (integer-only JSON: wall µs,
//! alignments, matched bases, filter tiles per executor per thread
//! count, plus `speedup_centi` = 100 × barrier/dataflow wall clock).
//!
//! Each configuration runs `--reps` times and reports the minimum wall
//! clock per executor — the usual noise-robust estimator on shared
//! hosts, where a single rep can be skewed by unrelated load.
//!
//! Run with: `cargo run --release -p wga-bench --bin pipeline_throughput`
//! Optional flags: `--pairs N` (default 24), `--length N` (bp per
//! chromosome, default 2500), `--threads t1,t2,..` (default 1,2,4,8),
//! `--queue-depth N` (default 64), `--reps N` (default 3),
//! `--out PATH` (BENCH_pipeline.json).

use genome::assembly::Assembly;
use genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use wga_core::config::WgaParams;
use wga_core::dataflow::ExecutorKind;
use wga_core::genome_pipeline::{align_assemblies_with, AlignOptions, AssemblyReport};

struct ExecutorRun {
    wall_us: u64,
    alignments: u64,
    matches: u64,
    filter_tiles: u64,
}

impl ExecutorRun {
    fn json(&self) -> String {
        format!(
            "{{\"wall_us\": {}, \"alignments\": {}, \"matches\": {}, \"filter_tiles\": {}}}",
            self.wall_us, self.alignments, self.matches, self.filter_tiles
        )
    }
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn parse_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> T {
    match take_opt(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// One homologous chromosome per pair, distances cycling through a
/// realistic spread so the filter survival rate varies across streams.
fn assemblies(pairs: usize, length: usize) -> (Assembly, Assembly) {
    const DISTANCES_MILLI: [u64; 4] = [150, 250, 350, 200];
    let mut target = Assembly::new("bench-target");
    let mut query = Assembly::new("bench-query");
    for i in 0..pairs {
        let milli = DISTANCES_MILLI[i % DISTANCES_MILLI.len()];
        let mut rng = StdRng::seed_from_u64(4200 + i as u64);
        let pair = SyntheticPair::generate(
            length,
            &EvolutionParams::at_distance(milli as f64 / 1000.0),
            &mut rng,
        );
        target.push(format!("chr{i}T"), pair.target.sequence.clone());
        query.push(format!("chr{i}Q"), pair.query.sequence.clone());
    }
    (target, query)
}

fn run_once(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    executor: ExecutorKind,
    threads: usize,
    queue_depth: usize,
) -> (AssemblyReport, ExecutorRun) {
    let options = AlignOptions {
        threads,
        executor,
        queue_depth,
        ..AlignOptions::default()
    };
    let start = Instant::now();
    let report = align_assemblies_with(params, target, query, &options).unwrap_or_else(|e| {
        eprintln!("error: {executor:?} run at {threads} threads failed: {e}");
        std::process::exit(1);
    });
    let wall_us = start.elapsed().as_micros() as u64;
    let run = ExecutorRun {
        wall_us,
        alignments: report.alignments.len() as u64,
        matches: report.total_matches(),
        filter_tiles: report.workload.filter_tiles,
    };
    (report, run)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pairs: usize = parse_opt(&mut args, "--pairs", 24);
    let length: usize = parse_opt(&mut args, "--length", 2_500);
    let queue_depth: usize = parse_opt(&mut args, "--queue-depth", 64);
    let reps: usize = parse_opt(&mut args, "--reps", 3);
    if reps == 0 {
        eprintln!("error: --reps must be at least 1");
        std::process::exit(2);
    }
    let out_path = take_opt(&mut args, "--out").unwrap_or_else(|| "BENCH_pipeline.json".into());
    let threads_raw = take_opt(&mut args, "--threads").unwrap_or_else(|| "1,2,4,8".into());
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments: {args:?}");
        std::process::exit(2);
    }
    let thread_counts: Vec<usize> = threads_raw
        .split(',')
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: invalid thread count {t:?}");
                std::process::exit(2);
            })
        })
        .collect();

    let params = WgaParams::darwin_wga();
    let (target, query) = assemblies(pairs, length);
    println!(
        "pipeline_throughput: {pairs} chromosome pairs of {length} bp, queue depth {queue_depth}, best of {reps}"
    );

    // Warmup + correctness reference: an untimed single-thread barrier run.
    let (reference, _) = run_once(
        &params,
        &target,
        &query,
        ExecutorKind::Barrier,
        1,
        queue_depth,
    );
    let expected = reference.canonical_text();
    if std::env::var_os("WGA_BENCH_TIMINGS").is_some() {
        eprintln!("reference timings: {:?}", reference.timings);
    }

    println!(
        "{:>7} | {:>14} | {:>14} | {:>8}",
        "threads", "barrier µs", "dataflow µs", "speedup"
    );

    let mut results = Vec::new();
    for &threads in &thread_counts {
        // Interleave executors across reps so slow drift in background
        // load hits both fairly; keep each executor's fastest rep.
        let mut barrier: Option<ExecutorRun> = None;
        let mut dataflow: Option<ExecutorRun> = None;
        for _ in 0..reps {
            let (b_report, b_run) = run_once(
                &params,
                &target,
                &query,
                ExecutorKind::Barrier,
                threads,
                queue_depth,
            );
            let (d_report, d_run) = run_once(
                &params,
                &target,
                &query,
                ExecutorKind::Dataflow,
                threads,
                queue_depth,
            );
            assert_eq!(
                b_report.canonical_text(),
                expected,
                "barrier diverged at {threads} threads"
            );
            assert_eq!(
                d_report.canonical_text(),
                expected,
                "dataflow diverged at {threads} threads"
            );
            if std::env::var_os("WGA_BENCH_TIMINGS").is_some() {
                if let Some(metrics) = &d_report.stage_metrics {
                    eprintln!("{}", metrics.summary());
                }
            }
            // Smoke check, not a perf gate: with intra-pair sharding the
            // seeding stage must report the whole pool at wide widths —
            // a silent fall-back to pair-granular dispatch shows up here
            // even on a single-core runner.
            if threads >= 8 {
                for (name, report) in [("barrier", &b_report), ("dataflow", &d_report)] {
                    if let Some(metrics) = &report.stage_metrics {
                        assert!(
                            metrics.seeding.workers > 1,
                            "{name}: seeding reports {} worker(s) at {threads} threads — \
                             intra-pair sharding is not engaging",
                            metrics.seeding.workers
                        );
                    }
                }
            }
            if barrier.as_ref().is_none_or(|b| b_run.wall_us < b.wall_us) {
                barrier = Some(b_run);
            }
            if dataflow.as_ref().is_none_or(|d| d_run.wall_us < d.wall_us) {
                dataflow = Some(d_run);
            }
        }
        let barrier = barrier.expect("reps >= 1");
        let dataflow = dataflow.expect("reps >= 1");

        let speedup_centi = (barrier.wall_us * 100).checked_div(dataflow.wall_us).unwrap_or(0);
        println!(
            "{:>7} | {:>14} | {:>14} | {:>7}.{:02}x",
            threads,
            barrier.wall_us,
            dataflow.wall_us,
            speedup_centi / 100,
            speedup_centi % 100
        );
        let mut entry = String::new();
        let _ = write!(
            entry,
            "    {{\"threads\": {threads}, \"barrier\": {}, \"dataflow\": {}, \"speedup_centi\": {speedup_centi}}}",
            barrier.json(),
            dataflow.json()
        );
        results.push(entry);
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"pairs\": {pairs},\n  \"length\": {length},\n  \"queue_depth\": {queue_depth},\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
