//! Batched wavefront BSW — the fast filtering kernel (§IV).
//!
//! The hardware computes banded Smith-Waterman on a linear systolic array
//! that processes one *anti-diagonal* of the band per cycle: every cell on
//! the diagonal `d = i + j` depends only on diagonals `d-1` (gap moves)
//! and `d-2` (substitution), so all of them update in parallel. This
//! module is the software transcription of that dataflow:
//!
//! * sequences are **byte-encoded once** per chromosome pair (2-bit bases
//!   plus the `N` code, one byte each) instead of re-reading the `Base`
//!   enum per cell — [`BswBatch`] holds the encoded pair and a flattened
//!   score table, shared read-only by every worker thread;
//! * the DP runs in **anti-diagonal order** over three flat rolling
//!   buffers indexed by row `i` — the software image of the systolic
//!   array's processing elements — with a branch-free inner loop the
//!   compiler can vectorise;
//! * buffers live in a reusable [`WavefrontScratch`], so a batch of
//!   thousands of filter tiles performs **no per-tile allocation**;
//! * the kernel is **score-only** (no traceback), which is exactly what
//!   the filter stage consumes: `V_max` and its position.
//!
//! The result is bit-identical to [`crate::banded::banded_smith_waterman`]
//! — same scores, same argmax coordinates, same cell counts — which the
//! differential-oracle harness (`tests/bsw_differential.rs`) enforces over
//! thousands of random and adversarial tiles.

// lint: hot — allocation-free inner loops are this kernel's whole point

use crate::banded::BandedOutcome;
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i32 = i32::MIN / 4;

/// Flattened substitution matrix indexed by base codes.
///
/// Entry `(a << 3) | b` holds `w.score(a, b)`; the 64-slot table plus an
/// index mask lets the inner loop look scores up without a bounds check.
#[derive(Debug, Clone)]
pub struct ScoreLut {
    table: [i32; 64],
}

impl ScoreLut {
    /// Flattens `w` into a code-indexed table.
    pub fn new(w: &SubstitutionMatrix) -> ScoreLut {
        let mut table = [0i32; 64];
        for a in 0u8..5 {
            for b in 0u8..5 {
                table[((a as usize) << 3) | b as usize] =
                    w.score(Base::from_code(a), Base::from_code(b));
            }
        }
        ScoreLut { table }
    }

    #[inline]
    fn score(&self, a: u8, b: u8) -> i32 {
        self.table[(((a as usize) << 3) | b as usize) & 63]
    }
}

/// Encodes a base slice into hardware codes (`A=0..T=3, N=4`), one byte
/// per base.
pub fn encode(seq: &[Base]) -> Vec<u8> {
    seq.iter().map(|b| b.code()).collect()
}

/// Reusable per-worker DP buffers for [`bsw_wavefront`].
///
/// Holds the three rolling anti-diagonal buffers (`V` on `d-1`/`d-2`,
/// `E`/`F` on `d-1`) plus the current diagonal and a substitution-score
/// staging row, all indexed by row `i`. Buffers grow to the largest tile
/// seen and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct WavefrontScratch {
    v_pprev: Vec<i32>,
    v_prev: Vec<i32>,
    v_cur: Vec<i32>,
    e_prev: Vec<i32>,
    e_cur: Vec<i32>,
    f_prev: Vec<i32>,
    f_cur: Vec<i32>,
    scores: Vec<i32>,
}

impl WavefrontScratch {
    /// A fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> WavefrontScratch {
        WavefrontScratch::default()
    }
}

/// A chromosome pair encoded once for batched tile filtering.
///
/// Immutable after construction and `Sync`, so the parallel driver shares
/// one `BswBatch` across all filter workers; each worker brings its own
/// [`WavefrontScratch`] and calls [`BswBatch::run_tile`] for every tile in
/// its batch.
#[derive(Debug, Clone)]
pub struct BswBatch {
    tcodes: Vec<u8>,
    qcodes: Vec<u8>,
    lut: ScoreLut,
    gaps: GapPenalties,
    band: usize,
}

impl BswBatch {
    /// Encodes `target`/`query` and flattens the scoring for batched runs.
    pub fn new(
        target: &[Base],
        query: &[Base],
        w: &SubstitutionMatrix,
        gaps: &GapPenalties,
        band: usize,
    ) -> BswBatch {
        BswBatch {
            tcodes: encode(target),
            qcodes: encode(query),
            lut: ScoreLut::new(w),
            gaps: *gaps,
            band,
        }
    }

    /// Runs one filter tile over the given windows of the encoded pair.
    ///
    /// Bit-identical to running
    /// [`crate::banded::banded_smith_waterman`] on the same slices.
    pub fn run_tile(
        &self,
        t_range: std::ops::Range<usize>,
        q_range: std::ops::Range<usize>,
        scratch: &mut WavefrontScratch,
    ) -> BandedOutcome {
        bsw_wavefront(
            &self.tcodes[t_range],
            &self.qcodes[q_range],
            &self.lut,
            &self.gaps,
            self.band,
            scratch,
        )
    }
}

/// Banded Smith-Waterman in anti-diagonal (wavefront) order over encoded
/// sequences.
///
/// Computes the same cell set as the scalar kernel — `|i - j| <= band`
/// intersected with the matrix, out-of-band neighbours reading `V = 0`,
/// `E = F = -inf` — and returns an identical [`BandedOutcome`]: the
/// scalar's row-major first-improvement argmax is exactly the
/// lexicographically smallest `(i, j)` attaining the maximum, which the
/// wavefront sweep reproduces by preferring smaller `i` on ties.
pub fn bsw_wavefront(
    tcodes: &[u8],
    qcodes: &[u8],
    lut: &ScoreLut,
    gaps: &GapPenalties,
    band: usize,
    scratch: &mut WavefrontScratch,
) -> BandedOutcome {
    let (n, m) = (tcodes.len(), qcodes.len());
    if n == 0 || m == 0 {
        return BandedOutcome::default();
    }
    let open_extend = gaps.open + gaps.extend;
    let extend = gaps.extend;

    let WavefrontScratch {
        v_pprev,
        v_prev,
        v_cur,
        e_prev,
        e_cur,
        f_prev,
        f_cur,
        scores,
    } = scratch;
    let len = m + 2;
    for buf in [
        &mut *v_pprev, &mut *v_prev, &mut *v_cur, &mut *e_prev, &mut *e_cur, &mut *f_prev,
        &mut *f_cur, &mut *scores,
    ] {
        if buf.len() < len {
            buf.resize(len, 0);
        }
    }
    // Boundary state feeding diagonal 2 (cell (1,1) only): row 0 and
    // column 0 read V = 0 with no live gap chains.
    v_prev[0] = 0;
    v_prev[1] = 0;
    e_prev[0] = NEG_INF;
    e_prev[1] = NEG_INF;
    f_prev[0] = NEG_INF;
    f_prev[1] = NEG_INF;
    v_pprev[0] = 0;
    v_pprev[1] = 0;

    let mut best = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    let mut cells = 0u64;

    for d in 2..=(m + n) {
        // Rows intersecting diagonal d: 1 <= i <= m, 1 <= j = d-i <= n,
        // |j - i| <= band.
        let lo_seq = if d > n { d - n } else { 1 };
        let lo_band = if d > band { (d - band).div_ceil(2) } else { 1 };
        let lo = lo_seq.max(lo_band).max(1);
        let hi = m.min(d - 1).min((d + band) / 2);
        if lo > hi {
            // The band region is convex, so its anti-diagonal slices form
            // one contiguous run: the first empty diagonal ends the sweep.
            break;
        }
        let width = hi - lo + 1;
        cells += width as u64;

        // Substitution scores for the diagonal: target runs backwards as
        // the row index advances.
        let ts = &tcodes[d - hi - 1..d - lo];
        let qs = &qcodes[lo - 1..hi];
        let sc = &mut scores[..width];
        for k in 0..width {
            sc[k] = lut.score(ts[width - 1 - k], qs[k]);
        }

        // Neighbour views, all indexed by row: the left neighbour (i, j-1)
        // and upper neighbour (i-1, j) live on diagonal d-1 at rows i and
        // i-1; the substitution source (i-1, j-1) on d-2 at row i-1.
        // Sentinels written after each diagonal make out-of-band reads
        // yield V = 0, E = F = -inf, so the loop is branch-free.
        let vl = &v_prev[lo..=hi];
        let el = &e_prev[lo..=hi];
        let vu = &v_prev[lo - 1..hi];
        let fu = &f_prev[lo - 1..hi];
        let vd = &v_pprev[lo - 1..hi];
        let vc = &mut v_cur[lo..=hi];
        let ec = &mut e_cur[lo..=hi];
        let fc = &mut f_cur[lo..=hi];
        for k in 0..width {
            let e = (vl[k] - open_extend).max(el[k] - extend);
            let f = (vu[k] - open_extend).max(fu[k] - extend);
            let val = (vd[k] + sc[k]).max(e).max(f).max(0);
            vc[k] = val;
            ec[k] = e;
            fc[k] = f;
        }

        // Argmax with the scalar tie-break: the row-major first strict
        // improvement is the lexicographically smallest (i, j) maximum,
        // so on a tied diagonal the smallest row wins.
        let diag_max = vc.iter().copied().max().unwrap_or(0);
        if diag_max > best || (diag_max == best && best > 0) {
            let k = vc.iter().position(|&v| v == diag_max).unwrap_or(0);
            let i = lo + k;
            if diag_max > best || i < best_i {
                best = diag_max;
                best_i = i;
                best_j = d - i;
            }
        }

        // Sentinels for the one slot the next diagonals may read beyond
        // this diagonal's computed range on either side.
        v_cur[lo - 1] = 0;
        e_cur[lo - 1] = NEG_INF;
        f_cur[lo - 1] = NEG_INF;
        v_cur[hi + 1] = 0;
        e_cur[hi + 1] = NEG_INF;
        f_cur[hi + 1] = NEG_INF;

        // Rotate: d-1 becomes d-2, d becomes d-1, and the old d-2 buffer
        // is recycled as the next current diagonal.
        std::mem::swap(v_pprev, v_prev);
        std::mem::swap(v_prev, v_cur);
        std::mem::swap(e_prev, e_cur);
        std::mem::swap(f_prev, f_cur);
    }

    BandedOutcome {
        max_score: best as i64,
        target_pos: best_j.saturating_sub(1),
        query_pos: best_i.saturating_sub(1),
        cells,
    }
}

/// Convenience wrapper: encodes `target`/`query` and runs the wavefront
/// kernel — a drop-in replacement for
/// [`crate::banded::banded_smith_waterman`] plus a scratch argument.
///
/// # Examples
///
/// ```
/// use align::bsw_fast::{banded_smith_waterman_wavefront, WavefrontScratch};
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "ACGTACGTACGT".parse()?;
/// let q: Sequence = "ACGTACGTACGT".parse()?;
/// let mut scratch = WavefrontScratch::new();
/// let out = banded_smith_waterman_wavefront(
///     t.as_slice(),
///     q.as_slice(),
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
///     4,
///     &mut scratch,
/// );
/// assert_eq!(out.max_score, 3 * (91 + 100 + 100 + 91));
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn banded_smith_waterman_wavefront(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    band: usize,
    scratch: &mut WavefrontScratch,
) -> BandedOutcome {
    bsw_wavefront(
        &encode(target),
        &encode(query),
        &ScoreLut::new(w),
        gaps,
        band,
        scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::banded_smith_waterman;
    use genome::Sequence;

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn assert_identical(t: &[Base], q: &[Base], band: usize) {
        let (w, g) = dw();
        let scalar = banded_smith_waterman(t, q, &w, &g, band);
        let mut scratch = WavefrontScratch::new();
        let fast = banded_smith_waterman_wavefront(t, q, &w, &g, band, &mut scratch);
        assert_eq!(scalar, fast, "band={band} n={} m={}", t.len(), q.len());
    }

    fn seq(s: &str) -> Sequence {
        s.parse().unwrap()
    }

    #[test]
    fn matches_scalar_on_perfect_match() {
        let t = seq("ACGTACGTACGT");
        assert_identical(t.as_slice(), t.as_slice(), 4);
    }

    #[test]
    fn matches_scalar_on_indels_and_mismatches() {
        let t = seq("ACGGTCAGTCGATTGCAGTCAGCTAGCTAGGATCGGATTACA");
        let q = seq("ACGGTCAGTCGAGCAGTCAGCTAGCTAGGATCGGATTACA");
        for band in [1, 2, 4, 8, 32] {
            assert_identical(t.as_slice(), q.as_slice(), band);
        }
    }

    #[test]
    fn matches_scalar_on_homopolymer_ties() {
        // Massive score ties: every diagonal cell of the A-block scores
        // the same, stressing the argmax tie-break equivalence.
        let t = seq(&"A".repeat(50));
        let q = seq(&"A".repeat(47));
        for band in [1, 3, 16, 64] {
            assert_identical(t.as_slice(), q.as_slice(), band);
        }
    }

    #[test]
    fn matches_scalar_on_asymmetric_lengths() {
        let t = seq(&"ACGT".repeat(30));
        let q = seq(&"ACGT".repeat(7));
        for band in [1, 5, 33, 200] {
            assert_identical(t.as_slice(), q.as_slice(), band);
            assert_identical(q.as_slice(), t.as_slice(), band);
        }
    }

    #[test]
    fn matches_scalar_with_ambiguous_bases() {
        let t = seq("ACGTNNNNACGTACGTNACGT");
        let q = seq("ACGTACNNGTACGTNNNACGT");
        for band in [2, 8] {
            assert_identical(t.as_slice(), q.as_slice(), band);
        }
    }

    #[test]
    fn empty_inputs_score_zero() {
        let (w, g) = dw();
        let t = seq("ACGT");
        let mut scratch = WavefrontScratch::new();
        let out =
            banded_smith_waterman_wavefront(t.as_slice(), &[], &w, &g, 4, &mut scratch);
        assert_eq!(out, BandedOutcome::default());
        let out =
            banded_smith_waterman_wavefront(&[], t.as_slice(), &w, &g, 4, &mut scratch);
        assert_eq!(out, BandedOutcome::default());
    }

    #[test]
    fn scratch_reuse_across_differently_sized_tiles() {
        let (w, g) = dw();
        let mut scratch = WavefrontScratch::new();
        for len in [1usize, 7, 64, 3, 320, 5] {
            let t = seq(&"ACGGTCAGT".repeat(len.div_ceil(9))[..len]);
            let q = seq(&"ACGGTCTGT".repeat(len.div_ceil(9))[..len]);
            let scalar = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 32);
            let fast = bsw_wavefront(
                &encode(t.as_slice()),
                &encode(q.as_slice()),
                &ScoreLut::new(&w),
                &g,
                32,
                &mut scratch,
            );
            assert_eq!(scalar, fast, "len={len}");
        }
    }

    #[test]
    fn batch_tiles_match_per_call_results() {
        let (w, g) = dw();
        let t = seq(&"ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(40));
        let q = seq(&"ACGGTCAGTCGATTGCAGTCCATGGACTGTTC".repeat(40));
        let batch = BswBatch::new(t.as_slice(), q.as_slice(), &w, &g, 32);
        let mut scratch = WavefrontScratch::new();
        for start in (0..960).step_by(160) {
            let (tr, qr) = crate::banded::tile_around(
                start + 100,
                start + 100,
                320,
                t.len(),
                q.len(),
            );
            let scalar = banded_smith_waterman(
                &t.as_slice()[tr.clone()],
                &q.as_slice()[qr.clone()],
                &w,
                &g,
                32,
            );
            let fast = batch.run_tile(tr, qr, &mut scratch);
            assert_eq!(scalar, fast, "tile at {start}");
        }
    }
}
