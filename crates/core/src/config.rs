//! Pipeline configuration (Table II) and per-run resource budgets.

use crate::error::{WgaError, WgaResult};
use align::gactx::TilingParams;
use genome::{GapPenalties, SubstitutionMatrix};
use seed::{DsoftParams, SeedPattern};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Resource budgets for one chromosome-pair run.
///
/// The paper's workloads are 100–137 Mbp genome pairs where filtering
/// dominates runtime (§III-A); a single repeat-dense chromosome can blow
/// up seed hits and filter tiles by orders of magnitude. Budgets bound
/// each stage's work: when a budget trips, the stage truncates
/// *deterministically* (work is processed best-first where a score
/// exists, in stable positional order otherwise), a
/// [`crate::report::RunEvent::BudgetExceeded`] event is recorded, and
/// the run continues instead of OOMing or hanging.
///
/// All limits default to `None` (unbounded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Maximum seed hits handed to the filter per query strand.
    pub max_seed_hits: Option<u64>,
    /// Maximum filter tiles per chromosome-pair run (both strands).
    pub max_filter_tiles: Option<u64>,
    /// Maximum extension DP cells per chromosome-pair run. Checked
    /// before each anchor extension, so the cap may be overshot by at
    /// most one extension's cells.
    pub max_extension_cells: Option<u64>,
    /// Wall-clock deadline per chromosome-pair run, measured from
    /// pipeline start (shared seed-table construction, amortised across
    /// pairs, is excluded). Inherently non-deterministic: use the cell /
    /// tile budgets when reproducibility matters.
    pub deadline: Option<Duration>,
}

impl ResourceBudget {
    /// An unbounded budget (the default).
    pub fn unbounded() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// Whether the per-pair deadline has passed, measured from `start`.
    pub fn deadline_exceeded(&self, start: Instant) -> bool {
        match self.deadline {
            Some(deadline) => start.elapsed() > deadline,
            None => false,
        }
    }
}

/// Gapped (BSW) filter parameters — Darwin-WGA's filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GappedFilterParams {
    /// Filter tile size `T_f`.
    pub tile_size: usize,
    /// Band half-width `B`.
    pub band: usize,
    /// Filter threshold `H_f`: anchors scoring below are discarded.
    pub threshold: i64,
}

impl Default for GappedFilterParams {
    /// Table IIb with the `H_f` correction of §VI-B: `T_f = 320`,
    /// `B = 32`, `H_f = 4000` (the paper's table prints 3000 but the text
    /// adopts 4000 after the false-positive analysis).
    fn default() -> Self {
        GappedFilterParams {
            tile_size: 320,
            band: 32,
            threshold: 4000,
        }
    }
}

/// Ungapped (LASTZ-style) filter parameters — the baseline's filtering
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UngappedFilterParams {
    /// X-drop value for the diagonal extension.
    pub xdrop: i32,
    /// Filter threshold (LASTZ default 3000 — "equivalent of at least 30
    /// matches", the red line of Fig. 2).
    pub threshold: i64,
}

impl Default for UngappedFilterParams {
    fn default() -> Self {
        UngappedFilterParams {
            xdrop: 910, // ten match-scores, LASTZ's default magnitude
            threshold: 3000,
        }
    }
}

/// Which filtering algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterStage {
    /// Banded Smith-Waterman gapped filtering (Darwin-WGA).
    Gapped(GappedFilterParams),
    /// X-drop ungapped filtering (LASTZ baseline).
    Ungapped(UngappedFilterParams),
}

impl FilterStage {
    /// The stage's pass threshold.
    pub fn threshold(&self) -> i64 {
        match self {
            FilterStage::Gapped(p) => p.threshold,
            FilterStage::Ungapped(p) => p.threshold,
        }
    }
}

/// Which BSW filter *implementation* executes the gapped filtering
/// stage.
///
/// Every engine computes the identical banded DP — same scores, same
/// anchor coordinates, same cell counts (enforced by the three-way
/// differential-oracle harness in `tests/bsw_differential.rs`) — so this
/// is purely a performance choice. See [`crate::filter_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FilterEngineKind {
    /// Row-major scalar reference kernel ([`align::banded`]), allocating
    /// per tile. Kept as the oracle and for differential testing.
    Scalar,
    /// Batched wavefront kernel ([`align::bsw_fast`]): chromosome pair
    /// encoded once, anti-diagonal DP over reused flat buffers, no
    /// per-tile allocation. The default.
    #[default]
    Batched,
    /// Explicit-SIMD wavefront kernel ([`align::bsw_simd`]): saturating
    /// `i16` lanes (8 per SSE2 vector, 16 per AVX2 vector) over the same
    /// flat buffers, with a per-tile exact `i32` fallback. Falls back to
    /// the batched kernel entirely on hosts without x86-64 SIMD.
    Simd,
}

impl std::str::FromStr for FilterEngineKind {
    type Err = String;

    /// Parses the CLI spelling: `scalar`, `batched` or `simd`.
    fn from_str(s: &str) -> Result<FilterEngineKind, String> {
        match s {
            "scalar" => Ok(FilterEngineKind::Scalar),
            "batched" => Ok(FilterEngineKind::Batched),
            "simd" => Ok(FilterEngineKind::Simd),
            other => Err(format!(
                "unknown filter engine {other:?} (expected \"scalar\", \"batched\" or \"simd\")"
            )),
        }
    }
}

/// Which extension algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtensionStage {
    /// GACT-X tiled extension (Darwin-WGA).
    GactX(TilingParams),
    /// GACT with a traceback-memory budget (Fig. 10 comparison).
    Gact {
        /// Traceback memory per tile, bytes.
        traceback_bytes: u64,
    },
    /// Untiled software Y-drop extension (LASTZ baseline).
    Ydrop {
        /// Y-drop threshold.
        y: i64,
    },
}

/// Full pipeline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WgaParams {
    /// Substitution matrix `W` (Table IIa).
    pub scoring: SubstitutionMatrix,
    /// Affine gap penalties (Table IIa).
    pub gaps: GapPenalties,
    /// Spaced seed pattern (Fig. 5).
    pub seed_pattern: SeedPattern,
    /// D-SOFT seeding parameters.
    pub dsoft: DsoftParams,
    /// Repeat cap: seed words occurring more often are masked.
    pub max_seed_occurrences: usize,
    /// Filtering stage.
    pub filter: FilterStage,
    /// Which BSW implementation executes a gapped filtering stage
    /// (results are identical either way; ignored for ungapped
    /// filtering).
    #[serde(default)]
    pub filter_engine: FilterEngineKind,
    /// Extension stage.
    pub extension: ExtensionStage,
    /// Extension threshold `H_e`: alignments scoring below are dropped.
    pub extension_threshold: i64,
    /// Also search the reverse-complement strand of the query.
    pub both_strands: bool,
    /// Per-run resource budgets (unbounded by default).
    #[serde(default)]
    pub budget: ResourceBudget,
    /// Minimum intra-pair shard size in bases for the sharded seeding
    /// and seed-table builds (see [`crate::shard`]). Purely a
    /// performance knob: canonical output is byte-identical for every
    /// shard size. D-SOFT shard cuts are rounded up to whole D-SOFT
    /// chunks so diagonal-band counts never split across shards.
    #[serde(default = "default_shard_bases")]
    pub shard_bases: usize,
}

/// Serde default for [`WgaParams::shard_bases`].
fn default_shard_bases() -> usize {
    2048
}

impl WgaParams {
    /// Darwin-WGA defaults (Table II): gapped filtering + GACT-X.
    ///
    /// # Examples
    ///
    /// ```
    /// use wga_core::config::{FilterStage, WgaParams};
    ///
    /// let p = WgaParams::darwin_wga();
    /// match p.filter {
    ///     FilterStage::Gapped(g) => {
    ///         assert_eq!(g.tile_size, 320);
    ///         assert_eq!(g.band, 32);
    ///     }
    ///     _ => unreachable!(),
    /// }
    /// assert_eq!(p.extension_threshold, 4000);
    /// ```
    pub fn darwin_wga() -> WgaParams {
        WgaParams {
            scoring: SubstitutionMatrix::darwin_wga(),
            gaps: GapPenalties::darwin_wga(),
            seed_pattern: SeedPattern::lastz_default(),
            dsoft: DsoftParams::default(),
            max_seed_occurrences: 1000,
            filter: FilterStage::Gapped(GappedFilterParams::default()),
            filter_engine: FilterEngineKind::default(),
            extension: ExtensionStage::GactX(TilingParams::gactx_default()),
            extension_threshold: 4000,
            both_strands: false,
            budget: ResourceBudget::default(),
            shard_bases: default_shard_bases(),
        }
    }

    /// LASTZ-like baseline: identical scoring, seeding and extension, but
    /// *ungapped* filtering with LASTZ's default thresholds (3000).
    ///
    /// The extension stage is deliberately the same GACT-X configuration
    /// as [`WgaParams::darwin_wga`], so any sensitivity difference between
    /// the two pipelines is attributable to the filtering stage alone —
    /// the controlled comparison behind the paper's Table III claim that
    /// "the added sensitivity can be completely attributed to [the]
    /// gapped filtering stage" (§VI-B). Use [`WgaParams::lastz_ydrop`]
    /// for the untiled software extension LASTZ actually ships.
    pub fn lastz_baseline() -> WgaParams {
        WgaParams {
            filter: FilterStage::Ungapped(UngappedFilterParams::default()),
            extension_threshold: 3000,
            ..WgaParams::darwin_wga()
        }
    }

    /// LASTZ-like baseline with LASTZ's own untiled Y-drop software
    /// extension instead of GACT-X.
    pub fn lastz_ydrop() -> WgaParams {
        WgaParams {
            extension: ExtensionStage::Ydrop { y: 9430 },
            ..WgaParams::lastz_baseline()
        }
    }

    /// Sets the filter threshold (`H_f`), preserving everything else.
    pub fn with_filter_threshold(mut self, threshold: i64) -> WgaParams {
        match &mut self.filter {
            FilterStage::Gapped(p) => p.threshold = threshold,
            FilterStage::Ungapped(p) => p.threshold = threshold,
        }
        self
    }

    /// Sets the resource budget, preserving everything else.
    pub fn with_budget(mut self, budget: ResourceBudget) -> WgaParams {
        self.budget = budget;
        self
    }

    /// Selects the BSW filter implementation, preserving everything else.
    pub fn with_filter_engine(mut self, engine: FilterEngineKind) -> WgaParams {
        self.filter_engine = engine;
        self
    }

    /// Sets the minimum intra-pair shard size, preserving everything
    /// else.
    pub fn with_shard_bases(mut self, shard_bases: usize) -> WgaParams {
        self.shard_bases = shard_bases;
        self
    }

    /// Rejects degenerate configurations with a typed error.
    ///
    /// Called by [`crate::pipeline::WgaPipeline::try_new`], the assembly
    /// driver and the CLI, so library code never has to panic on a bad
    /// config deep inside a stage.
    ///
    /// # Errors
    ///
    /// Returns [`WgaError::Config`] naming the first degenerate field.
    ///
    /// # Examples
    ///
    /// ```
    /// use wga_core::config::WgaParams;
    ///
    /// assert!(WgaParams::darwin_wga().validate().is_ok());
    /// let mut p = WgaParams::darwin_wga();
    /// p.extension_threshold = -1;
    /// assert!(p.validate().is_err());
    /// ```
    pub fn validate(&self) -> WgaResult<()> {
        if self.seed_pattern.weight() == 0 {
            return Err(WgaError::config("seed pattern weight must be positive"));
        }
        if self.max_seed_occurrences == 0 {
            return Err(WgaError::config("max_seed_occurrences must be positive"));
        }
        if self.dsoft.chunk_size == 0 {
            return Err(WgaError::config("D-SOFT chunk size must be positive"));
        }
        if self.dsoft.bin_size == 0 {
            return Err(WgaError::config("D-SOFT bin size must be positive"));
        }
        if self.dsoft.threshold == 0 {
            return Err(WgaError::config("D-SOFT threshold must be positive"));
        }
        if self.dsoft.query_stride == 0 {
            return Err(WgaError::config("D-SOFT query stride must be positive"));
        }
        match self.filter {
            FilterStage::Gapped(f) => {
                if f.band == 0 {
                    return Err(WgaError::config("filter band width must be positive"));
                }
                if f.tile_size == 0 {
                    return Err(WgaError::config("filter tile size must be positive"));
                }
            }
            FilterStage::Ungapped(f) => {
                if f.xdrop < 0 {
                    return Err(WgaError::config("filter X-drop must be non-negative"));
                }
            }
        }
        match self.extension {
            ExtensionStage::GactX(t) => {
                if t.tile_size == 0 {
                    return Err(WgaError::config("extension tile size must be positive"));
                }
                if t.overlap >= t.tile_size {
                    return Err(WgaError::config(
                        "extension overlap must be smaller than the tile size",
                    ));
                }
                if t.y <= 0 {
                    return Err(WgaError::config("extension X-drop Y must be positive"));
                }
            }
            ExtensionStage::Gact { traceback_bytes } => {
                if traceback_bytes == 0 {
                    return Err(WgaError::config(
                        "GACT traceback memory must be positive",
                    ));
                }
            }
            ExtensionStage::Ydrop { y } => {
                if y <= 0 {
                    return Err(WgaError::config("Y-drop threshold must be positive"));
                }
            }
        }
        if self.extension_threshold < 0 {
            return Err(WgaError::config(
                "extension_threshold must be non-negative (alignments are scored locally)",
            ));
        }
        if self.shard_bases == 0 {
            return Err(WgaError::config("shard_bases must be positive"));
        }
        Ok(())
    }
}

impl Default for WgaParams {
    fn default() -> Self {
        WgaParams::darwin_wga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darwin_defaults_match_table_2() {
        let p = WgaParams::darwin_wga();
        assert_eq!(p.gaps.open, 430);
        assert_eq!(p.gaps.extend, 30);
        assert_eq!(p.seed_pattern.weight(), 12);
        match p.extension {
            ExtensionStage::GactX(t) => {
                assert_eq!(t.tile_size, 1920);
                assert_eq!(t.overlap, 128);
                assert_eq!(t.y, 9430);
            }
            _ => panic!("default extension must be GACT-X"),
        }
    }

    #[test]
    fn lastz_baseline_uses_ungapped_filter() {
        let p = WgaParams::lastz_baseline();
        assert!(matches!(p.filter, FilterStage::Ungapped(_)));
        assert_eq!(p.filter.threshold(), 3000);
        assert_eq!(p.extension_threshold, 3000);
    }

    fn assert_rejected(params: WgaParams, needle: &str) {
        let err = params.validate().expect_err("must reject");
        let text = err.to_string();
        assert!(text.contains(needle), "{text:?} lacks {needle:?}");
    }

    #[test]
    fn validate_accepts_shipped_configs() {
        for p in [
            WgaParams::darwin_wga(),
            WgaParams::lastz_baseline(),
            WgaParams::lastz_ydrop(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_zero_band() {
        let mut p = WgaParams::darwin_wga();
        p.filter = FilterStage::Gapped(GappedFilterParams {
            band: 0,
            ..GappedFilterParams::default()
        });
        assert_rejected(p, "band");
    }

    #[test]
    fn validate_rejects_zero_filter_tile() {
        let mut p = WgaParams::darwin_wga();
        p.filter = FilterStage::Gapped(GappedFilterParams {
            tile_size: 0,
            ..GappedFilterParams::default()
        });
        assert_rejected(p, "tile size");
    }

    #[test]
    fn validate_rejects_zero_seed_occurrences() {
        let mut p = WgaParams::darwin_wga();
        p.max_seed_occurrences = 0;
        assert_rejected(p, "max_seed_occurrences");
    }

    #[test]
    fn validate_rejects_negative_extension_threshold() {
        let mut p = WgaParams::darwin_wga();
        p.extension_threshold = -1;
        assert_rejected(p, "extension_threshold");
    }

    #[test]
    fn validate_rejects_degenerate_dsoft() {
        for mutate in [
            (|p: &mut WgaParams| p.dsoft.chunk_size = 0) as fn(&mut WgaParams),
            |p| p.dsoft.bin_size = 0,
            |p| p.dsoft.threshold = 0,
            |p| p.dsoft.query_stride = 0,
        ] {
            let mut p = WgaParams::darwin_wga();
            mutate(&mut p);
            assert!(p.validate().is_err());
        }
    }

    #[test]
    fn validate_rejects_degenerate_extension() {
        let mut p = WgaParams::darwin_wga();
        p.extension = ExtensionStage::GactX(align::gactx::TilingParams {
            tile_size: 128,
            overlap: 128,
            y: 9430,
            edge_traceback: false,
        });
        assert_rejected(p, "overlap");
        let mut p = WgaParams::darwin_wga();
        p.extension = ExtensionStage::Gact { traceback_bytes: 0 };
        assert_rejected(p, "traceback");
        let mut p = WgaParams::darwin_wga();
        p.extension = ExtensionStage::Ydrop { y: 0 };
        assert_rejected(p, "Y-drop");
    }

    #[test]
    fn budget_defaults_unbounded_and_deadline_check() {
        let b = ResourceBudget::unbounded();
        assert_eq!(b, ResourceBudget::default());
        assert!(!b.deadline_exceeded(Instant::now()));
        let tight = ResourceBudget {
            deadline: Some(Duration::from_nanos(1)),
            ..ResourceBudget::default()
        };
        let start = Instant::now() - Duration::from_millis(5);
        assert!(tight.deadline_exceeded(start));
        let p = WgaParams::darwin_wga().with_budget(tight);
        assert_eq!(p.budget.deadline, Some(Duration::from_nanos(1)));
        p.validate().unwrap();
    }

    #[test]
    fn filter_engine_defaults_batched_and_parses() {
        assert_eq!(
            WgaParams::darwin_wga().filter_engine,
            FilterEngineKind::Batched
        );
        assert_eq!(
            "scalar".parse::<FilterEngineKind>().unwrap(),
            FilterEngineKind::Scalar
        );
        assert_eq!(
            "batched".parse::<FilterEngineKind>().unwrap(),
            FilterEngineKind::Batched
        );
        assert_eq!(
            "simd".parse::<FilterEngineKind>().unwrap(),
            FilterEngineKind::Simd
        );
        assert!("avx".parse::<FilterEngineKind>().is_err());
        let p = WgaParams::darwin_wga().with_filter_engine(FilterEngineKind::Scalar);
        assert_eq!(p.filter_engine, FilterEngineKind::Scalar);
        p.validate().unwrap();
    }

    #[test]
    fn shard_bases_defaults_positive_and_validates() {
        let p = WgaParams::darwin_wga();
        assert!(p.shard_bases > 0);
        let p = p.with_shard_bases(4096);
        assert_eq!(p.shard_bases, 4096);
        p.validate().unwrap();
        let mut bad = WgaParams::darwin_wga();
        bad.shard_bases = 0;
        assert_rejected(bad, "shard_bases");
    }

    #[test]
    fn with_filter_threshold() {
        let p = WgaParams::darwin_wga().with_filter_threshold(3000);
        assert_eq!(p.filter.threshold(), 3000);
        let q = WgaParams::lastz_baseline().with_filter_threshold(500);
        assert_eq!(q.filter.threshold(), 500);
    }
}
