//! Typed errors for the whole-genome-alignment pipeline.
//!
//! Library code in `wga-core` reports failures through [`WgaError`]
//! instead of panicking: bad configurations, malformed inputs, I/O
//! failures, and checkpoint-journal problems all surface as values the
//! caller (the `wga` CLI, a service, a test harness) can handle. Panics
//! are reserved for programmer errors (violated invariants), and even
//! those are contained per worker batch / per chromosome pair by the
//! execution layer (see [`crate::parallel`] and
//! [`crate::genome_pipeline`]).

use std::fmt;
use std::io;

/// Convenience alias for results carrying a [`WgaError`].
pub type WgaResult<T> = Result<T, WgaError>;

/// Error produced by the pipeline, the assembly driver, or the
/// checkpoint journal.
#[derive(Debug)]
pub enum WgaError {
    /// The pipeline configuration is degenerate (zero band width, zero
    /// seed-pattern weight, negative extension threshold, …).
    Config(String),
    /// An input file or record is malformed.
    Input {
        /// What was being read (usually a path).
        context: String,
        /// Why it was rejected.
        message: String,
    },
    /// An underlying I/O operation failed.
    Io {
        /// What was being accessed (usually a path).
        context: String,
        /// The originating I/O error.
        source: io::Error,
    },
    /// The checkpoint journal is unusable (corrupt record, or written by
    /// a run with different parameters).
    Checkpoint {
        /// Journal path.
        path: String,
        /// Why it was rejected.
        message: String,
    },
}

impl WgaError {
    /// Builds a [`WgaError::Config`].
    pub fn config(message: impl Into<String>) -> WgaError {
        WgaError::Config(message.into())
    }

    /// Builds a [`WgaError::Input`].
    pub fn input(context: impl Into<String>, message: impl Into<String>) -> WgaError {
        WgaError::Input {
            context: context.into(),
            message: message.into(),
        }
    }

    /// Builds a [`WgaError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> WgaError {
        WgaError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a [`WgaError::Checkpoint`].
    pub fn checkpoint(path: impl Into<String>, message: impl Into<String>) -> WgaError {
        WgaError::Checkpoint {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for WgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WgaError::Config(message) => write!(f, "invalid configuration: {message}"),
            WgaError::Input { context, message } => write!(f, "{context}: {message}"),
            WgaError::Io { context, source } => write!(f, "{context}: {source}"),
            WgaError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
        }
    }
}

impl std::error::Error for WgaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WgaError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = WgaError::config("band must be positive");
        assert_eq!(e.to_string(), "invalid configuration: band must be positive");
        let e = WgaError::input("x.fa", "no records");
        assert_eq!(e.to_string(), "x.fa: no records");
        let e = WgaError::checkpoint("run.journal", "parameter mismatch");
        assert_eq!(e.to_string(), "checkpoint run.journal: parameter mismatch");
    }

    #[test]
    fn io_preserves_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = WgaError::io("run.journal", inner);
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
