//! Deadlock fixture (clean): a linear producer → worker → collector
//! chain. Expected: 3 queues, 2 edges, 0 cycles, 0 sites.

pub fn execute() {
    let in_q: BoundedQueue<u32> = BoundedQueue::new(4);
    let mid_q: BoundedQueue<u32> = BoundedQueue::new(4);
    let out_q: BoundedQueue<u32> = BoundedQueue::new(4);
    scope(|s| {
        s.spawn(move || produce(&in_q));
        s.spawn(move || stage(&in_q, &mid_q));
        s.spawn(move || finish(&mid_q, &out_q));
        s.spawn(move || collect(&out_q));
    });
}

fn produce(in_q: &BoundedQueue<u32>) {
    for i in 0..8 {
        let _ = in_q.push(i);
    }
}

fn stage(in_q: &BoundedQueue<u32>, mid_q: &BoundedQueue<u32>) {
    while let Some(x) = in_q.pop() {
        deposit(mid_q, x);
    }
}

fn deposit(mid_q: &BoundedQueue<u32>, x: u32) {
    let mut slot = cells(x).lock();
    *slot += 1;
    drop(slot);
    let _ = mid_q.push(x); // fine: the guard is dropped first
}

fn finish(mid_q: &BoundedQueue<u32>, out_q: &BoundedQueue<u32>) {
    while let Some(x) = mid_q.pop() {
        let _ = out_q.push(x);
    }
}

fn collect(out_q: &BoundedQueue<u32>) {
    while out_q.pop().is_some() {}
}
