//! `wga` — command-line whole-genome aligner.
//!
//! ```text
//! wga generate <prefix> [--len N] [--distance D] [--seed S] [--chroms C]
//!     Write a synthetic species pair to <prefix>.target.fa /
//!     <prefix>.query.fa plus <prefix>.exons.tsv with the ground-truth
//!     conserved elements.
//!
//! wga align <target.fa> <query.fa> [--baseline] [--threads N] [--maf out.maf]
//!           [--executor barrier|dataflow] [--queue-depth N]
//!           [--metrics-out metrics.json] [--trace-out trace.jsonl]
//!           [--progress]
//!           [--filter-engine scalar|batched|simd] [--shard-size N]
//!           [--checkpoint run.journal]
//!           [--max-seed-hits N] [--max-filter-tiles N]
//!           [--max-extension-cells N] [--deadline-ms N]
//!           [--fault-plan plan.json] [--max-retries N] [--stall-timeout-ms N]
//!     Align query to target with Darwin-WGA (or the LASTZ-like baseline
//!     with --baseline); print a run summary and the top chains; write
//!     MAF if requested. --threads parallelises the filter stage of each
//!     chromosome pair. --executor picks the execution engine: `barrier`
//!     (default) fans out only the filter stage; `dataflow` streams
//!     seeding, filtering and extension concurrently through bounded
//!     queues of capacity --queue-depth (results are byte-identical
//!     either way). --metrics-out writes the executor's per-stage
//!     telemetry as JSON (every executor). --trace-out writes one JSON
//!     line per pipeline span plus latency histograms (see DESIGN.md
//!     "Observability"). --progress keeps a throttled one-line status on
//!     stderr: pairs done, live cells/s, filter survival, ETA. Neither
//!     flag changes results. --filter-engine picks the BSW
//!     implementation for gapped filtering (default `batched`, the
//!     wavefront engine; `simd` runs it with explicit SSE2/AVX2 lanes,
//!     falling back to `batched` where unsupported; results are
//!     identical in every case). --shard-size sets the minimum bases per
//!     intra-pair shard for seeding/filtering/extension work items
//!     (default 2048; purely a scheduling knob, output is byte-identical
//!     for any value). --checkpoint
//!     makes completed pairs durable in a journal so an interrupted run
//!     resumes where it left off. The --max-*/--deadline-ms budgets
//!     bound work per pair; a tripped budget degrades the run
//!     (truncating the worst-scoring work first) instead of aborting it.
//!     --fault-plan (or the WGA_FAULT_PLAN env var) loads a
//!     deterministic fault-injection plan for chaos testing (see
//!     DESIGN.md "Fault injection & supervision"). --max-retries sets
//!     the supervised retry budget per fault site (default 1);
//!     --stall-timeout-ms arms the dataflow stall watchdog (0, the
//!     default, disables it). The MAF, metrics and trace artifacts are
//!     written atomically (tmp + fsync + rename), so an interrupted run
//!     never leaves a torn output file.
//!
//! wga exons <alignments.maf> <exons.tsv> [--coverage F]
//!     Score exon recovery: which intervals from a `wga generate`
//!     exons.tsv are covered (≥ F, default 0.5) by the MAF's alignments.
//!
//! wga many <genome1.fa> <genome2.fa> [more.fa ...] [--knn K]
//!          [--paf-out out.paf] [--report-out report.txt]
//!          [--per-pair-index] [--baseline] [--threads N]
//!          [--executor barrier|dataflow] [--queue-depth N]
//!          [--filter-engine scalar|batched|simd] [--shard-size N]
//!          [--checkpoint dir] [--fault-plan plan.json]
//!          [--max-retries N] [--stall-timeout-ms N]
//!     Many-genome mode: align every unordered pair of the genome set
//!     through the pairwise pipeline, sharing one lazily-built seed
//!     index across the whole matrix (the k-mer frequency cap scales
//!     with genome count). --knn K aligns only pairs where either
//!     genome ranks the other among its K nearest by sketch distance.
//!     Overlapping alignments are deduplicated by a plane sweep;
//!     --paf-out writes the survivors as PAF and --report-out the
//!     canonical report, both atomically. --checkpoint names a
//!     *directory* holding one journal per genome pair, so an
//!     interrupted run resumes at pair granularity. --per-pair-index
//!     rebuilds seed tables per pair instead of sharing (same bytes
//!     out; exists to test the equivalence). Output is byte-identical
//!     across executors, thread counts, shard sizes and index modes.
//!     --progress keeps a throttled matrix-wide status line on stderr
//!     (chromosome pairs done across all genome pairs, ETA).
//!
//! wga profile report <trace.jsonl> [--json out.json] [--baseline out.json]
//!                    [--top K] [--max-drift-centi N]
//!     Analyse a --trace-out artifact: per-stage time attribution,
//!     busy/queue-wait/idle per worker, a critical-path estimate
//!     through seed -> filter -> extend, the K slowest filter batches
//!     and extension tiles, speculation-discard and fault rollups, and
//!     the modeled-vs-measured drift score (the trace-extracted
//!     workload replayed through hwsim's cycle models vs the hwsim.*
//!     spans the run recorded; integer centi-percent). --json (or
//!     --baseline, for capturing a reference) writes the deterministic,
//!     integer-only profile_report.json atomically; the same trace
//!     always produces byte-identical JSON. --max-drift-centi N exits
//!     nonzero when any stage drifts above N centi-percent — and also
//!     when the trace carries no hwsim spans at all, so a dropped span
//!     cannot silently disable the gate.
//!
//! wga profile diff <old.json> <new.json> [--max-share-regression-centi N]
//!                  [--max-drift-regression-centi N]
//!     Compare two profile_report.json artifacts and exit nonzero on
//!     regression: a stage's share of pipeline time growing by more
//!     than the share threshold (default 500 = 5 points), a drift
//!     score growing by more than the drift threshold (default 100 =
//!     1 point), or a drift signal disappearing outright.
//! ```

use darwin_wga::chain::chainer::chain_alignments;
use darwin_wga::chain::metrics;
use darwin_wga::core::dataflow::{ExecutorKind, DEFAULT_QUEUE_DEPTH};
use darwin_wga::core::durable;
use darwin_wga::core::error::WgaError;
use darwin_wga::core::faultsim::{FaultInjector, FaultPlan, Hook, PAIRLESS};
use darwin_wga::core::genome_pipeline::{align_assemblies_observed, AlignOptions};
use darwin_wga::core::obs::{Obs, ProgressMeter, SpanName, TraceRecorder, STRAND_NA};
use darwin_wga::core::report::RunOutcome;
use darwin_wga::core::supervise::{self, RetryPolicy};
use darwin_wga::core::{config::WgaParams, maf};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use darwin_wga::genome::{fasta, Sequence};
use darwin_wga::hwsim;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("align") => cmd_align(&args[1..]),
        Some("exons") => cmd_exons(&args[1..]),
        Some("many") => cmd_many(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  wga generate <prefix> [--len N] [--distance D] [--seed S]
  wga align <target.fa> <query.fa> [--baseline] [--threads N] [--maf out.maf]
            [--executor barrier|dataflow] [--queue-depth N]
            [--metrics-out metrics.json] [--trace-out trace.jsonl] [--progress]
            [--filter-engine scalar|batched|simd] [--shard-size N]
            [--checkpoint run.journal]
            [--max-seed-hits N] [--max-filter-tiles N]
            [--max-extension-cells N] [--deadline-ms N]
            [--fault-plan plan.json] [--max-retries N] [--stall-timeout-ms N]
  wga exons <alignments.maf> <exons.tsv> [--coverage F]
  wga many <genome1.fa> <genome2.fa> [more.fa ...] [--knn K]
           [--paf-out out.paf] [--report-out report.txt] [--per-pair-index]
           [--baseline] [--threads N] [--executor barrier|dataflow]
           [--queue-depth N] [--filter-engine scalar|batched|simd]
           [--shard-size N] [--checkpoint dir] [--fault-plan plan.json]
           [--max-retries N] [--stall-timeout-ms N] [--progress]
  wga profile report <trace.jsonl> [--json out.json] [--baseline out.json]
                     [--top K] [--max-drift-centi N]
  wga profile diff <old.json> <new.json>
                   [--max-share-regression-centi N]
                   [--max-drift-regression-centi N]
";

/// Pulls `--flag value` out of an argument list.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_opt<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_opt(args, flag)? {
        Some(v) => v.parse().map_err(|_| format!("invalid value for {flag}: {v}")),
        None => Ok(default),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let len: usize = parse_opt(&mut args, "--len", 100_000)?;
    let distance: f64 = parse_opt(&mut args, "--distance", 0.3)?;
    let seed: u64 = parse_opt(&mut args, "--seed", 42)?;
    let chroms: usize = parse_opt(&mut args, "--chroms", 1)?;
    let prefix = args
        .first()
        .ok_or_else(|| format!("generate needs an output prefix\n{USAGE}"))?;
    if chroms == 0 {
        return Err("--chroms must be at least 1".into());
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut target_records = Vec::new();
    let mut query_records = Vec::new();
    let mut exons = String::from("#chrom\tlabel\tstart\tend\n");
    let (mut t_total, mut q_total, mut exon_total) = (0usize, 0usize, 0usize);
    for c in 0..chroms {
        let pair = SyntheticPair::generate(
            len / chroms,
            &EvolutionParams::at_distance(distance),
            &mut rng,
        );
        let make = |name: String, seq: &Sequence| fasta::Record {
            description: format!("{name} synthetic len={} distance={distance}", seq.len()),
            name,
            sequence: seq.clone(),
        };
        target_records.push(make(format!("chr{}", c + 1), &pair.target.sequence));
        query_records.push(make(format!("chr{}", c + 1), &pair.query.sequence));
        for iv in &pair.target.conserved {
            exons.push_str(&format!(
                "chr{}\t{}\t{}\t{}\n",
                c + 1,
                iv.label,
                iv.start,
                iv.end
            ));
            exon_total += 1;
        }
        t_total += pair.target.sequence.len();
        q_total += pair.query.sequence.len();
    }

    let write_fa = |path: &str, records: &[fasta::Record]| -> Result<(), String> {
        let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        fasta::write(BufWriter::new(file), records).map_err(|e| format!("{path}: {e}"))
    };
    write_fa(&format!("{prefix}.target.fa"), &target_records)?;
    write_fa(&format!("{prefix}.query.fa"), &query_records)?;
    let exon_path = format!("{prefix}.exons.tsv");
    std::fs::write(&exon_path, exons).map_err(|e| format!("{exon_path}: {e}"))?;

    println!(
        "wrote {prefix}.target.fa ({t_total} bp), {prefix}.query.fa ({q_total} bp), {exon_total} exons across {chroms} chromosome(s)"
    );
    Ok(())
}

fn read_assembly(path: &str) -> Result<Assembly, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let assembly =
        Assembly::from_fasta(name, BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    if assembly.is_empty() {
        return Err(format!("{path}: no records"));
    }
    Ok(assembly)
}

fn cmd_exons(args: &[String]) -> Result<(), String> {
    use darwin_wga::chain::chainer::Chain;
    use darwin_wga::chain::metrics::exon_recovery;
    use darwin_wga::genome::annotation::Interval;

    let mut args = args.to_vec();
    let coverage: f64 = parse_opt(&mut args, "--coverage", 0.5)?;
    if args.len() != 2 {
        return Err(format!("exons needs <alignments.maf> <exons.tsv>\n{USAGE}"));
    }
    let maf_file = File::open(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    let blocks =
        maf::read_maf(BufReader::new(maf_file)).map_err(|e| format!("{}: {e}", args[0]))?;

    // Group alignments per target chromosome.
    use std::collections::HashMap;
    let mut per_chrom: HashMap<String, Vec<darwin_wga::align::Alignment>> = HashMap::new();
    for b in blocks {
        per_chrom.entry(b.target.name.clone()).or_default().push(b.alignment);
    }

    // Parse the exon table: chrom \t label \t start \t end (or the
    // single-chromosome 3-column form: label \t start \t end).
    let text = std::fs::read_to_string(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
    let mut exons_per_chrom: HashMap<String, Vec<Interval>> = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let (chrom, label, start, end) = match fields.len() {
            4 => (fields[0].to_string(), fields[1], fields[2], fields[3]),
            3 => ("chr1".to_string(), fields[0], fields[1], fields[2]),
            _ => return Err(format!("{}: bad line: {line}", args[1])),
        };
        let start: usize = start.parse().map_err(|_| format!("bad start in: {line}"))?;
        let end: usize = end.parse().map_err(|_| format!("bad end in: {line}"))?;
        exons_per_chrom
            .entry(chrom)
            .or_default()
            .push(Interval::new(start, end, label));
    }

    let (mut found, mut total) = (0usize, 0usize);
    let mut chroms: Vec<&String> = exons_per_chrom.keys().collect();
    chroms.sort();
    for chrom in chroms {
        let exons = &exons_per_chrom[chrom];
        let empty = Vec::new();
        let alignments = per_chrom.get(chrom).unwrap_or(&empty);
        // Treat each alignment as its own chain for coverage purposes.
        let chains: Vec<Chain> = (0..alignments.len())
            .map(|i| Chain { members: vec![i], score: alignments[i].score })
            .collect();
        let r = exon_recovery(&chains, alignments, exons, coverage);
        println!(
            "{chrom}: {}/{} exons covered at >= {:.0}%",
            r.found,
            r.total,
            coverage * 100.0
        );
        found += r.found;
        total += r.total;
    }
    println!(
        "total: {found}/{total} ({:.1}%)",
        found as f64 / total.max(1) as f64 * 100.0
    );
    Ok(())
}

fn cmd_align(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let baseline = take_flag(&mut args, "--baseline");
    let threads: usize = parse_opt(&mut args, "--threads", 1)?;
    let executor: ExecutorKind = parse_opt(&mut args, "--executor", ExecutorKind::Barrier)?;
    let queue_depth: usize = parse_opt(&mut args, "--queue-depth", DEFAULT_QUEUE_DEPTH)?;
    let metrics_out = take_opt(&mut args, "--metrics-out")?;
    let trace_out = take_opt(&mut args, "--trace-out")?;
    let progress = take_flag(&mut args, "--progress");
    let maf_path = take_opt(&mut args, "--maf")?;
    let filter_engine = take_opt(&mut args, "--filter-engine")?;
    let shard_size = take_opt(&mut args, "--shard-size")?;
    let checkpoint = take_opt(&mut args, "--checkpoint")?;
    let max_seed_hits = take_opt(&mut args, "--max-seed-hits")?;
    let max_filter_tiles = take_opt(&mut args, "--max-filter-tiles")?;
    let max_extension_cells = take_opt(&mut args, "--max-extension-cells")?;
    let deadline_ms = take_opt(&mut args, "--deadline-ms")?;
    let fault_plan_path =
        take_opt(&mut args, "--fault-plan")?.or_else(|| std::env::var("WGA_FAULT_PLAN").ok());
    let max_retries: u32 = parse_opt(&mut args, "--max-retries", 1)?;
    let stall_timeout_ms: u64 = parse_opt(&mut args, "--stall-timeout-ms", 0)?;
    if args.len() != 2 {
        return Err(format!("align needs <target.fa> <query.fa>\n{USAGE}"));
    }
    let parse_u64 = |flag: &str, v: Option<String>| -> Result<Option<u64>, String> {
        v.map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value for {flag}: {v}"))
        })
        .transpose()
    };

    let fault_plan = fault_plan_path
        .map(|p| FaultPlan::from_file(std::path::Path::new(&p)).map_err(|e| e.to_string()))
        .transpose()?
        .map(Arc::new);
    // The executors build their own injector from `options.fault_plan`;
    // this one serves the CLI-side hooks (FASTA reads and the
    // metrics/trace sinks). Occurrence spaces are disjoint by hook, so
    // the split never double-injects.
    let cli_injector = fault_plan
        .as_ref()
        .map(|plan| FaultInjector::new((**plan).clone(), max_retries));
    let retry_policy = cli_injector.as_ref().map_or(
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        },
        FaultInjector::policy,
    );

    let read_supervised = |path: &str| -> Result<Assembly, String> {
        supervise::retry_io(
            &retry_policy,
            Hook::FastaRead.code() << 32,
            |_| {
                if let Some(inj) = cli_injector.as_ref() {
                    inj.count_retry(PAIRLESS);
                }
            },
            || {
                if let Some(inj) = cli_injector.as_ref() {
                    inj.gate_io(Hook::FastaRead, PAIRLESS, None)?;
                }
                read_assembly(path).map_err(WgaError::config)
            },
        )
        .map_err(|e| e.to_string())
    };
    let target = read_supervised(&args[0])?;
    let query = read_supervised(&args[1])?;

    let mut params = if baseline {
        WgaParams::lastz_baseline()
    } else {
        WgaParams::darwin_wga()
    };
    if let Some(engine) = filter_engine {
        params.filter_engine = engine.parse()?;
    }
    if let Some(shard) = shard_size {
        params.shard_bases = shard
            .parse()
            .map_err(|_| format!("invalid value for --shard-size: {shard}"))?;
    }
    params.budget.max_seed_hits = parse_u64("--max-seed-hits", max_seed_hits)?;
    params.budget.max_filter_tiles = parse_u64("--max-filter-tiles", max_filter_tiles)?;
    params.budget.max_extension_cells = parse_u64("--max-extension-cells", max_extension_cells)?;
    params.budget.deadline = parse_u64("--deadline-ms", deadline_ms)?
        .map(std::time::Duration::from_millis);
    params.validate().map_err(|e| e.to_string())?;
    // Stage each output's tmp sibling up front so an unwritable path
    // fails before the run, not after hours of alignment; the final
    // writes go through the atomic tmp+rename path in `durable`.
    let check_out = |path: &Option<String>| -> Result<(), String> {
        if let Some(p) = path {
            durable::pre_open_check(std::path::Path::new(p)).map_err(|e| e.to_string())?;
        }
        Ok(())
    };
    check_out(&metrics_out)?;
    check_out(&trace_out)?;
    check_out(&maf_path)?;
    let recorder: Option<Arc<TraceRecorder>> =
        (trace_out.is_some() || progress).then(TraceRecorder::new).map(Arc::new);
    let obs = match &recorder {
        Some(rec) => Obs::new(rec.as_ref()),
        None => Obs::off(),
    };
    let meter = if progress {
        recorder
            .clone()
            .map(|rec| ProgressMeter::start(rec, std::time::Duration::from_millis(200)))
    } else {
        None
    };
    let options = AlignOptions {
        threads,
        checkpoint: checkpoint.map(std::path::PathBuf::from),
        executor,
        queue_depth,
        max_retries,
        stall_timeout_ms,
        fault_plan: fault_plan.clone(),
    };
    eprintln!(
        "aligning {} ({} chromosomes, {} bp) vs {} ({} chromosomes, {} bp) with {}...",
        target.name,
        target.len(),
        target.total_bases(),
        query.name,
        query.len(),
        query.total_bases(),
        if baseline { "LASTZ-like baseline" } else { "Darwin-WGA" },
    );

    let start = std::time::Instant::now();
    let result = align_assemblies_observed(&params, &target, &query, &options, obs);
    if let Some(meter) = meter {
        meter.finish();
    }
    let report = result.map_err(|e| e.to_string())?;
    let wall = start.elapsed();

    println!("== run summary");
    println!("wall time:          {wall:?}");
    println!("seeds queried:      {}", report.workload.seeds);
    println!("filter tiles:       {}", report.workload.filter_tiles);
    println!("alignments:         {}", report.alignments.len());
    println!("matched base pairs: {}", report.total_matches());
    let completed = report.pairs.len() - report.degraded_pairs() - report.failed_pairs();
    println!(
        "chromosome pairs:   {} completed, {} degraded, {} failed ({} resumed from checkpoint)",
        completed,
        report.degraded_pairs(),
        report.failed_pairs(),
        report.resumed_pairs
    );
    if let Some(metrics) = &report.stage_metrics {
        println!("{}", metrics.summary());
        if let Some(path) = metrics_out.as_ref() {
            write_sink(
                path,
                format!("{}\n", metrics.to_json()).as_bytes(),
                Hook::MetricsSink,
                cli_injector.as_ref(),
                &retry_policy,
            )?;
            println!("stage metrics written to {path}");
        }
    }
    for pair in &report.pairs {
        match &pair.outcome {
            RunOutcome::Completed => {}
            RunOutcome::Degraded { events } => eprintln!(
                "warning: {} vs {}: degraded ({} budget/batch events)",
                pair.target_chrom,
                pair.query_chrom,
                events.len()
            ),
            RunOutcome::Failed { error } => eprintln!(
                "warning: {} vs {}: failed: {error}",
                pair.target_chrom, pair.query_chrom
            ),
        }
    }

    // Per chromosome pair: chain and summarise.
    let qn = query.chromosomes().len();
    let mut chain_buf = obs.buffer();
    for (ti, tchrom) in target.chromosomes().iter().enumerate() {
        for (qi, qchrom) in query.chromosomes().iter().enumerate() {
            let alignments: Vec<_> = report
                .for_pair(&tchrom.name, &qchrom.name)
                .iter()
                .map(|la| la.aligned.alignment.clone())
                .collect();
            if alignments.is_empty() {
                continue;
            }
            let chain_timer = chain_buf.start();
            let chains = chain_alignments(&alignments, 3000);
            chain_buf.finish_for_pair(
                chain_timer,
                SpanName::Chain,
                (ti * qn + qi) as u64,
                STRAND_NA,
                0,
                chains.len() as u64,
                alignments.len() as u64,
            );
            println!(
                "== {} vs {}: {} alignments, {} chains, {} unique matched bp",
                tchrom.name,
                qchrom.name,
                alignments.len(),
                chains.len(),
                metrics::unique_matched_bases(&chains, &alignments)
            );
            for (i, chain) in chains.iter().take(5).enumerate() {
                let (t0, t1) = chain.target_span(&alignments);
                println!(
                    "   chain {:>2}: score {:>10}  members {:>3}  {}:{}..{}",
                    i + 1,
                    chain.score,
                    chain.len(),
                    tchrom.name,
                    t0,
                    t1
                );
            }
        }
    }
    chain_buf.flush();

    if let Some(path) = maf_path {
        // Rendered fully in memory, then placed atomically: a crash
        // mid-run can never leave a torn MAF at the destination.
        let mut out: Vec<u8> = Vec::new();
        writeln!(out, "##maf version=1 scoring=darwin-wga").map_err(|e| format!("{path}: {e}"))?;
        for tchrom in target.chromosomes() {
            for qchrom in query.chromosomes() {
                let aligned: Vec<_> = report
                    .for_pair(&tchrom.name, &qchrom.name)
                    .iter()
                    .map(|la| la.aligned.clone())
                    .collect();
                if aligned.is_empty() {
                    continue;
                }
                maf::write_maf_blocks(
                    &mut out,
                    &tchrom.name,
                    &tchrom.sequence,
                    &qchrom.name,
                    &qchrom.sequence,
                    &aligned,
                )
                .map_err(|e| format!("{path}: {e}"))?;
            }
        }
        durable::write_atomic(std::path::Path::new(&path), &out)
            .map_err(|e| e.to_string())?;
        println!("MAF written to {path}");
    }

    if let Some(rec) = &recorder {
        // Roll the measured workload through the accelerator cycle models
        // and record the result as hwsim spans before the trace is
        // written.
        let acc = hwsim::AcceleratorConfig::fpga();
        let modeled = hwsim::perf::modeled_cycles(&report.workload, &acc);
        obs.hwsim_spans(
            modeled.bsw_tiles,
            modeled.bsw_cycles,
            modeled.gactx_tiles,
            modeled.gactx_cycles,
        );
        if let Some(path) = trace_out.as_ref() {
            let mut buf: Vec<u8> = Vec::new();
            rec.write_trace(&mut buf).map_err(|e| format!("{path}: {e}"))?;
            write_sink(path, &buf, Hook::TraceSink, cli_injector.as_ref(), &retry_policy)?;
            println!("trace written to {path}");
        }
    }
    Ok(())
}

fn cmd_many(args: &[String]) -> Result<(), String> {
    use darwin_wga::core::pangenome::{self, ManyOptions};

    let mut args = args.to_vec();
    let baseline = take_flag(&mut args, "--baseline");
    let progress = take_flag(&mut args, "--progress");
    let per_pair_index = take_flag(&mut args, "--per-pair-index");
    let threads: usize = parse_opt(&mut args, "--threads", 1)?;
    let executor: ExecutorKind = parse_opt(&mut args, "--executor", ExecutorKind::Barrier)?;
    let queue_depth: usize = parse_opt(&mut args, "--queue-depth", DEFAULT_QUEUE_DEPTH)?;
    let knn = take_opt(&mut args, "--knn")?
        .map(|v| v.parse::<usize>().map_err(|_| format!("invalid value for --knn: {v}")))
        .transpose()?;
    let paf_out = take_opt(&mut args, "--paf-out")?;
    let report_out = take_opt(&mut args, "--report-out")?;
    let filter_engine = take_opt(&mut args, "--filter-engine")?;
    let shard_size = take_opt(&mut args, "--shard-size")?;
    let checkpoint_dir = take_opt(&mut args, "--checkpoint")?;
    let fault_plan_path =
        take_opt(&mut args, "--fault-plan")?.or_else(|| std::env::var("WGA_FAULT_PLAN").ok());
    let max_retries: u32 = parse_opt(&mut args, "--max-retries", 1)?;
    let stall_timeout_ms: u64 = parse_opt(&mut args, "--stall-timeout-ms", 0)?;
    if args.len() < 2 {
        return Err(format!("many needs at least two genome FASTAs\n{USAGE}"));
    }

    let mut params = if baseline {
        WgaParams::lastz_baseline()
    } else {
        WgaParams::darwin_wga()
    };
    if let Some(engine) = filter_engine {
        params.filter_engine = engine.parse()?;
    }
    if let Some(shard) = shard_size {
        params.shard_bases = shard
            .parse()
            .map_err(|_| format!("invalid value for --shard-size: {shard}"))?;
    }
    params.validate().map_err(|e| e.to_string())?;
    let fault_plan = fault_plan_path
        .map(|p| FaultPlan::from_file(std::path::Path::new(&p)).map_err(|e| e.to_string()))
        .transpose()?
        .map(Arc::new);

    // Fail unwritable outputs before the run, not after it.
    for path in [&paf_out, &report_out].into_iter().flatten() {
        durable::pre_open_check(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    }

    let genomes: Vec<Assembly> = args
        .iter()
        .map(|path| read_assembly(path))
        .collect::<Result<_, _>>()?;
    let options = ManyOptions {
        threads,
        executor,
        queue_depth,
        max_retries,
        stall_timeout_ms,
        fault_plan,
        checkpoint_dir: checkpoint_dir.map(std::path::PathBuf::from),
        knn,
        shared_index: !per_pair_index,
    };
    eprintln!(
        "many-genome alignment: {} genomes, {} total bp, knn={}...",
        genomes.len(),
        genomes.iter().map(Assembly::total_bases).sum::<usize>(),
        knn.map_or("all".to_string(), |k| k.to_string()),
    );

    // --progress runs the whole matrix under a trace recorder: the
    // orchestrator announces the grand chromosome-pair total up front
    // and the meter renders pairs-done / ETA across genome pairs.
    let recorder: Option<Arc<TraceRecorder>> = progress.then(TraceRecorder::new).map(Arc::new);
    let obs = match &recorder {
        Some(rec) => Obs::new(rec.as_ref()),
        None => Obs::off(),
    };
    let meter = recorder
        .clone()
        .map(|rec| ProgressMeter::start(rec, std::time::Duration::from_millis(200)));

    let start = std::time::Instant::now();
    let result = pangenome::align_many_observed(&params, &genomes, &options, obs);
    if let Some(meter) = meter {
        meter.finish();
    }
    let report = result.map_err(|e| e.to_string())?;
    let wall = start.elapsed();

    println!("== many-genome summary");
    println!("wall time: {wall:?}");
    println!("{}", report.summary());
    for pair in report.pairs.iter().filter(|p| p.failed > 0) {
        eprintln!(
            "warning: {} vs {}: {} chromosome pair(s) failed",
            pair.target_genome, pair.query_genome, pair.failed
        );
    }
    if let Some(path) = report_out {
        durable::write_atomic(std::path::Path::new(&path), report.canonical_text().as_bytes())
            .map_err(|e| e.to_string())?;
        println!("canonical report written to {path}");
    }
    if let Some(path) = paf_out {
        let paf = pangenome::paf::paf_text(&report, &genomes);
        durable::write_atomic(std::path::Path::new(&path), paf.as_bytes())
            .map_err(|e| e.to_string())?;
        println!("PAF written to {path}");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    use darwin_wga::profile::{diff as pdiff, ProfileReport, TraceFile};

    match args.first().map(String::as_str) {
        Some("report") => {
            let mut args = args[1..].to_vec();
            let json_out = take_opt(&mut args, "--json")?;
            let baseline_out = take_opt(&mut args, "--baseline")?;
            let top: usize = parse_opt(&mut args, "--top", 5)?;
            let max_drift: Option<u64> = take_opt(&mut args, "--max-drift-centi")?
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("invalid value for --max-drift-centi: {v}"))
                })
                .transpose()?;
            let [trace_path] = args.as_slice() else {
                return Err(format!("profile report needs one <trace.jsonl>\n{USAGE}"));
            };

            let file = File::open(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
            let trace = TraceFile::read(BufReader::new(file))
                .map_err(|e| format!("{trace_path}: {e}"))?;
            let report = ProfileReport::build(&trace, top);
            print!("{}", report.render_table());
            for path in [&json_out, &baseline_out].into_iter().flatten() {
                durable::write_atomic(std::path::Path::new(path), report.to_json().as_bytes())
                    .map_err(|e| e.to_string())?;
                println!("profile report written to {path}");
            }
            if let Some(limit) = max_drift {
                // No hwsim spans means no gate signal: fail loudly so a
                // dropped span can't turn the CI gate into a no-op.
                let worst = report.drift.max_gated_centi().ok_or_else(|| {
                    format!("{trace_path}: no hwsim.* spans in trace; cannot gate drift")
                })?;
                if worst > limit {
                    return Err(format!(
                        "drift gate failed: worst stage drift {worst} centi-% exceeds --max-drift-centi {limit}"
                    ));
                }
                println!("drift gate: worst stage drift {worst} centi-% within limit {limit}");
            }
            Ok(())
        }
        Some("diff") => {
            let mut args = args[1..].to_vec();
            let thresholds = pdiff::Thresholds {
                share_regression_centi: parse_opt(
                    &mut args,
                    "--max-share-regression-centi",
                    pdiff::Thresholds::default().share_regression_centi,
                )?,
                drift_regression_centi: parse_opt(
                    &mut args,
                    "--max-drift-regression-centi",
                    pdiff::Thresholds::default().drift_regression_centi,
                )?,
            };
            let [old_path, new_path] = args.as_slice() else {
                return Err(format!("profile diff needs <old.json> <new.json>\n{USAGE}"));
            };
            let load = |path: &str| -> Result<pdiff::ReportSummary, String> {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                pdiff::ReportSummary::from_json(&text).map_err(|e| format!("{path}: {e}"))
            };
            let outcome = pdiff::diff(&load(old_path)?, &load(new_path)?, &thresholds);
            print!("{}", outcome.render());
            if outcome.is_pass() {
                Ok(())
            } else {
                Err(format!(
                    "profile diff found {} regression(s)",
                    outcome.regressions.len()
                ))
            }
        }
        _ => Err(format!("profile needs a 'report' or 'diff' subcommand\n{USAGE}")),
    }
}

/// Writes one output artifact atomically under supervision: the write is
/// retried with the run's backoff policy, and chaos runs inject
/// `metrics.sink` / `trace.sink` faults through the gate inside
/// [`durable::write_atomic_gated`].
fn write_sink(
    path: &str,
    bytes: &[u8],
    hook: Hook,
    injector: Option<&FaultInjector>,
    policy: &RetryPolicy,
) -> Result<(), String> {
    supervise::retry_io(
        policy,
        hook.code() << 32,
        |_| {
            if let Some(inj) = injector {
                inj.count_retry(PAIRLESS);
            }
        },
        || durable::write_atomic_gated(std::path::Path::new(path), bytes, injector.map(|inj| (inj, hook))),
    )
    .map_err(|e| e.to_string())
}
