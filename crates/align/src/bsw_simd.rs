//! Explicit-SIMD wavefront BSW — 16-bit anti-diagonal lanes (§IV).
//!
//! The paper's systolic array updates every cell of an anti-diagonal in
//! the same cycle. [`crate::bsw_fast`] transcribes that dataflow into a
//! branch-free scalar loop the compiler autovectorises at the x86-64
//! baseline (SSE2, four `i32` lanes); this module replaces the inner loop
//! with *explicit* `std::arch` intrinsics over saturating `i16` lanes —
//! eight per SSE2 vector, sixteen per AVX2 vector — which is the lane
//! layout real CPU Smith-Waterman engines use.
//!
//! # Exactness
//!
//! The `i16` kernel is bit-identical to the `i32` wavefront (and hence to
//! the scalar reference) whenever the guard below holds, because:
//!
//! * cell scores are bounded: `0 <= V(i,j) <= min(n, m) * max_match`
//!   (a local alignment of `min(n, m)` pairs, each scoring at most
//!   `max_match`, with non-negative gap penalties), so when
//!   `min(n, m) * max_match <= i16::MAX` no `V` value and no
//!   substitution candidate `V_diag + s` can overflow;
//! * gap chains use *saturating* subtraction: a chain value below
//!   `i16::MIN` clamps to the floor instead of wrapping, and any floored
//!   value is strictly dominated by the always-available open move
//!   `V - (open + extend) >= -(open + extend) >= i16::MIN + 1`, so the
//!   clamp can never change a maximum.
//!
//! Tiles that fail the guard (oversized tiles, oversized penalties, a
//! non-x86-64 host) fall back to the exact `i32` kernel, so
//! [`BswSimdBatch::run_tile`] returns the identical [`BandedOutcome`] on
//! every input — enforced by the three-way differential oracle in
//! `tests/bsw_differential.rs`.

// lint: hot — allocation-free inner loops are this kernel's whole point

use crate::banded::BandedOutcome;
use crate::bsw_fast::{bsw_wavefront, encode, ScoreLut, WavefrontScratch};
use genome::{Base, GapPenalties, SubstitutionMatrix};

/// Sentinel for "no live gap chain": the saturating floor.
const NEG_INF_I16: i16 = i16::MIN;

/// The widest vector this module emits; buffers are padded by this many
/// lanes so the last vector of a diagonal may harmlessly overhang.
const LANES_MAX: usize = 16;

/// Reusable per-worker buffers for [`BswSimdBatch::run_tile`]: the `i16`
/// rolling wavefront state plus an embedded [`WavefrontScratch`] for
/// tiles routed to the `i32` fallback.
#[derive(Debug, Default)]
pub struct SimdScratch {
    v_pprev: Vec<i16>,
    v_prev: Vec<i16>,
    v_cur: Vec<i16>,
    e_prev: Vec<i16>,
    e_cur: Vec<i16>,
    f_prev: Vec<i16>,
    f_cur: Vec<i16>,
    scores: Vec<i16>,
    fallback: WavefrontScratch,
}

impl SimdScratch {
    /// A fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> SimdScratch {
        SimdScratch::default()
    }
}

/// A chromosome pair encoded once for SIMD tile filtering.
///
/// The SIMD analogue of [`crate::bsw_fast::BswBatch`]: immutable after
/// construction and `Sync`, shared read-only by every filter worker, each
/// worker bringing its own [`SimdScratch`]. Construction decides once
/// whether the scoring parameters fit 16-bit arithmetic and which
/// instruction set the host offers; [`BswSimdBatch::run_tile`] then
/// routes each tile to the widest exact kernel.
#[derive(Debug, Clone)]
pub struct BswSimdBatch {
    tcodes: Vec<u8>,
    qcodes: Vec<u8>,
    lut: ScoreLut,
    lut16: [i16; 64],
    gaps: GapPenalties,
    band: usize,
    /// Largest positive substitution score; bounds achievable V values.
    max_match: i64,
    /// Parameters fit `i16` arithmetic (scores and penalties in range).
    params_fit_i16: bool,
    /// Host supports the AVX2 kernel (16 lanes); otherwise SSE2 (8).
    use_avx2: bool,
}

impl BswSimdBatch {
    /// Encodes `target`/`query` and probes scoring ranges and host
    /// instruction sets for SIMD dispatch.
    pub fn new(
        target: &[Base],
        query: &[Base],
        w: &SubstitutionMatrix,
        gaps: &GapPenalties,
        band: usize,
    ) -> BswSimdBatch {
        let lut = ScoreLut::new(w);
        let mut lut16 = [0i16; 64];
        let mut max_match = 0i64;
        let mut entries_fit = true;
        for a in 0u8..5 {
            for b in 0u8..5 {
                let s = w.score(Base::from_code(a), Base::from_code(b));
                // The floor is reserved for the -inf sentinel.
                if s > i16::MAX as i32 || s <= i16::MIN as i32 {
                    entries_fit = false;
                }
                lut16[((a as usize) << 3) | b as usize] = s.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                max_match = max_match.max(s as i64);
            }
        }
        let open_extend = gaps.open.saturating_add(gaps.extend);
        // `V - (open+extend) >= -(open+extend)` must stay above the
        // saturating floor so open moves always dominate floored chains.
        let penalties_fit = gaps.open >= 0
            && gaps.extend >= 0
            && open_extend <= i16::MAX as i32
            && gaps.extend <= i16::MAX as i32;
        BswSimdBatch {
            tcodes: encode(target),
            qcodes: encode(query),
            lut,
            lut16,
            gaps: *gaps,
            band,
            max_match,
            params_fit_i16: entries_fit
                && penalties_fit
                && cfg!(target_arch = "x86_64")
                && !simd_disabled_by_env(),
            use_avx2: avx2_available(),
        }
    }

    /// Number of `i16` lanes the dispatched kernel computes per vector,
    /// or 0 when every tile falls back to the `i32` kernel.
    pub fn lanes(&self) -> usize {
        match (self.params_fit_i16, self.use_avx2) {
            (false, _) => 0,
            (true, true) => 16,
            (true, false) => 8,
        }
    }

    /// Whether a tile of `n` target by `m` query bases runs on the `i16`
    /// SIMD kernel (as opposed to the exact `i32` fallback).
    pub fn tile_uses_simd(&self, n: usize, m: usize) -> bool {
        // Score bound: V <= min(n, m) * max_match must fit i16, so no
        // cell value and no substitution candidate can saturate upward.
        self.params_fit_i16
            && n > 0
            && m > 0
            && (n.min(m) as i64).saturating_mul(self.max_match) <= i16::MAX as i64
    }

    /// Runs one filter tile over the given windows of the encoded pair.
    ///
    /// Bit-identical to [`crate::bsw_fast::BswBatch::run_tile`] (and the
    /// scalar reference) on the same slices, whichever kernel runs.
    pub fn run_tile(
        &self,
        t_range: std::ops::Range<usize>,
        q_range: std::ops::Range<usize>,
        scratch: &mut SimdScratch,
    ) -> BandedOutcome {
        let tcodes = &self.tcodes[t_range];
        let qcodes = &self.qcodes[q_range];
        if tcodes.is_empty() || qcodes.is_empty() {
            return BandedOutcome::default();
        }
        if self.tile_uses_simd(tcodes.len(), qcodes.len()) {
            let oe = (self.gaps.open + self.gaps.extend) as i16;
            let ext = self.gaps.extend as i16;
            #[cfg(target_arch = "x86_64")]
            {
                if self.use_avx2 {
                    // SAFETY: `use_avx2` was set by `is_x86_feature_detected!("avx2")`,
                    // so the AVX2 instructions this function emits are supported.
                    return unsafe {
                        wavefront_i16_avx2(tcodes, qcodes, &self.lut16, oe, ext, self.band, scratch)
                    };
                }
                // SAFETY: SSE2 is part of the x86-64 baseline, guaranteed
                // present on every x86_64 target this cfg admits.
                return unsafe {
                    wavefront_i16_sse2(tcodes, qcodes, &self.lut16, oe, ext, self.band, scratch)
                };
            }
        }
        bsw_wavefront(
            tcodes,
            qcodes,
            &self.lut,
            &self.gaps,
            self.band,
            &mut scratch.fallback,
        )
    }
}

/// Whether `WGA_DISABLE_SIMD` is set to a truthy value in the environment.
///
/// With SIMD disabled every tile takes the exact `i32` fallback and
/// [`BswSimdBatch::lanes`] reports 0, so the `simd` filter engine degrades
/// to `batched` at runtime. CI uses this to exercise both dispatch paths
/// of the differential suite on the same host.
fn simd_disabled_by_env() -> bool {
    std::env::var_os("WGA_DISABLE_SIMD").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Runtime AVX2 probe; compile-time `false` off x86-64.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Convenience wrapper: encodes `target`/`query` and runs the SIMD
/// dispatch for one standalone tile — the three-way differential tests'
/// entry point.
pub fn banded_smith_waterman_simd(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    band: usize,
    scratch: &mut SimdScratch,
) -> BandedOutcome {
    BswSimdBatch::new(target, query, w, gaps, band).run_tile(
        0..target.len(),
        0..query.len(),
        scratch,
    )
}

/// Generates one `i16` wavefront kernel per instruction set. The DP body
/// is the anti-diagonal sweep of [`bsw_wavefront`] verbatim — same band
/// geometry, same staging, same sentinels, same argmax tie-break — with
/// the inner loop emitted as explicit saturating `i16` vector ops. The
/// last vector of each diagonal overhangs the band edge into padded
/// buffer space: overhang rows are never read back (reads reach at most
/// one row past the previous diagonal's band, which the sentinel rewrite
/// covers), and the argmax scans exactly the `width` in-band values.
#[cfg(target_arch = "x86_64")]
macro_rules! wavefront_i16_kernel {
    ($fname:ident, $feature:literal, $lanes:expr, $vec:ty,
     $loadu:ident, $storeu:ident, $adds:ident, $subs:ident, $max:ident, $set1:ident) => {
        // SAFETY: dispatched only after a runtime probe of `$feature`;
        // vector loads/stores stay inside padded scratch buffers.
        #[target_feature(enable = $feature)]
        unsafe fn $fname(
            tcodes: &[u8],
            qcodes: &[u8],
            lut16: &[i16; 64],
            oe: i16,
            ext: i16,
            band: usize,
            scratch: &mut SimdScratch,
        ) -> BandedOutcome {
            use std::arch::x86_64::*;
            const LANES: usize = $lanes;
            let (n, m) = (tcodes.len(), qcodes.len());

            let SimdScratch {
                v_pprev,
                v_prev,
                v_cur,
                e_prev,
                e_cur,
                f_prev,
                f_cur,
                scores,
                fallback: _,
            } = scratch;
            // Pad by LANES_MAX so a full-width final vector may read and
            // write past row hi+1 without leaving the buffer.
            let len = m + 2 + LANES_MAX;
            for buf in [
                &mut *v_pprev, &mut *v_prev, &mut *v_cur, &mut *e_prev, &mut *e_cur,
                &mut *f_prev, &mut *f_cur, &mut *scores,
            ] {
                if buf.len() < len {
                    buf.resize(len, 0);
                }
            }
            // Boundary state feeding diagonal 2, as in the i32 kernel.
            v_prev[0] = 0;
            v_prev[1] = 0;
            e_prev[0] = NEG_INF_I16;
            e_prev[1] = NEG_INF_I16;
            f_prev[0] = NEG_INF_I16;
            f_prev[1] = NEG_INF_I16;
            v_pprev[0] = 0;
            v_pprev[1] = 0;

            let mut best = 0i16;
            let (mut best_i, mut best_j) = (0usize, 0usize);
            let mut cells = 0u64;

            // SAFETY: every pointer below stays in bounds — row indices
            // are at most hi + 1 + LANES <= m + 1 + LANES_MAX < len, and
            // score indices at most width - 1 + LANES < len.
            let voe = $set1(oe);
            let vext = $set1(ext);

            for d in 2..=(m + n) {
                let lo_seq = if d > n { d - n } else { 1 };
                let lo_band = if d > band { (d - band).div_ceil(2) } else { 1 };
                let lo = lo_seq.max(lo_band).max(1);
                let hi = m.min(d - 1).min((d + band) / 2);
                if lo > hi {
                    break;
                }
                let width = hi - lo + 1;
                cells += width as u64;

                // Stage substitution scores for the diagonal (scalar
                // gather; the target runs backwards as the row advances).
                let ts = &tcodes[d - hi - 1..d - lo];
                let qs = &qcodes[lo - 1..hi];
                let sc = &mut scores[..width];
                for k in 0..width {
                    sc[k] =
                        lut16[(((ts[width - 1 - k] as usize) << 3) | qs[k] as usize) & 63];
                }

                // The vectorised systolic update: all rows of the
                // diagonal step together, LANES at a time.
                let vp = v_prev.as_ptr();
                let ep = e_prev.as_ptr();
                let fp = f_prev.as_ptr();
                let dp = v_pprev.as_ptr();
                let sp = scores.as_ptr();
                let vcp = v_cur.as_mut_ptr();
                let ecp = e_cur.as_mut_ptr();
                let fcp = f_cur.as_mut_ptr();
                let mut k = 0usize;
                while k < width {
                    let vl = $loadu(vp.add(lo + k) as *const $vec);
                    let el = $loadu(ep.add(lo + k) as *const $vec);
                    let vu = $loadu(vp.add(lo - 1 + k) as *const $vec);
                    let fu = $loadu(fp.add(lo - 1 + k) as *const $vec);
                    let vd = $loadu(dp.add(lo - 1 + k) as *const $vec);
                    let sub = $loadu(sp.add(k) as *const $vec);
                    let e = $max($subs(vl, voe), $subs(el, vext));
                    let f = $max($subs(vu, voe), $subs(fu, vext));
                    let zero = $set1(0);
                    let val = $max($max($adds(vd, sub), $max(e, f)), zero);
                    $storeu(vcp.add(lo + k) as *mut $vec, val);
                    $storeu(ecp.add(lo + k) as *mut $vec, e);
                    $storeu(fcp.add(lo + k) as *mut $vec, f);
                    k += LANES;
                }

                // Sentinels for the one slot the next diagonals may read
                // beyond this diagonal's range (also repairs the row the
                // vector overhang clobbered at hi + 1).
                v_cur[lo - 1] = 0;
                e_cur[lo - 1] = NEG_INF_I16;
                f_cur[lo - 1] = NEG_INF_I16;
                v_cur[hi + 1] = 0;
                e_cur[hi + 1] = NEG_INF_I16;
                f_cur[hi + 1] = NEG_INF_I16;

                // Argmax with the scalar tie-break, over in-band rows
                // only — identical to the i32 kernel's scan.
                let vc = &v_cur[lo..=hi];
                let diag_max = vc.iter().copied().max().unwrap_or(0);
                if diag_max > best || (diag_max == best && best > 0) {
                    let k = vc.iter().position(|&v| v == diag_max).unwrap_or(0);
                    let i = lo + k;
                    if diag_max > best || i < best_i {
                        best = diag_max;
                        best_i = i;
                        best_j = d - i;
                    }
                }

                std::mem::swap(v_pprev, v_prev);
                std::mem::swap(v_prev, v_cur);
                std::mem::swap(e_prev, e_cur);
                std::mem::swap(f_prev, f_cur);
            }

            BandedOutcome {
                max_score: best as i64,
                target_pos: best_j.saturating_sub(1),
                query_pos: best_i.saturating_sub(1),
                cells,
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
wavefront_i16_kernel!(
    wavefront_i16_sse2,
    "sse2",
    8,
    __m128i,
    _mm_loadu_si128,
    _mm_storeu_si128,
    _mm_adds_epi16,
    _mm_subs_epi16,
    _mm_max_epi16,
    _mm_set1_epi16
);

#[cfg(target_arch = "x86_64")]
wavefront_i16_kernel!(
    wavefront_i16_avx2,
    "avx2",
    16,
    __m256i,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    _mm256_adds_epi16,
    _mm256_subs_epi16,
    _mm256_max_epi16,
    _mm256_set1_epi16
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::banded_smith_waterman;
    use genome::Sequence;

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn assert_identical(t: &[Base], q: &[Base], band: usize) {
        let (w, g) = dw();
        let scalar = banded_smith_waterman(t, q, &w, &g, band);
        let mut scratch = SimdScratch::new();
        let simd = banded_smith_waterman_simd(t, q, &w, &g, band, &mut scratch);
        assert_eq!(scalar, simd, "band={band} n={} m={}", t.len(), q.len());
    }

    fn seq(s: &str) -> Sequence {
        s.parse().unwrap()
    }

    #[test]
    fn matches_scalar_on_perfect_match() {
        let t = seq("ACGTACGTACGT");
        assert_identical(t.as_slice(), t.as_slice(), 4);
    }

    #[test]
    fn matches_scalar_across_lane_boundary_lengths() {
        // Tile lengths straddling the 8- and 16-lane boundaries: the
        // final vector of a diagonal is empty / one lane / full.
        let base = "ACGGTCAGTCGATTGCAGTCCATGGACTGATC".repeat(3);
        for len in [7usize, 8, 9, 15, 16, 17, 31, 32, 33, 48] {
            let t = seq(&base[..len]);
            let q = seq(&base[..len.min(base.len())]);
            for band in [1, 8, 16, 64] {
                assert_identical(t.as_slice(), q.as_slice(), band);
            }
        }
    }

    #[test]
    fn matches_scalar_on_homopolymer_ties() {
        let t = seq(&"A".repeat(50));
        let q = seq(&"A".repeat(47));
        for band in [1, 3, 16, 64] {
            assert_identical(t.as_slice(), q.as_slice(), band);
        }
    }

    #[test]
    fn matches_scalar_on_all_n_tiles() {
        let t = seq(&"N".repeat(40));
        let q = seq(&"N".repeat(37));
        for band in [2, 32] {
            assert_identical(t.as_slice(), q.as_slice(), band);
        }
    }

    #[test]
    fn oversized_tiles_fall_back_to_i32_and_still_match() {
        // 400 x 400 at max match 100 exceeds the i16 bound (40000), so
        // the tile must route to the exact i32 kernel.
        let (w, g) = dw();
        let t = seq(&"ACGT".repeat(100));
        let batch = BswSimdBatch::new(t.as_slice(), t.as_slice(), &w, &g, 32);
        assert!(!batch.tile_uses_simd(400, 400));
        assert!(batch.tile_uses_simd(320, 320));
        let mut scratch = SimdScratch::new();
        let out = batch.run_tile(0..400, 0..400, &mut scratch);
        let scalar = banded_smith_waterman(t.as_slice(), t.as_slice(), &w, &g, 32);
        assert_eq!(out, scalar);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let (w, g) = dw();
        let t = seq("ACGT");
        let mut scratch = SimdScratch::new();
        let out = banded_smith_waterman_simd(t.as_slice(), &[], &w, &g, 4, &mut scratch);
        assert_eq!(out, BandedOutcome::default());
        let out = banded_smith_waterman_simd(&[], t.as_slice(), &w, &g, 4, &mut scratch);
        assert_eq!(out, BandedOutcome::default());
    }

    #[test]
    fn scratch_reuse_across_differently_sized_tiles() {
        let mut scratch = SimdScratch::new();
        let (w, g) = dw();
        for len in [1usize, 7, 64, 3, 320, 5, 17] {
            let t = seq(&"ACGGTCAGT".repeat(len.div_ceil(9))[..len]);
            let q = seq(&"ACGGTCTGT".repeat(len.div_ceil(9))[..len]);
            let scalar = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, 32);
            let simd =
                banded_smith_waterman_simd(t.as_slice(), q.as_slice(), &w, &g, 32, &mut scratch);
            assert_eq!(scalar, simd, "len={len}");
        }
    }

    #[test]
    fn lanes_reports_a_supported_width() {
        let (w, g) = dw();
        let t = seq("ACGT");
        let batch = BswSimdBatch::new(t.as_slice(), t.as_slice(), &w, &g, 4);
        if cfg!(target_arch = "x86_64") && !simd_disabled_by_env() {
            assert!(batch.lanes() == 8 || batch.lanes() == 16);
        } else {
            assert_eq!(batch.lanes(), 0);
        }
    }
}
