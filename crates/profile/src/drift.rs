//! Modeled-vs-measured drift scoring.
//!
//! `wga align --trace-out` records the accelerator cycle models' output
//! as `hwsim.bsw` / `hwsim.gactx` spans (cycles in the `cells` field),
//! computed from the run's own in-memory workload. This module
//! re-derives that workload *from the trace* — seed spans, counters,
//! extension tile spans — and replays it through the same models
//! ([`hwsim::perf::replay_trace_workload`], FPGA config, matching the
//! recording side in `wga align`). Any gap between recorded and
//! replayed cycles means the trace no longer captures the workload the
//! pipeline actually ran (a dropped span, a miscounted counter, a
//! changed model) — never timing noise, because both sides are pure
//! integer functions of the trace. That makes the score a safe CI
//! gate.

use crate::trace::TraceFile;
use hwsim::perf::{replay_trace_workload, ModeledCycles, Workload};
use hwsim::AcceleratorConfig;

/// Drift of one offloaded stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftStage {
    /// Whether the trace carried a recorded span for this stage at all.
    pub present: bool,
    /// Cycles the run recorded (sum of the stage's `hwsim.*` span
    /// `cells`).
    pub recorded_cycles: u64,
    /// Cycles the replay of the trace-extracted workload yields.
    pub replayed_cycles: u64,
    /// `|recorded - replayed| * 10000 / max(recorded, 1)` — integer
    /// centi-percent error.
    pub drift_centi: u64,
}

fn stage(present: bool, recorded: u64, replayed: u64) -> DriftStage {
    DriftStage {
        present,
        recorded_cycles: recorded,
        replayed_cycles: replayed,
        drift_centi: recorded
            .abs_diff(replayed)
            .saturating_mul(10_000)
            / recorded.max(1),
    }
}

fn offmedian_centi(trace: &TraceFile, hist: &str) -> u64 {
    let Some(h) = trace.hists.get(hist) else { return 0 };
    if h.total == 0 {
        return 0;
    }
    let Some(median_bucket) = h.hist.percentile_bucket(500) else { return 0 };
    let in_median = h
        .buckets
        .iter()
        .find(|(b, _)| *b == median_bucket)
        .map_or(0, |(_, c)| *c);
    h.total.saturating_sub(in_median).saturating_mul(10_000) / h.total
}

/// The full drift picture for one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drift {
    /// Workload shape extracted from the trace.
    pub workload: Workload,
    /// Cycle figures from replaying that workload.
    pub replayed: ModeledCycles,
    /// BSW (filter) stage drift.
    pub bsw: DriftStage,
    /// GACT-X (extension) stage drift.
    pub gactx: DriftStage,
    /// Share of filter tiles whose latency falls outside the median
    /// log2 bucket, centi-percent — a shape signal (reported, not
    /// gated: latency distributions move with the machine).
    pub filter_time_offmedian_centi: u64,
    /// Same for tile cell counts — this one is machine-independent.
    pub filter_cells_offmedian_centi: u64,
}

impl Drift {
    /// Extracts the workload from `trace`, replays it, and scores the
    /// gap against the recorded `hwsim.*` spans.
    pub fn compute(trace: &TraceFile) -> Drift {
        let seeds: u64 = trace.spans_named("seed").map(|s| s.cells).sum();
        let extension_tiles: u64 = trace.spans_named("extend.tile").map(|s| s.items).sum();
        let (workload, replayed) = replay_trace_workload(
            seeds,
            trace.counter("filter.tiles"),
            extension_tiles,
            trace.counter("extend.cells"),
            trace.counter("extend.rows"),
            &AcceleratorConfig::fpga(),
        );

        let bsw_spans: Vec<_> = trace.spans_named("hwsim.bsw").collect();
        let gactx_spans: Vec<_> = trace.spans_named("hwsim.gactx").collect();
        let bsw_recorded: u64 = bsw_spans.iter().map(|s| s.cells).sum();
        let gactx_recorded: u64 = gactx_spans.iter().map(|s| s.cells).sum();

        Drift {
            workload,
            replayed,
            bsw: stage(!bsw_spans.is_empty(), bsw_recorded, replayed.bsw_cycles),
            gactx: stage(!gactx_spans.is_empty(), gactx_recorded, replayed.gactx_cycles),
            filter_time_offmedian_centi: offmedian_centi(trace, "filter.tile_ns"),
            filter_cells_offmedian_centi: offmedian_centi(trace, "filter.tile_cells"),
        }
    }

    /// The largest gated drift score, or `None` when the trace carried
    /// no `hwsim.*` spans at all (a gate must treat that as an error,
    /// not a pass — otherwise a dropped span silently disables it).
    pub fn max_gated_centi(&self) -> Option<u64> {
        if !self.bsw.present && !self.gactx.present {
            return None;
        }
        let b = if self.bsw.present { self.bsw.drift_centi } else { 0 };
        let g = if self.gactx.present { self.gactx.drift_centi } else { 0 };
        Some(b.max(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_hwsim(bsw_cycles: u64, gactx_cycles: u64) -> TraceFile {
        // Workload: 100 seeds, 10 filter tiles, 2 extension tiles,
        // 5000 cells, 40 rows — then hwsim spans claiming the given
        // cycle figures.
        let text = format!(
            concat!(
                "{{\"schema\":2}}\n",
                "{{\"span\":\"seed\",\"pair\":0,\"strand\":0,\"seq\":0,\"start_us\":0,\"dur_us\":5,\"items\":3,\"cells\":100}}\n",
                "{{\"span\":\"extend.tile\",\"pair\":0,\"strand\":2,\"seq\":0,\"start_us\":5,\"dur_us\":5,\"items\":2,\"cells\":5000}}\n",
                "{{\"span\":\"hwsim.bsw\",\"pair\":{nop},\"strand\":2,\"seq\":0,\"start_us\":10,\"dur_us\":0,\"items\":10,\"cells\":{bsw}}}\n",
                "{{\"span\":\"hwsim.gactx\",\"pair\":{nop},\"strand\":2,\"seq\":0,\"start_us\":10,\"dur_us\":0,\"items\":2,\"cells\":{gactx}}}\n",
                "{{\"counter\":\"filter.tiles\",\"value\":10}}\n",
                "{{\"counter\":\"extend.cells\",\"value\":5000}}\n",
                "{{\"counter\":\"extend.rows\",\"value\":40}}\n",
            ),
            nop = u64::MAX,
            bsw = bsw_cycles,
            gactx = gactx_cycles,
        );
        TraceFile::parse(&text).expect("trace parses")
    }

    #[test]
    fn self_consistent_trace_has_zero_drift() {
        let (_, modeled) = replay_trace_workload(100, 10, 2, 5000, 40, &AcceleratorConfig::fpga());
        let d = Drift::compute(&trace_with_hwsim(modeled.bsw_cycles, modeled.gactx_cycles));
        assert!(d.bsw.present && d.gactx.present);
        assert_eq!(d.bsw.drift_centi, 0);
        assert_eq!(d.gactx.drift_centi, 0);
        assert_eq!(d.max_gated_centi(), Some(0));
        assert_eq!(d.workload.seeds, 100);
        assert_eq!(d.workload.extension_rows, 40);
    }

    #[test]
    fn perturbed_cycles_score_nonzero() {
        let (_, modeled) = replay_trace_workload(100, 10, 2, 5000, 40, &AcceleratorConfig::fpga());
        // Inflate recorded BSW cycles by 10%: drift should be ~1000 centi.
        let recorded = modeled.bsw_cycles + modeled.bsw_cycles / 10;
        let d = Drift::compute(&trace_with_hwsim(recorded, modeled.gactx_cycles));
        assert!(d.bsw.drift_centi >= 900 && d.bsw.drift_centi <= 1000, "{}", d.bsw.drift_centi);
        assert_eq!(d.max_gated_centi(), Some(d.bsw.drift_centi));
    }

    #[test]
    fn missing_hwsim_spans_yield_no_gate_signal() {
        let t = TraceFile::parse("{\"schema\":2}\n").unwrap();
        let d = Drift::compute(&t);
        assert!(!d.bsw.present && !d.gactx.present);
        assert_eq!(d.max_gated_centi(), None);
    }

    #[test]
    fn offmedian_mass_is_scored() {
        let text = concat!(
            "{\"schema\":2}\n",
            "{\"hist\":\"filter.tile_cells\",\"total\":10,\"buckets\":[[3,9],[12,1]]}\n",
        );
        let d = Drift::compute(&TraceFile::parse(text).unwrap());
        // Median bucket is 3 (9 of 10 samples); 1 sample off-median.
        assert_eq!(d.filter_cells_offmedian_centi, 1_000);
        assert_eq!(d.filter_time_offmedian_centi, 0);
    }
}
