//! Determinism-taint pass: the interprocedural replacement for
//! trusting the hand-maintained `[determinism]` roster.
//!
//! Two checks, both over the workspace call graph:
//!
//! 1. **Surface superset** — every file containing at least one fn
//!    reachable from a pipeline entry point must be *classified*:
//!    either in `[determinism]` (on the canonical surface, per-file
//!    determinism rule applies) or under a `[determinism-exempt]`
//!    prefix (justified orchestration/telemetry/tooling). An
//!    unclassified reachable file is a violation naming the module —
//!    this is what makes a brand-new module fail the build until a
//!    human decides which side of the line it lives on, instead of
//!    silently rotting off the roster (the PR 8/PR 9 failure mode).
//!
//! 2. **Tainted sinks** — nondeterminism *sources* (hash iteration,
//!    wall clocks, floats, thread spawns) taint their enclosing fn;
//!    taint flows callee→caller, so a sink fn (`canonical_text`,
//!    `paf_text`, …, from `[determinism-sinks]`) is tainted exactly
//!    when some transitive callee contains an unwaived source. Each
//!    tainted sink yields a violation with the full call chain
//!    sink → … → source.
//!
//! Soundness note: resolution is name-based (see [`crate::callgraph`]),
//! so check 2 over-approximates through same-named methods. Sources
//! already waived with `// lint: allow(determinism): why` do not taint.

use std::path::PathBuf;

use crate::callgraph::Graph;
use crate::config::Config;
use crate::lexer::Lexed;
use crate::rules::{self, Directives, RawSite};

/// One taint finding.
#[derive(Debug)]
pub struct TaintSite {
    /// File index the finding anchors to.
    pub file: usize,
    pub line: u32,
    pub msg: String,
    pub waived: bool,
    /// Call path: for surface findings `entry -> … -> fn-in-file`; for
    /// sink findings `sink -> … -> source-fn`.
    pub chain: Vec<String>,
}

/// Result of the taint pass.
#[derive(Debug, Default)]
pub struct TaintReport {
    pub sites: Vec<TaintSite>,
    /// Files inferred on the surface (reachable), count for the report.
    pub surface_files: usize,
    /// Sink fns found in the graph.
    pub sinks: usize,
}

/// Runs both checks. `entry_parent`/`entry_seen` is the BFS result
/// from the pipeline entry points (shared with the panics pass).
pub fn analyze(
    cfg: &Config,
    files: &[PathBuf],
    lexed: &[Lexed<'_>],
    dirs: &[Directives],
    graph: &Graph,
    entry_parent: &[usize],
    entry_seen: &[bool],
) -> TaintReport {
    let mut report = TaintReport::default();

    // --- check 1: surface superset --------------------------------
    // First reachable fn per file (file order ⇒ deterministic chains).
    let mut first_reachable: Vec<Option<usize>> = vec![None; files.len()];
    for (i, f) in graph.fns.iter().enumerate() {
        if entry_seen[i] && first_reachable[f.file].is_none() {
            first_reachable[f.file] = Some(i);
        }
    }
    for (fi, rel) in files.iter().enumerate() {
        let Some(node) = first_reachable[fi] else {
            continue;
        };
        report.surface_files += 1;
        let classified = cfg.determinism_files.iter().any(|f| f == rel)
            || Config::under_any(rel, &cfg.determinism_exempt);
        if !classified {
            let chain = graph.chain(entry_parent, entry_seen, node);
            report.sites.push(TaintSite {
                file: fi,
                line: graph.fns[node].line,
                msg: format!(
                    "module is reachable from pipeline entry points but listed in \
                     neither [determinism] nor [determinism-exempt] — classify it"
                ),
                waived: false,
                chain,
            });
        }
    }

    // --- check 2: tainted sinks -----------------------------------
    // Source fns: each unwaived source token maps to its enclosing fn.
    // (sorted by node id for stable output; record the first source
    // line and kind per fn.)
    let mut source_of: Vec<Option<(u32, String)>> = vec![None; graph.fns.len()];
    for (fi, lx) in lexed.iter().enumerate() {
        let mut srcs: Vec<RawSite> = rules::determinism(lx, &dirs[fi]);
        srcs.extend(rules::spawn_sources(lx, &dirs[fi]));
        for s in srcs {
            if s.waived {
                continue;
            }
            let Some(node) = graph.enclosing_fn(fi, s.tok) else {
                continue;
            };
            let slot = &mut source_of[node];
            let replace = match slot {
                Some((line, _)) => s.line < *line,
                None => true,
            };
            if replace {
                *slot = Some((s.line, s.msg));
            }
        }
    }

    let sink_nodes = graph.nodes_named(&cfg.determinism_sinks);
    report.sinks = sink_nodes.len();
    for &sink in &sink_nodes {
        let (parent, seen) = graph.reach(&[sink]);
        // All source fns this sink can reach, in node order.
        for (node, src) in source_of.iter().enumerate() {
            let Some((line, kind)) = src else { continue };
            if !seen[node] {
                continue;
            }
            let chain = graph.chain(&parent, &seen, node);
            let sink_file = graph.fns[sink].file;
            let sink_line = graph.fns[sink].line;
            let waived = dirs[sink_file].waived("taint", sink_line);
            report.sites.push(TaintSite {
                file: sink_file,
                line: sink_line,
                msg: format!(
                    "canonical sink {} transitively calls {} ({} at {}:{})",
                    graph.fns[sink].qual(),
                    graph.fns[node].qual(),
                    kind,
                    graph.files[graph.fns[node].file],
                    line
                ),
                waived,
                chain,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::lex;
    use crate::rules::scan_directives;
    use crate::symbols::extract;

    fn run_taint(
        manifest: &str,
        srcs: &[(&str, &str)],
        entries: &[&str],
    ) -> (TaintReport, Graph) {
        let cfg = Config::parse(PathBuf::new(), manifest).expect("manifest");
        let files: Vec<PathBuf> = srcs.iter().map(|(p, _)| PathBuf::from(p)).collect();
        let names: Vec<String> = srcs.iter().map(|(p, _)| p.to_string()).collect();
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let dirs: Vec<_> = lexed.iter().map(scan_directives).collect();
        let syms: Vec<_> = lexed
            .iter()
            .enumerate()
            .map(|(i, lx)| extract(lx, i))
            .collect();
        let graph = callgraph::build(&names, &lexed, &syms);
        let roots = graph.nodes_named(&entries.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let (parent, seen) = graph.reach(&roots);
        let r = analyze(&cfg, &files, &lexed, &dirs, &graph, &parent, &seen);
        (r, graph)
    }

    #[test]
    fn unclassified_reachable_module_is_flagged() {
        let (r, _) = run_taint(
            "[scan]\nsrc\n[determinism]\nsrc/a.rs\n",
            &[
                ("src/a.rs", "fn entry() { helper(); }"),
                ("src/b.rs", "fn helper() {}"),
                ("src/island.rs", "fn unused_anywhere() {}"),
            ],
            &["entry"],
        );
        assert_eq!(r.sites.len(), 1, "{:#?}", r.sites);
        assert_eq!(r.sites[0].file, 1, "b.rs is reachable and unclassified");
        assert_eq!(r.sites[0].chain, vec!["entry", "helper"]);
        assert_eq!(r.surface_files, 2, "island.rs is not on the surface");
    }

    #[test]
    fn exempt_prefix_classifies() {
        let (r, _) = run_taint(
            "[scan]\nsrc\n[determinism]\nsrc/a.rs\n[determinism-exempt]\nsrc/orch\n",
            &[
                ("src/a.rs", "fn entry() { helper(); }"),
                ("src/orch/b.rs", "fn helper() {}"),
            ],
            &["entry"],
        );
        assert!(r.sites.is_empty(), "{:#?}", r.sites);
    }

    #[test]
    fn tainted_sink_reports_chain_to_source() {
        let (r, _) = run_taint(
            "[scan]\nsrc\n[determinism]\nsrc/a.rs\n[determinism-sinks]\ncanonical_text\n",
            &[(
                "src/a.rs",
                "
fn entry() { canonical_text(); }
fn canonical_text() { fmt_row(); }
fn fmt_row() { let frac = 0.5; }
",
            )],
            &["entry"],
        );
        let sink_sites: Vec<_> = r.sites.iter().filter(|s| s.msg.contains("sink")).collect();
        assert_eq!(sink_sites.len(), 1, "{:#?}", r.sites);
        assert_eq!(sink_sites[0].chain, vec!["canonical_text", "fmt_row"]);
        assert!(sink_sites[0].msg.contains("float literal"));
    }

    #[test]
    fn waived_source_does_not_taint() {
        let (r, _) = run_taint(
            "[scan]\nsrc\n[determinism]\nsrc/a.rs\n[determinism-sinks]\ncanonical_text\n",
            &[(
                "src/a.rs",
                "
fn entry() { canonical_text(); }
fn canonical_text() { fmt_row(); }
// lint: allow(determinism): display-only fraction, never canonical bytes
fn fmt_row() { let frac = 0.5; }
",
            )],
            &["entry"],
        );
        assert!(
            r.sites.iter().all(|s| !s.msg.contains("sink")),
            "{:#?}",
            r.sites
        );
    }
}
