//! The BLOSUM62 substitution matrix (Henikoff & Henikoff 1992) —
//! the scoring scheme TBLASTX uses in amino-acid space.

use crate::amino::AminoAcid;
use serde::{Deserialize, Serialize};

/// Amino-acid substitution scores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProteinMatrix {
    scores: Vec<i32>, // COUNT × COUNT, row-major
}

/// Score for any pairing involving a stop codon.
const STOP_SCORE: i32 = -8;
/// Score for any pairing involving an unknown residue.
const X_SCORE: i32 = -1;

impl ProteinMatrix {
    /// The standard BLOSUM62 matrix, extended with stop (−8 against
    /// everything) and X (−1 against everything) rows.
    pub fn blosum62() -> ProteinMatrix {
        use AminoAcid::*;
        // Upper-triangular listing in the order
        // A R N D C Q E G H I L K M F P S T W Y V (as in the NCBI matrix).
        const ORDER: [AminoAcid; 20] = [
            A, R, N, D, C, Q, E, G, H, I, L, K, M, F, P, S, T, W, Y, V,
        ];
        #[rustfmt::skip]
        const UPPER: [[i32; 20]; 20] = [
            /*A*/ [4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0],
            /*R*/ [0, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3],
            /*N*/ [0, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3],
            /*D*/ [0, 0, 0, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3],
            /*C*/ [0, 0, 0, 0, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1],
            /*Q*/ [0, 0, 0, 0, 0, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2],
            /*E*/ [0, 0, 0, 0, 0, 0, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2],
            /*G*/ [0, 0, 0, 0, 0, 0, 0, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3],
            /*H*/ [0, 0, 0, 0, 0, 0, 0, 0, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3],
            /*I*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3],
            /*L*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1],
            /*K*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5,-1,-3,-1, 0,-1,-3,-2,-2],
            /*M*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0,-2,-1,-1,-1,-1, 1],
            /*F*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 6,-4,-2,-2, 1, 3,-1],
            /*P*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7,-1,-1,-4,-3,-2],
            /*S*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 1,-3,-2,-2],
            /*T*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5,-2,-2, 0],
            /*W*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,11, 2,-3],
            /*Y*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7,-1],
            /*V*/ [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4],
        ];
        let mut scores = vec![0i32; AminoAcid::COUNT * AminoAcid::COUNT];
        for i in 0..AminoAcid::COUNT {
            for j in 0..AminoAcid::COUNT {
                scores[i * AminoAcid::COUNT + j] = X_SCORE;
            }
        }
        for i in 0..20 {
            for j in 0..20 {
                let v = if i <= j { UPPER[i][j] } else { UPPER[j][i] };
                let (a, b) = (ORDER[i].index(), ORDER[j].index());
                scores[a * AminoAcid::COUNT + b] = v;
            }
        }
        let stop = AminoAcid::Stop.index();
        for k in 0..AminoAcid::COUNT {
            scores[stop * AminoAcid::COUNT + k] = STOP_SCORE;
            scores[k * AminoAcid::COUNT + stop] = STOP_SCORE;
        }
        ProteinMatrix { scores }
    }

    /// The score of aligning `a` against `b`.
    #[inline]
    pub fn score(&self, a: AminoAcid, b: AminoAcid) -> i32 {
        self.scores[a.index() * AminoAcid::COUNT + b.index()]
    }
}

impl Default for ProteinMatrix {
    fn default() -> Self {
        ProteinMatrix::blosum62()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AminoAcid::*;

    #[test]
    fn spot_check_blosum62() {
        let m = ProteinMatrix::blosum62();
        assert_eq!(m.score(A, A), 4);
        assert_eq!(m.score(W, W), 11);
        assert_eq!(m.score(C, C), 9);
        assert_eq!(m.score(A, R), -1);
        assert_eq!(m.score(I, V), 3);
        assert_eq!(m.score(W, Y), 2);
        assert_eq!(m.score(G, I), -4);
        assert_eq!(m.score(E, Q), 2);
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = ProteinMatrix::blosum62();
        let all = [
            A, R, N, D, C, Q, E, G, H, I, L, K, M, F, P, S, T, W, Y, V, Stop, X,
        ];
        for &a in &all {
            for &b in &all {
                assert_eq!(m.score(a, b), m.score(b, a), "{a}/{b}");
            }
        }
    }

    #[test]
    fn stop_and_x_are_penalised() {
        let m = ProteinMatrix::blosum62();
        assert_eq!(m.score(Stop, A), -8);
        assert_eq!(m.score(Stop, Stop), -8);
        assert_eq!(m.score(X, A), -1);
        assert_eq!(m.score(X, X), -1);
    }

    #[test]
    fn diagonal_dominates_rows() {
        // Every residue's self-score is its row maximum.
        let m = ProteinMatrix::blosum62();
        let all = [
            A, R, N, D, C, Q, E, G, H, I, L, K, M, F, P, S, T, W, Y, V,
        ];
        for &a in &all {
            for &b in &all {
                assert!(m.score(a, a) >= m.score(a, b));
            }
        }
    }
}
