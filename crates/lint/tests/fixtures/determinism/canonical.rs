//! Determinism fixture: exactly FIVE non-waived violations — two hash
//! iterations, one wall-clock read, one float literal, one float type
//! — plus two waived float sites and order-safe decoys that must not
//! count.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

pub fn hash_iteration(scores: HashMap<String, i64>) -> Vec<i64> {
    let mut out = Vec::new();
    for (_k, v) in &scores {
        // violation 1: for-loop over a HashMap
        out.push(*v);
    }
    let more: Vec<i64> = scores.into_values().collect(); // violation 2
    let _ = more;
    out
}

pub fn point_reads_are_fine(scores: &HashMap<String, i64>) -> i64 {
    // contains_key/get/insert never observe iteration order: no sites.
    *scores.get("chr1").unwrap_or(&0)
}

pub fn ordered_iteration_is_fine(ordered: BTreeMap<String, i64>) -> Vec<i64> {
    // Distinct name on purpose: queue/hash identity is lexical (by
    // name), so reusing a hash-bound name for a BTreeMap would flag.
    ordered.into_values().collect()
}

pub fn wall_clock() -> u64 {
    let t = Instant::now(); // violation 3
    t.elapsed().as_nanos() as u64
}

pub fn float_leak(n: u64) -> u64 {
    let x = 0.5; // violation 4 (float literal)
    (n as f64 * x) as u64 // violation 5 (f64 type)
}

// lint: allow(determinism): fixture waiver — display-only value
pub fn waived_float(n: u64) -> f64 {
    n as f64
}
