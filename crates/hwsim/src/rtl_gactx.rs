//! Cycle-by-cycle simulation of the GACT-X extension array (§IV, Fig. 7).
//!
//! Like [`crate::rtl`] for the BSW array, but with the GACT-X specifics:
//!
//! * Needleman-Wunsch scoring (negative scores allowed; the tile path is
//!   anchored at the origin);
//! * X-drop stripe control: a stripe starts at the first column whose
//!   boundary-row score exceeded `Vmax − Y`, and stops issuing columns
//!   once an entire column of the stripe scores below `Vmax − Y`
//!   ("the scores of all the cells in a column fall below");
//! * 4-bit direction pointers written to a traceback BRAM, with start/
//!   stop column registers per stripe (the paper's position BRAMs), and a
//!   traceback walk of one pointer per cycle from the maximum cell.
//!
//! Validation: the walked-back path must be a valid alignment whose
//! rescore equals the simulated `Vmax`, and — because stripe-granular
//! pruning is slightly *more* permissive than the software kernel's
//! row-granular pruning — the simulated `Vmax` must be at least the
//! software kernel's and equal to it whenever the optimum is comfortably
//! inside the band.

use crate::systolic::ArrayConfig;
use align::cigar::{AlignOp, Cigar};
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i64 = i64::MIN / 4;

/// Direction-pointer encoding (2 direction bits + 2 affine bits), as the
/// hardware stores per cell.
mod ptr {
    pub const STOP: u8 = 0;
    pub const DIAG: u8 = 1;
    pub const LEFT: u8 = 2;
    pub const UP: u8 = 3;
    pub const DIR_MASK: u8 = 0b0011;
    pub const E_OPEN: u8 = 0b0100;
    pub const F_OPEN: u8 = 0b1000;
}

/// Result of one simulated GACT-X tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GactxSimOutcome {
    /// Tile `Vmax`.
    pub max_score: i64,
    /// Target bases to the maximum cell.
    pub max_target: usize,
    /// Query bases to the maximum cell.
    pub max_query: usize,
    /// Path from the tile origin to the maximum cell, rebuilt by walking
    /// the traceback BRAM.
    pub cigar: Cigar,
    /// Score-phase cycles (stripes × (columns + fill) + overhead).
    pub compute_cycles: u64,
    /// Traceback-walk cycles (one pointer per cycle).
    pub traceback_cycles: u64,
    /// 4-bit pointer words written to the traceback BRAM.
    pub bram_words: u64,
    /// Bytes of BRAM used (2 pointers per byte).
    pub bram_bytes: u64,
}

/// One stored stripe: its column window and per-cell data.
#[derive(Debug)]
struct Stripe {
    first_row: usize,
    jstart: usize,
    /// Per column (from `jstart`): the `Npe` (or fewer) cells' pointers,
    /// and the boundary (last-row) V/F for the next stripe.
    ptrs: Vec<Vec<u8>>,
}

/// Simulates one GACT-X tile on a linear systolic array.
///
/// `y` is the X-drop threshold; `array.num_pe` rows are processed per
/// stripe. Scores follow equations 1–3 with Needleman-Wunsch boundary
/// conditions (leading gaps charged).
pub fn simulate_gactx_tile(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    y: i64,
    array: &ArrayConfig,
) -> GactxSimOutcome {
    array.validate();
    let npe = array.num_pe;
    let n = target.len();
    let m = query.len();
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);

    let mut compute_cycles = array.tile_overhead_cycles;
    let mut bram_words = 0u64;
    let mut vmax = 0i64;
    let (mut max_i, mut max_j) = (0usize, 0usize); // 1-based DP coords

    // Boundary row (the row above the current stripe), 0-indexed by
    // column 0..=n: V and F values. Starts as DP row 0 (leading-deletion
    // costs).
    let mut boundary_v: Vec<i64> = (0..=n)
        .map(|j| if j == 0 { 0 } else { -(open + extend * j as i64) })
        .collect();
    let mut boundary_f: Vec<i64> = vec![NEG_INF; n + 1];

    let mut stripes: Vec<Stripe> = Vec::new();
    let total_stripes = m.div_ceil(npe.max(1));

    for s in 0..total_stripes {
        let first_row = s * npe; // 0-based query row of PE 0
        let rows_live = npe.min(m - first_row);

        // jstart: first column (1-based) whose boundary V is live, i.e.
        // can feed this stripe; column 0 (the left edge) is live while the
        // pure-insertion cost is above the drop line.
        let col0_score = -(open + extend * (first_row as i64 + 1));
        let col0_live = col0_score >= vmax - y;
        let jstart = if col0_live {
            1
        } else {
            match (0..=n).find(|&j| boundary_v[j] >= vmax - y && boundary_v[j] > NEG_INF / 2) {
                Some(j) => j.max(1),
                None => break, // nothing can feed this stripe
            }
        };
        if jstart > n {
            break;
        }

        // Per-PE registers: committed values of the previous column.
        let mut v_out = vec![NEG_INF; npe];
        let mut e_out = vec![NEG_INF; npe];
        // Current-column scratch (written during the column, committed
        // after it — emulating the register timing of the wavefront).
        let mut cur_v = vec![NEG_INF; npe];
        let mut cur_e = vec![NEG_INF; npe];
        let mut cur_f = vec![NEG_INF; npe];

        let mut next_boundary_v = vec![NEG_INF; n + 1];
        let mut next_boundary_f = vec![NEG_INF; n + 1];

        let mut stripe = Stripe {
            first_row,
            jstart,
            ptrs: Vec::new(),
        };

        // Last column that can still receive up/diag input from the
        // boundary row; beyond it only the in-stripe E chain can feed.
        let boundary_live_end = (0..=n)
            .rev()
            .find(|&j| boundary_v[j] >= vmax - y && boundary_v[j] > NEG_INF / 2)
            .unwrap_or(0);

        // Column issue loop with the X-drop stop rule (§IV): stop once a
        // fully evaluated column past the boundary's live region has no
        // live cell ("the scores of all the cells in a column fall
        // below").
        let mut j = jstart;
        while j <= n {
            let mut col_ptrs = vec![ptr::STOP; rows_live];
            let mut col_live = false;
            for k in 0..rows_live {
                let row = first_row + k; // 0-based
                let qbase = query[row];
                // Left inputs: own previous column (committed registers).
                let (left_v, left_e) = if j == jstart {
                    if jstart == 1 {
                        // True left edge: the NW column-0 boundary.
                        let edge = -(open + extend * (row as i64 + 1));
                        if edge >= vmax - y {
                            (edge, NEG_INF)
                        } else {
                            (NEG_INF, NEG_INF)
                        }
                    } else {
                        (NEG_INF, NEG_INF) // cells left of jstart are pruned
                    }
                } else {
                    (v_out[k], e_out[k])
                };
                // Up/diag inputs: PE k-1's current column / previous
                // column, or the stripe-boundary BRAM for PE 0.
                let (up_v, up_f, diag_v) = if k == 0 {
                    (boundary_v[j], boundary_f[j], boundary_v[j - 1])
                } else {
                    let diag = if j == jstart {
                        if jstart == 1 {
                            let edge = -(open + extend * (row as i64));
                            if edge >= vmax - y { edge } else { NEG_INF }
                        } else {
                            NEG_INF
                        }
                    } else {
                        v_out[k - 1] // committed = column j-1
                    };
                    (cur_v[k - 1], cur_f[k - 1], diag)
                };

                let e_from_open = left_v.saturating_sub(open + extend);
                let e_from_ext = left_e.saturating_sub(extend);
                let e_val = e_from_open.max(e_from_ext);
                let f_from_open = up_v.saturating_sub(open + extend);
                let f_from_ext = up_f.saturating_sub(extend);
                let f_val = f_from_open.max(f_from_ext);
                let sub = if diag_v > NEG_INF / 2 {
                    diag_v + w.score(target[j - 1], qbase) as i64
                } else {
                    NEG_INF
                };
                let mut best = sub;
                let mut dir = ptr::DIAG;
                if e_val > best {
                    best = e_val;
                    dir = ptr::LEFT;
                }
                if f_val > best {
                    best = f_val;
                    dir = ptr::UP;
                }
                let mut p = dir;
                if e_from_open >= e_from_ext {
                    p |= ptr::E_OPEN;
                }
                if f_from_open >= f_from_ext {
                    p |= ptr::F_OPEN;
                }

                let live = best >= vmax - y && best > NEG_INF / 2;
                if live {
                    col_live = true;
                    cur_v[k] = best;
                    cur_e[k] = e_val;
                    cur_f[k] = f_val;
                    col_ptrs[k] = p;
                    if best > vmax {
                        vmax = best;
                        max_i = row + 1;
                        max_j = j;
                    }
                } else {
                    cur_v[k] = NEG_INF;
                    cur_e[k] = NEG_INF;
                    cur_f[k] = NEG_INF;
                }
                if k == rows_live - 1 {
                    next_boundary_v[j] = cur_v[k];
                    next_boundary_f[j] = cur_f[k];
                }
            }
            // Commit column registers.
            v_out[..rows_live].copy_from_slice(&cur_v[..rows_live]);
            e_out[..rows_live].copy_from_slice(&cur_e[..rows_live]);
            bram_words += rows_live as u64;
            stripe.ptrs.push(col_ptrs);
            if !col_live && j > boundary_live_end {
                break; // X-drop: every further cell is unreachable.
            }
            j += 1;
        }
        let cols = stripe.ptrs.len() as u64;
        if std::env::var("RTL_DEBUG").is_ok() {
            eprintln!("stripe {s}: jstart {jstart} cols {cols} vmax {vmax}");
        }
        compute_cycles += array.stripe_cycles(cols);
        let stripe_dead = stripe.ptrs.iter().all(|col| col.iter().all(|&p| p == ptr::STOP));
        stripes.push(stripe);
        boundary_v = next_boundary_v;
        boundary_f = next_boundary_f;
        if stripe_dead {
            break;
        }
    }

    // Traceback walk: one pointer read per cycle.
    let (cigar, traceback_cycles) = walk_traceback(&stripes, max_i, max_j, target, query, npe);

    GactxSimOutcome {
        max_score: vmax,
        max_target: max_j,
        max_query: max_i,
        cigar,
        compute_cycles,
        traceback_cycles,
        bram_words,
        bram_bytes: bram_words.div_ceil(2),
    }
}

fn walk_traceback(
    stripes: &[Stripe],
    max_i: usize,
    max_j: usize,
    target: &[Base],
    query: &[Base],
    npe: usize,
) -> (Cigar, u64) {
    let lookup = |i: usize, j: usize| -> u8 {
        if i == 0 || j == 0 {
            return ptr::STOP;
        }
        let s = (i - 1) / npe;
        let Some(stripe) = stripes.get(s) else {
            return ptr::STOP;
        };
        let k = (i - 1) - stripe.first_row;
        if j < stripe.jstart {
            return ptr::STOP;
        }
        let col = j - stripe.jstart;
        stripe
            .ptrs
            .get(col)
            .and_then(|c| c.get(k))
            .copied()
            .unwrap_or(ptr::STOP)
    };

    let mut ops_rev: Vec<AlignOp> = Vec::new();
    let (mut i, mut j) = (max_i, max_j);
    let mut cycles = 0u64;
    let mut state = 0u8;
    while i > 0 || j > 0 {
        cycles += 1;
        match state {
            0 => {
                let p = lookup(i, j);
                match p & ptr::DIR_MASK {
                    ptr::STOP => {
                        // Origin-adjacent edges: emit the leading gap.
                        while j > 0 {
                            ops_rev.push(AlignOp::Delete);
                            j -= 1;
                        }
                        while i > 0 {
                            ops_rev.push(AlignOp::Insert);
                            i -= 1;
                        }
                        break;
                    }
                    ptr::DIAG => {
                        let op = if target[j - 1] == query[i - 1] && target[j - 1] != Base::N {
                            AlignOp::Match
                        } else {
                            AlignOp::Subst
                        };
                        ops_rev.push(op);
                        i -= 1;
                        j -= 1;
                    }
                    ptr::LEFT => state = 2,
                    ptr::UP => state = 3,
                    _ => unreachable!(),
                }
            }
            2 => {
                let p = lookup(i, j);
                ops_rev.push(AlignOp::Delete);
                j -= 1;
                if p & ptr::E_OPEN != 0 {
                    state = 0;
                }
            }
            3 => {
                let p = lookup(i, j);
                ops_rev.push(AlignOp::Insert);
                i -= 1;
                if p & ptr::F_OPEN != 0 {
                    state = 0;
                }
            }
            _ => unreachable!(),
        }
    }
    let mut cigar = Cigar::new();
    for op in ops_rev.into_iter().rev() {
        cigar.push(op, 1);
    }
    (cigar, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::alignment::Alignment;
    use align::xdrop::xdrop_tile;
    use genome::markov::MarkovModel;
    use genome::Sequence;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn fpga() -> ArrayConfig {
        ArrayConfig::fpga()
    }

    fn mutated(s: &Sequence, rate: f64, rng: &mut StdRng) -> Sequence {
        s.iter()
            .map(|b| {
                if rng.gen::<f64>() < rate {
                    Base::from_code(rng.gen_range(0..4u8))
                } else {
                    b
                }
            })
            .collect()
    }

    #[test]
    fn matches_software_kernel_on_related_tiles() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(1);
        let model = MarkovModel::genome_like();
        for trial in 0..6 {
            let t = model.generate(400, &mut rng);
            let q = mutated(&t, 0.02 + 0.02 * trial as f64, &mut rng);
            let sim = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 9430, &fpga());
            let sw = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, 9430);
            assert_eq!(sim.max_score, sw.max_score, "trial {trial}");
            assert_eq!(sim.max_target, sw.max_target, "trial {trial}");
            assert_eq!(sim.max_query, sw.max_query, "trial {trial}");
        }
    }

    #[test]
    fn traceback_bram_path_is_valid_and_scores_to_vmax() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(2);
        let model = MarkovModel::genome_like();
        let t = model.generate(500, &mut rng);
        // Insert a 15-base deletion so the path has a real gap.
        let mut q = t.subsequence(0..230);
        q.extend(t.slice(245..500).iter().copied());
        let q = mutated(&q, 0.05, &mut rng);
        let sim = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 9430, &fpga());
        let a = Alignment::new(0, 0, sim.cigar.clone(), sim.max_score);
        a.validate(&t, &q).unwrap();
        assert_eq!(sim.max_score, a.rescore(&t, &q, &w, &g));
        assert_eq!(a.target_span(), sim.max_target);
        assert_eq!(a.query_span(), sim.max_query);
        assert!(sim.cigar.count(AlignOp::Delete) >= 15);
    }

    #[test]
    fn xdrop_prunes_bram_words() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(3);
        let model = MarkovModel::genome_like();
        let t = model.generate(512, &mut rng);
        let q = mutated(&t, 0.05, &mut rng);
        let tight = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 2000, &fpga());
        let loose = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 1 << 40, &fpga());
        assert!(
            tight.bram_words < loose.bram_words,
            "tight {} vs loose {}",
            tight.bram_words,
            loose.bram_words
        );
        assert_eq!(tight.max_score, loose.max_score);
        assert!(tight.compute_cycles <= loose.compute_cycles);
    }

    #[test]
    fn traceback_cycles_bounded_by_path_length() {
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(4);
        let model = MarkovModel::genome_like();
        let t = model.generate(300, &mut rng);
        let sim = simulate_gactx_tile(t.as_slice(), t.as_slice(), &w, &g, 9430, &fpga());
        // Perfect self-alignment: the walk is exactly 300 diagonal steps.
        assert_eq!(sim.traceback_cycles, 300);
        assert_eq!(sim.cigar.to_string(), "300=");
    }

    #[test]
    fn default_tile_fits_the_hardware_bram() {
        // A paper-default tile (1920, Y=9430) must fit in the 1 MB per-
        // array traceback SRAM of Table IV.
        let (w, g) = dw();
        let mut rng = StdRng::seed_from_u64(5);
        let model = MarkovModel::genome_like();
        let t = model.generate(1920, &mut rng);
        let q = mutated(&t, 0.15, &mut rng);
        let sim = simulate_gactx_tile(t.as_slice(), q.as_slice(), &w, &g, 9430, &fpga());
        assert!(
            sim.bram_bytes <= crate::gactx_array::GactXBank::asic().traceback_capacity(),
            "{} bytes",
            sim.bram_bytes
        );
        assert!(sim.max_score > 50_000);
    }

    #[test]
    fn empty_inputs() {
        let (w, g) = dw();
        let sim = simulate_gactx_tile(&[], &[], &w, &g, 9430, &fpga());
        assert_eq!(sim.max_score, 0);
        assert!(sim.cigar.is_empty());
    }
}
