//! Darwin-WGA: sensitive whole-genome alignment with gapped filtering.
//!
//! This is the core crate of the Darwin-WGA (HPCA 2019) reproduction: the
//! complete seed–filter–extend pipeline with swappable stages.
//!
//! * **Darwin-WGA** ([`config::WgaParams::darwin_wga`]): D-SOFT seeding →
//!   banded Smith-Waterman *gapped* filtering → GACT-X extension.
//! * **LASTZ-like baseline** ([`config::WgaParams::lastz_baseline`]): the
//!   same seeding → X-drop *ungapped* filtering → software Y-drop
//!   extension.
//!
//! Replacing the middle stage is the paper's contribution: ungapped
//! filtering discards true homologies whose gap-free blocks are shorter
//! than ~30 matches, which is most of them for distant species pairs
//! (Fig. 2); gapped filtering keeps them at ~200× the software cost —
//! recovered by hardware acceleration, modelled in [`hwsim`].
//!
//! # Quick start
//!
//! ```
//! use genome::evolve::{EvolutionParams, SyntheticPair};
//! use rand::SeedableRng;
//! use wga_core::{config::WgaParams, pipeline::WgaPipeline};
//!
//! // A synthetic species pair standing in for ce11/cb4.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pair = SyntheticPair::generate(20_000, &EvolutionParams::at_distance(0.2), &mut rng);
//!
//! let report = WgaPipeline::new(WgaParams::darwin_wga())
//!     .run(&pair.target.sequence, &pair.query.sequence);
//! assert!(report.total_matches() > 5_000);
//! println!("found {} alignments", report.alignments.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absorb;
pub mod budget;
pub mod config;
pub mod dataflow;
pub mod durable;
pub mod error;
pub mod faultsim;
pub mod filter_engine;
pub mod genome_pipeline;
pub mod journal;
pub mod maf;
pub mod obs;
pub mod pangenome;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub(crate) mod shard;
pub mod stages;
pub mod supervise;

pub use config::WgaParams;
pub use error::{WgaError, WgaResult};
pub use pipeline::WgaPipeline;
pub use report::{RunEvent, RunOutcome, Strand, WgaAlignment, WgaReport};
