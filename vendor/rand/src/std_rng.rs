//! `StdRng`: ChaCha12 behind `BlockRng` buffering, matching `rand` 0.8
//! (`rand_chacha` 0.3 + `rand_core` 0.6) bit-for-bit.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// `rand_chacha` generates four 64-byte blocks per refill.
const BUFFER_WORDS: usize = 4 * BLOCK_WORDS;

/// The standard RNG: ChaCha with 12 rounds, identical stream to
/// `rand::rngs::StdRng` in rand 0.8.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha key (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12, 13 — low, high).
    counter: u64,
    /// Stream / nonce words (state words 14, 15). Always zero for
    /// `from_seed`, kept for fidelity.
    nonce: [u32; 2],
    /// Buffered keystream: four consecutive blocks.
    results: [u32; BUFFER_WORDS],
    /// Next unconsumed word in `results`; `BUFFER_WORDS` means empty.
    index: usize,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        StdRng {
            key,
            counter: 0,
            nonce: [0, 0],
            results: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl StdRng {
    /// Refills the buffer with the next four keystream blocks.
    fn generate(&mut self) {
        for block in 0..4 {
            let counter = self.counter.wrapping_add(block as u64);
            let mut state = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                counter as u32,
                (counter >> 32) as u32,
                self.nonce[0],
                self.nonce[1],
            ];
            let initial = state;
            for _ in 0..6 {
                // One double round (column + diagonal) per iteration;
                // six double rounds = ChaCha12.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (out, (s, i)) in self.results[block * BLOCK_WORDS..(block + 1) * BLOCK_WORDS]
                .iter_mut()
                .zip(state.iter().zip(initial.iter()))
            {
                *out = s.wrapping_add(*i);
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate();
            self.index = 0;
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64 semantics, including the straddle case where
        // exactly one word remains in the buffer.
        let read = |results: &[u32; BUFFER_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.generate();
            self.index = 2;
            read(&self.results, 0)
        } else {
            let low = u64::from(self.results[BUFFER_WORDS - 1]);
            self.generate();
            self.index = 1;
            let high = u64::from(self.results[0]);
            (high << 32) | low
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Matches `fill_via_u32_chunks`: consume whole little-endian words,
        // truncating the final word if `dest` is not a multiple of four.
        let mut written = 0;
        while written < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let take = (dest.len() - written).min(4);
            dest[written..written + take].copy_from_slice(&word[..take]);
            written += take;
        }
    }
}
