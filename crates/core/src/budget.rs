//! Shared resource-budget enforcement for every pipeline executor.
//!
//! The serial pipeline ([`crate::pipeline`]), the barrier parallel driver
//! ([`crate::parallel`]) and the streaming dataflow executor
//! ([`crate::dataflow`]) must degrade *identically* when a
//! [`crate::config::ResourceBudget`] trips — the golden-report and
//! fault-tolerance suites compare their outputs byte for byte. This
//! module is the single implementation of the clamp rules all three
//! drivers consume, so the truncation arithmetic and the
//! [`RunEvent::BudgetExceeded`] records cannot drift apart.

use crate::config::{ResourceBudget, WgaParams};
use crate::report::{BudgetKind, RunEvent, StageKind, WgaReport};
use seed::SeedHit;
use std::time::Instant;

/// Result of clamping one strand's seed-hit list against the seed-hit
/// and filter-tile budgets: how many hits to keep (a prefix — hits
/// arrive in stable positional order, so truncation is deterministic)
/// and the budget events tripped along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HitClamp {
    /// Number of leading hits that fit within the budgets.
    pub take: usize,
    /// One [`RunEvent::BudgetExceeded`] per tripped budget, in the order
    /// they were evaluated (seed hits, then filter tiles).
    pub events: Vec<RunEvent>,
}

/// Applies the seed-hit budget (per strand) and the filter-tile budget
/// (per pair, `tiles_used` consumed so far) to a strand's `hits`-long
/// hit list.
///
/// This is the budget arithmetic shared verbatim by every executor; the
/// dataflow producer calls it directly because it plans both strands of
/// a pair before any tile has executed.
pub fn clamp_hit_count(params: &WgaParams, hits: usize, tiles_used: u64) -> HitClamp {
    let mut take = hits;
    let mut events = Vec::new();
    if let Some(limit) = params.budget.max_seed_hits {
        if take as u64 > limit {
            events.push(RunEvent::BudgetExceeded {
                budget: BudgetKind::SeedHits,
                stage: StageKind::Seeding,
                limit,
                observed: take as u64,
            });
            take = limit as usize;
        }
    }
    if let Some(limit) = params.budget.max_filter_tiles {
        // The tile budget spans both strands of the pair: only the tiles
        // not yet consumed remain available to this strand.
        let remaining = limit.saturating_sub(tiles_used);
        if take as u64 > remaining {
            events.push(RunEvent::BudgetExceeded {
                budget: BudgetKind::FilterTiles,
                stage: StageKind::Filtering,
                limit,
                observed: tiles_used + take as u64,
            });
            take = remaining as usize;
        }
    }
    HitClamp { take, events }
}

/// Applies [`clamp_hit_count`] against a live [`WgaReport`], recording
/// the tripped-budget events into it and returning the surviving prefix.
///
/// The serial and barrier-parallel drivers call this at the top of each
/// strand's filter stage.
pub fn clamp_hits<'h>(
    params: &WgaParams,
    hits: &'h [SeedHit],
    report: &mut WgaReport,
) -> &'h [SeedHit] {
    let clamp = clamp_hit_count(params, hits.len(), report.workload.filter_tiles);
    report.events.extend(clamp.events);
    &hits[..clamp.take]
}

/// Builds the [`BudgetKind::Deadline`] event every executor records when
/// the per-pair wall-clock deadline interrupts a stage.
pub fn deadline_event(budget: &ResourceBudget, stage: StageKind, pair_start: Instant) -> RunEvent {
    RunEvent::BudgetExceeded {
        budget: BudgetKind::Deadline,
        stage,
        limit: budget.deadline.map_or(0, |d| d.as_millis() as u64),
        observed: pair_start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResourceBudget;

    fn params_with(budget: ResourceBudget) -> WgaParams {
        WgaParams::darwin_wga().with_budget(budget)
    }

    #[test]
    fn unbounded_budget_keeps_everything() {
        let clamp = clamp_hit_count(&params_with(ResourceBudget::default()), 1000, 0);
        assert_eq!(clamp.take, 1000);
        assert!(clamp.events.is_empty());
    }

    #[test]
    fn seed_hit_budget_truncates_and_records() {
        let p = params_with(ResourceBudget {
            max_seed_hits: Some(25),
            ..ResourceBudget::default()
        });
        let clamp = clamp_hit_count(&p, 100, 0);
        assert_eq!(clamp.take, 25);
        assert_eq!(clamp.events.len(), 1);
        assert!(matches!(
            clamp.events[0],
            RunEvent::BudgetExceeded {
                budget: BudgetKind::SeedHits,
                limit: 25,
                observed: 100,
                ..
            }
        ));
    }

    #[test]
    fn tile_budget_accounts_for_tiles_already_used() {
        let p = params_with(ResourceBudget {
            max_filter_tiles: Some(60),
            ..ResourceBudget::default()
        });
        // First strand takes the full 40; second strand only gets 20.
        let first = clamp_hit_count(&p, 40, 0);
        assert_eq!(first.take, 40);
        assert!(first.events.is_empty());
        let second = clamp_hit_count(&p, 40, 40);
        assert_eq!(second.take, 20);
        assert!(matches!(
            second.events[0],
            RunEvent::BudgetExceeded {
                budget: BudgetKind::FilterTiles,
                limit: 60,
                observed: 80,
                ..
            }
        ));
    }

    #[test]
    fn both_budgets_trip_in_order() {
        let p = params_with(ResourceBudget {
            max_seed_hits: Some(50),
            max_filter_tiles: Some(30),
            ..ResourceBudget::default()
        });
        let clamp = clamp_hit_count(&p, 100, 0);
        assert_eq!(clamp.take, 30);
        assert_eq!(clamp.events.len(), 2);
        assert!(matches!(
            clamp.events[0],
            RunEvent::BudgetExceeded { budget: BudgetKind::SeedHits, .. }
        ));
        assert!(matches!(
            clamp.events[1],
            RunEvent::BudgetExceeded { budget: BudgetKind::FilterTiles, .. }
        ));
    }

    #[test]
    fn deadline_event_reports_limit_and_elapsed() {
        let budget = ResourceBudget {
            deadline: Some(std::time::Duration::from_millis(7)),
            ..ResourceBudget::default()
        };
        let start = Instant::now() - std::time::Duration::from_millis(20);
        match deadline_event(&budget, StageKind::Extension, start) {
            RunEvent::BudgetExceeded {
                budget: BudgetKind::Deadline,
                stage: StageKind::Extension,
                limit,
                observed,
            } => {
                assert_eq!(limit, 7);
                assert!(observed >= 20);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
