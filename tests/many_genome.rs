//! Many-genome mode integration suite.
//!
//! The determinism contract under test: the canonical many-genome
//! report and the PAF rendering are byte-identical across executors,
//! thread counts, shard sizes and shared-index vs per-pair-index modes;
//! kNN sparsification provably skips distant pairs while leaving the
//! near-pair alignments untouched; and a run killed mid-matrix resumes
//! from its checkpoint directory into the byte-identical report.

use darwin_wga::core::config::WgaParams;
use darwin_wga::core::dataflow::ExecutorKind;
use darwin_wga::core::faultsim::FaultPlan;
use darwin_wga::core::pangenome::{self, paf::paf_text, ManyOptions, ManyReport};
use darwin_wga::genome::assembly::Assembly;
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// `2 * clusters` genomes, one chromosome each: each cluster is a
/// target/query pair descended from one ancestor, so within-cluster
/// pairs are near and cross-cluster pairs are unrelated.
fn clustered_genomes(clusters: usize, len: usize, seed: u64) -> Vec<Assembly> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genomes = Vec::new();
    for c in 0..clusters {
        let pair = SyntheticPair::generate(len, &EvolutionParams::at_distance(0.12), &mut rng);
        for (side, seq) in [("t", &pair.target.sequence), ("q", &pair.query.sequence)] {
            let mut g = Assembly::new(format!("c{c}{side}"));
            g.push("chr", seq.clone());
            genomes.push(g);
        }
    }
    genomes
}

/// Three genomes with two chromosomes each, all descended from the same
/// two ancestral chromosomes — every genome pair has signal on both
/// chromosome pairs, giving the kill/resume test a real matrix.
fn multi_chromosome_genomes() -> Vec<Assembly> {
    let mut rng = StdRng::seed_from_u64(99);
    let a = SyntheticPair::generate(5_000, &EvolutionParams::at_distance(0.12), &mut rng);
    let b = SyntheticPair::generate(4_000, &EvolutionParams::at_distance(0.12), &mut rng);
    let extra_a = SyntheticPair::generate(5_000, &EvolutionParams::at_distance(0.12), &mut rng);
    let mut g0 = Assembly::new("g0");
    g0.push("chrI", a.target.sequence.clone());
    g0.push("chrII", b.target.sequence.clone());
    let mut g1 = Assembly::new("g1");
    g1.push("chrI", a.query.sequence.clone());
    g1.push("chrII", b.query.sequence.clone());
    let mut g2 = Assembly::new("g2");
    g2.push("chrI", extra_a.query.sequence.clone());
    g2.push("chrII", b.query.sequence.clone());
    vec![g0, g1, g2]
}

fn run(genomes: &[Assembly], options: &ManyOptions) -> ManyReport {
    pangenome::align_many(&WgaParams::darwin_wga(), genomes, options)
        .expect("many-genome run succeeds")
}

fn checkpoint_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wga-many-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn byte_identity_across_executors_threads_shards_and_index_modes() {
    let genomes = clustered_genomes(2, 6_000, 5);
    let reference = run(&genomes, &ManyOptions::default());
    let expected = reference.canonical_text();
    let expected_paf = paf_text(&reference, &genomes);
    assert!(expected.contains("aln\t"), "reference run found alignments");
    assert!(!expected_paf.is_empty(), "reference run emits PAF");

    for executor in [ExecutorKind::Barrier, ExecutorKind::Dataflow] {
        for threads in [1usize, 3] {
            for shared_index in [true, false] {
                let options = ManyOptions {
                    threads,
                    executor,
                    shared_index,
                    ..ManyOptions::default()
                };
                let report = run(&genomes, &options);
                let label = format!("{executor:?}/{threads}t/shared={shared_index}");
                assert_eq!(report.canonical_text(), expected, "{label}: report");
                assert_eq!(paf_text(&report, &genomes), expected_paf, "{label}: PAF");
            }
        }
    }

    // Shard size is a scheduling knob, never a result knob.
    for shard_bases in [512usize, 8_192] {
        let mut params = WgaParams::darwin_wga();
        params.shard_bases = shard_bases;
        let options = ManyOptions {
            threads: 3,
            ..ManyOptions::default()
        };
        let report =
            pangenome::align_many(&params, &genomes, &options).expect("sharded run succeeds");
        assert_eq!(report.canonical_text(), expected, "shard_bases={shard_bases}");
    }
}

#[test]
fn six_genome_run_is_deterministic_across_executors() {
    let genomes = clustered_genomes(3, 4_000, 17);
    assert_eq!(genomes.len(), 6);
    let serial = run(&genomes, &ManyOptions::default());
    assert_eq!(serial.pairs.len(), 15, "all-vs-all over 6 genomes");
    let dataflow = run(
        &genomes,
        &ManyOptions {
            threads: 3,
            executor: ExecutorKind::Dataflow,
            ..ManyOptions::default()
        },
    );
    assert_eq!(dataflow.canonical_text(), serial.canonical_text());
    assert_eq!(paf_text(&dataflow, &genomes), paf_text(&serial, &genomes));
}

#[test]
fn knn_skips_distant_pairs_and_keeps_near_alignments() {
    // Three clusters of two: each genome's true neighbour is its
    // cluster mate; everything else is unrelated.
    let genomes = clustered_genomes(3, 5_000, 23);
    let all = run(&genomes, &ManyOptions::default());
    let knn = run(
        &genomes,
        &ManyOptions {
            knn: Some(2),
            ..ManyOptions::default()
        },
    );

    let mates = [(0usize, 1usize), (2, 3), (4, 5)];
    let scheduled: Vec<(usize, usize)> = knn
        .pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.scheduled)
        .map(|(i, _)| (all.pairs[i].target_genome.clone(), all.pairs[i].query_genome.clone()))
        .map(|(t, q)| {
            let idx = |name: &str| genomes.iter().position(|g| g.name == name).unwrap();
            (idx(&t), idx(&q))
        })
        .collect();
    for mate in mates {
        assert!(scheduled.contains(&mate), "near pair {mate:?} kept: {scheduled:?}");
    }
    assert!(
        scheduled.len() < all.pairs.len(),
        "knn=2 over unrelated clusters must prune at least one distant pair"
    );

    // The kept pairs' alignments are exactly what the all-pairs run
    // found for them — sparsification changes coverage, never content.
    for (a, b) in mates {
        let (ta, tb) = (genomes[a].name.as_str(), genomes[b].name.as_str());
        let pick = |r: &ManyReport| -> Vec<String> {
            r.alignments
                .iter()
                .filter(|al| al.target_genome == ta && al.query_genome == tb)
                .map(|al| format!("{:?}", al.aligned))
                .collect()
        };
        let from_all = pick(&all);
        assert!(!from_all.is_empty(), "cluster pair {ta}/{tb} aligns");
        assert_eq!(pick(&knn), from_all, "{ta}/{tb}: alignments unchanged under knn");
    }
}

#[test]
fn kill_mid_matrix_then_resume_matches_uninterrupted() {
    let genomes = multi_chromosome_genomes();
    let golden = run(&genomes, &ManyOptions::default());
    assert!(
        golden.pairs.iter().all(|p| p.failed == 0),
        "uninterrupted run must be clean"
    );

    // A panic injected at the journal append of inner chromosome pair 3
    // is the moral equivalent of `kill -9` mid-checkpoint: the first
    // genome pair dies after making three of its four chromosome pairs
    // durable.
    let plan = Arc::new(
        FaultPlan::parse(
            "{\"format\":\"wga-fault-plan\",\"version\":1,\"seed\":7,\"faults\":[\
             {\"hook\":\"journal.append\",\"kind\":\"panic\",\"at\":[0],\"pair\":3}]}",
        )
        .expect("fault plan parses"),
    );
    let dir = checkpoint_dir("kill-resume");
    let chaos = ManyOptions {
        checkpoint_dir: Some(dir.clone()),
        fault_plan: Some(plan),
        ..ManyOptions::default()
    };
    let crashed = catch_unwind(AssertUnwindSafe(|| run(&genomes, &chaos)));
    assert!(crashed.is_err(), "injected journal panic must kill the run");

    let resumed = run(
        &genomes,
        &ManyOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ManyOptions::default()
        },
    );
    assert_eq!(
        resumed.resumed_pairs, 3,
        "three chromosome pairs survived the kill"
    );
    assert_eq!(resumed.canonical_text(), golden.canonical_text());
    assert_eq!(paf_text(&resumed, &genomes), paf_text(&golden, &genomes));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_rerun_replays_every_pair() {
    let genomes = clustered_genomes(2, 4_000, 41);
    let dir = checkpoint_dir("full-replay");
    let options = ManyOptions {
        checkpoint_dir: Some(dir.clone()),
        ..ManyOptions::default()
    };
    let first = run(&genomes, &options);
    assert_eq!(first.resumed_pairs, 0);
    let second = run(&genomes, &options);
    assert_eq!(
        second.resumed_pairs,
        genomes.len() as u64 * (genomes.len() as u64 - 1) / 2,
        "every (single-chromosome) genome pair replays from its journal"
    );
    assert_eq!(second.canonical_text(), first.canonical_text());
    let _ = std::fs::remove_dir_all(&dir);
}
