//! Sensitivity sweep: gapped vs ungapped filtering across phylogenetic
//! distances — a miniature of the paper's Table III.
//!
//! For each of the paper's four species pairs (at their Fig. 8 distances)
//! we generate a synthetic pair, run both the Darwin-WGA pipeline and the
//! LASTZ-like baseline, chain both outputs, and print matched base pairs
//! and exon recovery. The expected shape: Darwin-WGA ≥ LASTZ everywhere,
//! with the advantage growing with distance.
//!
//! Run with: `cargo run --release --example sensitivity_sweep`

use darwin_wga::chain::{chainer::chain_alignments, metrics};
use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{SpeciesPair, SyntheticPair};
use rand::SeedableRng;

fn main() {
    let genome_len = 60_000;
    println!("Synthetic sensitivity sweep ({genome_len} bp per pair)\n");
    println!(
        "{:<16} {:>6} | {:>12} {:>12} {:>7} | {:>7} {:>7}",
        "pair", "dist", "LASTZ bp", "Darwin bp", "ratio", "LZ exon", "DW exon"
    );

    for (i, species) in SpeciesPair::paper_pairs().iter().enumerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
        let pair = SyntheticPair::generate(genome_len, &species.evolution_params(), &mut rng);

        let run = |params: WgaParams| {
            let report = WgaPipeline::new(params).run(&pair.target.sequence, &pair.query.sequence);
            let alignments = report.forward_alignments();
            let chains = chain_alignments(&alignments, 3000);
            let matched = metrics::unique_matched_bases(&chains, &alignments);
            let exons =
                metrics::exon_recovery(&chains, &alignments, &pair.target.conserved, 0.5);
            (matched, exons.found, exons.total)
        };

        let (lastz_bp, lastz_exons, total_exons) = run(WgaParams::lastz_baseline());
        let (darwin_bp, darwin_exons, _) = run(WgaParams::darwin_wga());
        let ratio = darwin_bp as f64 / lastz_bp.max(1) as f64;
        println!(
            "{:<16} {:>6.2} | {:>12} {:>12} {:>6.2}x | {:>3}/{:<3} {:>3}/{:<3}",
            species.name(),
            species.distance,
            lastz_bp,
            darwin_bp,
            ratio,
            lastz_exons,
            total_exons,
            darwin_exons,
            total_exons
        );
    }

    println!("\nShape check (paper Table III): the matched-bp ratio should grow");
    println!("with phylogenetic distance, up to ~3x for the most distant pair.");
}
