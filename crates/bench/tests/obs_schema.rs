//! Schema validation for `obs_overhead`'s `BENCH_obs.json`.
//!
//! Runs the bench binary on a tiny input (CI's bench smoke-step executes
//! this test) and checks the emitted JSON is well-formed and carries
//! every field downstream tooling reads. Deliberately **no performance
//! gating** — hook costs vary with the host; the binary itself asserts
//! the inertness contract (identical alignments with the recorder on).

use wga_core::journal::json::{self, Json};

fn int_field(obj: &Json, key: &str) -> i128 {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {obj:?}"))
        .as_int()
        .unwrap_or_else(|| panic!("field {key:?} is not an integer"))
}

#[test]
fn bench_obs_json_matches_schema() {
    let out = std::env::temp_dir().join(format!("BENCH_obs_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_obs_overhead"))
        .args(["--iters", "20000", "--len", "6000", "--out", out.to_str().unwrap()])
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "obs_overhead exited with {status}");

    let text = std::fs::read_to_string(&out).expect("bench wrote its JSON");
    let _ = std::fs::remove_file(&out);
    assert!(!text.contains('.'), "integer-only JSON: {text}");
    let doc = json::parse(text.trim_end()).expect("BENCH_obs.json is valid JSON");

    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("obs_overhead"));
    assert_eq!(int_field(&doc, "iters"), 20000);
    assert_eq!(int_field(&doc, "len"), 6000);

    let hook = doc.get("hook").expect("hook object");
    for key in ["disabled_us", "enabled_us", "disabled_centi_ns", "enabled_centi_ns"] {
        assert!(int_field(hook, key) >= 0, "hook.{key}");
    }

    let pipeline = doc.get("pipeline").expect("pipeline object");
    for key in ["off_us", "on_us", "overhead_centi", "spans"] {
        assert!(int_field(pipeline, key) >= 0, "pipeline.{key}");
    }
    assert!(int_field(pipeline, "off_us") > 0, "pipeline ran");
    assert!(int_field(pipeline, "spans") > 0, "recorder saw the run");
}
