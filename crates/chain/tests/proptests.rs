//! Property-based tests for chaining invariants.

use align::{AlignOp, Alignment, Cigar};
use chain::chainer::chain_alignments;
use chain::gapcost::LooseGapCost;
use chain::metrics;
use proptest::prelude::*;

fn alignment_strategy() -> impl Strategy<Value = Alignment> {
    (0usize..1_000_000, 0usize..1_000_000, 20u32..500, 1i64..50_000).prop_map(
        |(t, q, len, score)| {
            let mut c = Cigar::new();
            c.push(AlignOp::Match, len);
            Alignment::new(t, q, c, score)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_alignment_lands_in_exactly_one_chain(
        alignments in prop::collection::vec(alignment_strategy(), 1..40)
    ) {
        let chains = chain_alignments(&alignments, i64::MIN);
        let mut seen = vec![0u32; alignments.len()];
        for chain in &chains {
            for &m in &chain.members {
                seen[m] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "memberships {:?}", seen);
    }

    #[test]
    fn chain_members_are_strictly_ordered(
        alignments in prop::collection::vec(alignment_strategy(), 1..40)
    ) {
        let chains = chain_alignments(&alignments, i64::MIN);
        for chain in &chains {
            for w in chain.members.windows(2) {
                let (a, b) = (&alignments[w[0]], &alignments[w[1]]);
                prop_assert!(a.target_end <= b.target_start);
                prop_assert!(a.query_end <= b.query_start);
            }
        }
    }

    #[test]
    fn chain_score_equals_members_minus_gaps(
        alignments in prop::collection::vec(alignment_strategy(), 1..30)
    ) {
        let gap = LooseGapCost;
        let chains = chain_alignments(&alignments, i64::MIN);
        for chain in &chains {
            let mut expected = 0i64;
            for (k, &m) in chain.members.iter().enumerate() {
                expected += alignments[m].score;
                if k > 0 {
                    let prev = &alignments[chain.members[k - 1]];
                    let cur = &alignments[m];
                    let dt = (cur.target_start - prev.target_end) as u64;
                    let dq = (cur.query_start - prev.query_end) as u64;
                    expected -= gap.cost(dt, dq) as i64;
                }
            }
            prop_assert_eq!(chain.score, expected);
        }
    }

    #[test]
    fn chaining_never_loses_score(
        alignments in prop::collection::vec(alignment_strategy(), 1..30)
    ) {
        // The best chain must score at least as much as the best single
        // alignment (a singleton chain is always available).
        let chains = chain_alignments(&alignments, i64::MIN);
        let best_single = alignments.iter().map(|a| a.score).max().unwrap();
        prop_assert!(chains[0].score >= best_single);
    }

    #[test]
    fn matched_bases_bounded_by_unique(
        alignments in prop::collection::vec(alignment_strategy(), 1..30)
    ) {
        let chains = chain_alignments(&alignments, i64::MIN);
        let raw = metrics::matched_bases(&chains, &alignments);
        let unique = metrics::unique_matched_bases(&chains, &alignments);
        prop_assert!(unique <= raw);
    }

    #[test]
    fn gap_cost_monotone(d1 in 1u64..1_000_000, d2 in 1u64..1_000_000) {
        let g = LooseGapCost;
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(g.cost(lo, 0) <= g.cost(hi, 0));
        prop_assert!(g.cost(0, lo) <= g.cost(0, hi));
        prop_assert!(g.cost(lo, lo) <= g.cost(hi, hi));
        // Symmetry of single-sided gaps.
        prop_assert_eq!(g.cost(lo, 0), g.cost(0, lo));
        // Double-sided at least as costly as single-sided.
        prop_assert!(g.cost(lo, hi) >= g.cost(hi, 0));
    }

    #[test]
    fn min_score_only_removes_low_chains(
        alignments in prop::collection::vec(alignment_strategy(), 1..30),
        min_score in 0i64..60_000,
    ) {
        let all = chain_alignments(&alignments, i64::MIN);
        let filtered = chain_alignments(&alignments, min_score);
        prop_assert!(filtered.len() <= all.len());
        prop_assert!(filtered.iter().all(|c| c.score >= min_score));
    }
}
