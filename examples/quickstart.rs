//! Quickstart: align a synthetic species pair with Darwin-WGA.
//!
//! Generates a small synthetic genome pair (standing in for ce11/cb4 at a
//! configurable phylogenetic distance), runs the full Darwin-WGA pipeline
//! (D-SOFT seeding → gapped BSW filtering → GACT-X extension), chains the
//! output, and prints a summary plus the first MAF block.
//!
//! Run with: `cargo run --release --example quickstart`

use darwin_wga::chain::{chainer::chain_alignments, metrics};
use darwin_wga::core::{config::WgaParams, maf, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::SeedableRng;

fn main() {
    let genome_len = 100_000;
    let distance = 0.25;

    println!("Generating a {genome_len}-bp synthetic pair at distance {distance} subst/site...");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let pair = SyntheticPair::generate(genome_len, &EvolutionParams::at_distance(distance), &mut rng);
    println!(
        "  target: {} bp, query: {} bp, ground-truth orthologous bases: {}",
        pair.target.sequence.len(),
        pair.query.sequence.len(),
        pair.orthologous_pairs().len()
    );

    println!("\nRunning the Darwin-WGA pipeline...");
    let pipeline = WgaPipeline::new(WgaParams::darwin_wga());
    let report = pipeline.run(&pair.target.sequence, &pair.query.sequence);

    println!("  seeds queried:      {}", report.workload.seeds);
    println!("  raw seed hits:      {}", report.counters.raw_seed_hits);
    println!("  filter tiles:       {}", report.workload.filter_tiles);
    println!("  anchors passed:     {}", report.counters.anchors_passed);
    println!("  anchors absorbed:   {}", report.counters.anchors_absorbed);
    println!("  alignments kept:    {}", report.alignments.len());
    println!("  matched base pairs: {}", report.total_matches());
    println!(
        "  stage times: seed {:?}, filter {:?}, extend {:?}",
        report.timings.seeding, report.timings.filtering, report.timings.extension
    );

    let alignments = report.forward_alignments();
    let chains = chain_alignments(&alignments, 3000);
    println!("\nChains (AXTCHAIN-style, linearGap=loose): {}", chains.len());
    for (i, score) in metrics::top_k_scores(&chains, 5).iter().enumerate() {
        println!("  chain {}: score {}", i + 1, score);
    }

    if !report.alignments.is_empty() {
        let mut maf_out = Vec::new();
        maf::write_maf(
            &mut maf_out,
            "synthetic_target",
            &pair.target.sequence,
            "synthetic_query",
            &pair.query.sequence,
            &report.alignments[..1],
        )
        .expect("in-memory write cannot fail");
        let text = String::from_utf8(maf_out).unwrap();
        println!("\nBest alignment as MAF (first 3 lines):");
        for line in text.lines().take(3) {
            let shown: String = line.chars().take(100).collect();
            println!("  {shown}{}", if line.len() > 100 { "..." } else { "" });
        }
    }
}
