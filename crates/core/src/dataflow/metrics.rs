//! Per-stage telemetry of the executors.
//!
//! The hardware paper evaluates its decoupled arrays by occupancy and
//! throughput per stage; this module is the software equivalent. In the
//! dataflow executor each worker pool accumulates items/cells processed
//! and busy/idle time into lock-free counters, snapshotted into an
//! [`ExecutorMetrics`] at the end of the run; the barrier executor
//! derives the same shape from its aggregated timings and funnel
//! counters, so `--metrics-out` works on every executor.

use crate::dataflow::ExecutorKind;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live accumulator one worker pool writes into (relaxed atomics — the
/// counters are telemetry, not synchronisation).
#[derive(Debug, Default)]
pub(crate) struct StageMeter {
    items: AtomicU64,
    cells: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl StageMeter {
    pub(crate) fn add_items(&self, n: u64) {
        self.items.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_cells(&self, n: u64) {
        self.cells.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_busy(&self, d: Duration) {
        self.busy_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_idle(&self, d: Duration) {
        self.idle_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Freezes the counters into a snapshot.
    pub(crate) fn snapshot(&self, workers: usize, max_queue_occupancy: usize) -> StageMetrics {
        StageMetrics {
            workers,
            items: self.items.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
            busy_us: self.busy_ns.load(Ordering::Relaxed) / 1_000,
            idle_us: self.idle_ns.load(Ordering::Relaxed) / 1_000,
            max_queue_occupancy: max_queue_occupancy as u64,
        }
    }
}

/// Snapshot of one stage's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Threads in the stage's worker pool (1 for the seeding producer).
    pub workers: usize,
    /// Work items processed: tiles planned (seeding), tiles filtered
    /// (filtering), anchors extended-or-absorbed (extension).
    pub items: u64,
    /// DP cells evaluated (seed positions queried, for seeding).
    pub cells: u64,
    /// Cumulative time workers spent doing work, microseconds.
    pub busy_us: u64,
    /// Cumulative time workers spent blocked on their input queue,
    /// microseconds.
    pub idle_us: u64,
    /// High-water mark of the stage's *input* queue (0 for seeding,
    /// which has no input queue).
    pub max_queue_occupancy: u64,
}

/// Whole-run telemetry of one executor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorMetrics {
    /// Which executor produced these metrics.
    #[serde(default)]
    pub executor: ExecutorKind,
    /// Worker threads per pool.
    pub threads: usize,
    /// Configured bounded-queue capacity.
    pub queue_depth: usize,
    /// Seeding producer telemetry.
    pub seeding: StageMetrics,
    /// Filter worker pool telemetry.
    pub filtering: StageMetrics,
    /// Extension worker pool telemetry.
    pub extension: StageMetrics,
    /// Faults injected by `--fault-plan` across the whole run (zero
    /// outside chaos runs; absent in pre-existing metrics JSON).
    #[serde(default)]
    pub faults_injected: u64,
    /// Supervised retries consumed recovering from injected or real
    /// transient failures.
    #[serde(default)]
    pub retries: u64,
    /// Watchdog stall escalations over the whole run.
    #[serde(default)]
    pub stalls_detected: u64,
    /// Speculative extensions computed by shard helpers and discarded
    /// unconsumed (the anchor was absorbed or truncated before the
    /// commit loop reached it). Thread-schedule dependent — telemetry
    /// only, never canonical. Absent in pre-existing metrics JSON.
    #[serde(default)]
    pub spec_discard: u64,
}

/// Former name of [`ExecutorMetrics`], kept for source compatibility
/// from when only the dataflow executor reported stage telemetry.
pub type DataflowMetrics = ExecutorMetrics;

impl ExecutorMetrics {
    /// Renders the metrics as a stable, integer-only JSON document
    /// (the `--metrics-out` payload). Integer-only keeps the schema
    /// diffable and platform-independent, like the bench JSON files.
    pub fn to_json(&self) -> String {
        fn stage(s: &StageMetrics) -> String {
            format!(
                "{{\"workers\":{},\"items\":{},\"cells\":{},\"busy_us\":{},\"idle_us\":{},\"max_queue_occupancy\":{}}}",
                s.workers, s.items, s.cells, s.busy_us, s.idle_us, s.max_queue_occupancy
            )
        }
        format!(
            "{{\"executor\":\"{}\",\"threads\":{},\"queue_depth\":{},\"seeding\":{},\"filtering\":{},\"extension\":{},\"faults_injected\":{},\"retries\":{},\"stalls_detected\":{},\"spec_discard\":{}}}",
            self.executor.as_str(),
            self.threads,
            self.queue_depth,
            stage(&self.seeding),
            stage(&self.filtering),
            stage(&self.extension),
            self.faults_injected,
            self.retries,
            self.stalls_detected,
            self.spec_discard
        )
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        fn line(name: &str, s: &StageMetrics) -> String {
            let busy = s.busy_us as f64 / 1_000.0;
            let idle = s.idle_us as f64 / 1_000.0;
            format!(
                "  {name:<10} workers={} items={} cells={} busy={busy:.1}ms idle={idle:.1}ms peak-queue={}",
                s.workers, s.items, s.cells, s.max_queue_occupancy
            )
        }
        let queue = if self.executor == ExecutorKind::Dataflow {
            format!(", queue-depth={}", self.queue_depth)
        } else {
            String::new()
        };
        let chaos = if self.faults_injected > 0 || self.retries > 0 || self.stalls_detected > 0 {
            format!(
                "\n  supervision faults_injected={} retries={} stalls_detected={}",
                self.faults_injected, self.retries, self.stalls_detected
            )
        } else {
            String::new()
        };
        let spec = if self.spec_discard > 0 {
            format!("\n  speculation spec_discard={}", self.spec_discard)
        } else {
            String::new()
        };
        format!(
            "stage metrics (executor={}, threads={}{queue}):\n{}\n{}\n{}{chaos}{spec}",
            self.executor.as_str(),
            self.threads,
            line("seeding", &self.seeding),
            line("filtering", &self.filtering),
            line("extension", &self.extension)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_snapshots() {
        let m = StageMeter::default();
        m.add_items(3);
        m.add_items(4);
        m.add_cells(100);
        m.add_busy(Duration::from_micros(1500));
        m.add_idle(Duration::from_micros(250));
        let s = m.snapshot(4, 7);
        assert_eq!(s.workers, 4);
        assert_eq!(s.items, 7);
        assert_eq!(s.cells, 100);
        assert_eq!(s.busy_us, 1500);
        assert_eq!(s.idle_us, 250);
        assert_eq!(s.max_queue_occupancy, 7);
    }

    #[test]
    fn json_is_integer_only_and_parses() {
        let metrics = ExecutorMetrics {
            executor: ExecutorKind::Dataflow,
            threads: 8,
            queue_depth: 64,
            seeding: StageMetrics {
                workers: 1,
                items: 10,
                cells: 1000,
                busy_us: 5,
                idle_us: 0,
                max_queue_occupancy: 0,
            },
            ..ExecutorMetrics::default()
        };
        let json = metrics.to_json();
        assert!(
            !json.replace("\"executor\":\"dataflow\"", "").contains('.'),
            "integer-only: {json}"
        );
        let value = crate::journal::json::parse(&json).unwrap();
        assert_eq!(
            value.get("executor").and_then(|v| v.as_str().map(String::from)),
            Some("dataflow".to_string())
        );
        assert_eq!(value.get("threads").and_then(|v| v.as_int()), Some(8));
        assert_eq!(
            value
                .get("seeding")
                .and_then(|s| s.get("cells"))
                .and_then(|v| v.as_int()),
            Some(1000)
        );
        for key in ["seeding", "filtering", "extension"] {
            let stage = value.get(key).unwrap();
            for field in [
                "workers",
                "items",
                "cells",
                "busy_us",
                "idle_us",
                "max_queue_occupancy",
            ] {
                assert!(
                    stage.get(field).and_then(|v| v.as_int()).is_some(),
                    "{key}.{field}"
                );
            }
        }
        for field in ["faults_injected", "retries", "stalls_detected", "spec_discard"] {
            assert_eq!(
                value.get(field).and_then(|v| v.as_int()),
                Some(0),
                "{field}"
            );
        }
        assert!(metrics.summary().contains("executor=dataflow"));
        assert!(metrics.summary().contains("queue-depth=64"));
        assert!(
            !metrics.summary().contains("supervision"),
            "clean runs stay clean in the summary"
        );
        let barrier = ExecutorMetrics {
            executor: ExecutorKind::Barrier,
            ..metrics
        };
        assert!(barrier.summary().contains("executor=barrier"));
        assert!(!barrier.summary().contains("queue-depth"));
        assert!(barrier.to_json().contains("\"executor\":\"barrier\""));
        let chaotic = ExecutorMetrics {
            faults_injected: 3,
            retries: 2,
            ..metrics
        };
        assert!(chaotic.summary().contains("faults_injected=3"));
        assert!(chaotic.to_json().contains("\"faults_injected\":3"));
        let speculative = ExecutorMetrics {
            spec_discard: 7,
            ..chaotic
        };
        assert!(speculative.summary().contains("spec_discard=7"));
        assert!(speculative.to_json().contains("\"spec_discard\":7"));
    }

    #[test]
    fn metrics_json_without_fault_counters_still_parses() {
        // A `--metrics-out` payload written before the supervision
        // counters existed: it must keep parsing, and consumers read
        // the absent counters as zero (the same tolerant-key
        // convention the journal uses for `FunnelCounters`).
        let old = "{\"executor\":\"dataflow\",\"threads\":2,\"queue_depth\":8,\
                   \"seeding\":{\"workers\":1,\"items\":1,\"cells\":2,\"busy_us\":3,\"idle_us\":4,\"max_queue_occupancy\":0},\
                   \"filtering\":{\"workers\":2,\"items\":1,\"cells\":2,\"busy_us\":3,\"idle_us\":4,\"max_queue_occupancy\":5},\
                   \"extension\":{\"workers\":2,\"items\":1,\"cells\":2,\"busy_us\":3,\"idle_us\":4,\"max_queue_occupancy\":5}}";
        let value = crate::journal::json::parse(old).unwrap();
        assert_eq!(value.get("threads").and_then(|v| v.as_int()), Some(2));
        for field in ["faults_injected", "retries", "stalls_detected", "spec_discard"] {
            let n = value.get(field).and_then(|v| v.as_int()).unwrap_or(0);
            assert_eq!(n, 0, "{field} defaults to zero when absent");
        }
    }
}
