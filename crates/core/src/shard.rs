//! Intra-pair sharding: position-space decomposition of seeding and
//! extension, so one large chromosome pair no longer serialises a
//! thread pool.
//!
//! Before this module the unit of scheduled work was a whole chromosome
//! pair: the seed table build and the D-SOFT walk ran on one thread and
//! extension ran as a serial tail, so a single 120 kbp pair pinned one
//! worker while the rest idled. Here every per-pair stage is split along
//! its natural position axis into *shards* — independent work items a
//! small self-scheduling pool claims off a shared cursor (smallest
//! remaining work first, since claims follow ascending position order):
//!
//! * **seed-table build** shards over target positions
//!   ([`seed::table::SeedTable::build_partial`], merged in shard order);
//! * **D-SOFT binning** shards over query chunks
//!   ([`seed::dsoft::dsoft_seeds_range`], cuts aligned to `chunk_size`
//!   so every diagonal band stays inside one shard);
//! * **extension** runs anchors as independent speculative work items up
//!   to chain order: workers compute [`run_extension`] for anchors in a
//!   lookahead window while the calling thread *commits* results in the
//!   exact serial order ([`extend_anchors_from`]), replaying budget
//!   checks, absorption, fault gates and report mutation byte for byte.
//!
//! # Determinism and fault containment
//!
//! Sharding never reaches canonical output: merges reproduce the serial
//! result bit for bit (see the merge rules on the seed-crate
//! primitives), and the extension commit loop *is* the serial loop —
//! workers only pre-compute pure per-anchor extensions. A panic inside
//! any shard worker is caught, mapped to the lowest-failing-shard
//! message deterministically, and re-raised on the calling thread via
//! [`resume_unwind`] — exactly where the serial code would have
//! panicked — so pair-level supervision (retry, `Failed` escalation)
//! composes unchanged with shard-level parallelism.

use crate::config::WgaParams;
use crate::obs::{Counter, Obs};
use crate::parallel::panic_message;
use crate::report::{Strand, WgaReport};
use crate::stages::{extend_anchors, extend_anchors_from, run_extension, timed_seed_table};
use align::gactx::ExtendedAlignment;
use genome::Sequence;
use parking_lot::Mutex;
use seed::dsoft::{dsoft_seeds, dsoft_seeds_range, merge_dsoft_results, DsoftParams, DsoftResult};
use seed::{Anchor, SeedTable};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Cuts `0..len` into contiguous shards for `threads` workers.
///
/// Targets ~4 shards per worker (self-scheduling slack so a slow shard
/// does not straggle the pool) but never below `min_bases` per shard
/// (tiny shards are all merge overhead), and rounds the shard size up to
/// a multiple of `align` — D-SOFT requires chunk-aligned cuts.
pub(crate) fn shard_ranges(
    len: usize,
    threads: usize,
    min_bases: usize,
    align: usize,
) -> Vec<Range<usize>> {
    let align = align.max(1);
    if len == 0 {
        return Vec::new();
    }
    let raw = len.div_ceil(threads.max(1) * 4).max(min_bases.max(1));
    let size = raw.div_ceil(align) * align;
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < len {
        let end = start.saturating_add(size).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Runs `work(0..count)` across up to `threads` workers claiming shard
/// indices off a shared cursor, returning results in index order.
///
/// Panics inside `work` are caught per shard; after the pool drains,
/// the lowest-indexed failure is re-raised on the calling thread (claims
/// follow the monotonic cursor, so a deterministic panic in shard *i*
/// always reports shard *i*'s message regardless of interleaving).
pub(crate) fn run_sharded<T, F>(count: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(count);
    // Workers never unwind out of the closure (every `work` call is
    // wrapped), so the scope result carries no panic of interest.
    let _ = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                while !stop.load(Ordering::Relaxed) {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= count {
                        break;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(idx)))
                        .map_err(|payload| panic_message(payload.as_ref()));
                    if outcome.is_err() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    *slots[idx].lock() = Some(outcome);
                }
            });
        }
    });
    let mut values = Vec::with_capacity(count);
    for slot in slots {
        match slot.into_inner() {
            Some(Ok(value)) => values.push(value),
            Some(Err(message)) => resume_unwind(Box::new(message)),
            // Unclaimed shards are a suffix left behind by the stop
            // flag; the failure that set it sits at a lower index and
            // was re-raised above — reaching here means a worker died
            // outside `catch_unwind`, which still must escalate.
            None => resume_unwind(Box::new(
                "sharded worker vanished before completing".to_string(),
            )),
        }
    }
    values
}

/// Sharded [`SeedTable`] build over target-position ranges; bit-identical
/// to the serial build for any thread count.
pub(crate) fn sharded_seed_table(
    params: &WgaParams,
    target: &Sequence,
    threads: usize,
) -> (SeedTable, Duration) {
    if threads <= 1 {
        return timed_seed_table(params, target);
    }
    let shards = shard_ranges(target.len(), threads, params.shard_bases, 1);
    if shards.len() <= 1 {
        return timed_seed_table(params, target);
    }
    let start = Instant::now();
    let parts = run_sharded(shards.len(), threads, |i| {
        SeedTable::build_partial(target, &params.seed_pattern, shards[i].clone())
    });
    let table = SeedTable::from_partials(&params.seed_pattern, parts, params.max_seed_occurrences);
    (table, start.elapsed())
}

/// Sharded D-SOFT seeding over chunk-aligned query ranges; bit-identical
/// to [`dsoft_seeds`] for any thread count (cuts land on `chunk_size`
/// boundaries, so every diagonal band is confined to one shard).
pub(crate) fn sharded_dsoft(
    table: &SeedTable,
    query: &Sequence,
    dsoft: &DsoftParams,
    shard_bases: usize,
    threads: usize,
) -> DsoftResult {
    if threads <= 1 {
        return dsoft_seeds(table, query, dsoft);
    }
    let shards = shard_ranges(query.len(), threads, shard_bases, dsoft.chunk_size);
    if shards.len() <= 1 {
        return dsoft_seeds(table, query, dsoft);
    }
    let parts = run_sharded(shards.len(), threads, |i| {
        dsoft_seeds_range(table, query, dsoft, shards[i].clone())
    });
    merge_dsoft_results(parts)
}

/// A pool of spare worker permits shared across concurrent pair streams.
///
/// The dataflow executor sizes this at `threads`: each extension worker
/// holds one implicit permit and borrows up to `max` spares while it
/// runs a pair, so a lone big pair at the tail of a run can fan its
/// anchor extensions across otherwise-idle workers (work-stealing-lite —
/// output is invariant to how many permits a borrow wins).
#[derive(Debug)]
pub(crate) struct ThreadGrant {
    spare: AtomicUsize,
}

impl ThreadGrant {
    /// A pool holding `spare` loanable permits.
    pub(crate) fn new(spare: usize) -> ThreadGrant {
        ThreadGrant {
            spare: AtomicUsize::new(spare),
        }
    }

    /// Takes up to `max` permits from the pool, returning how many were
    /// actually granted (possibly zero).
    pub(crate) fn acquire(&self, max: usize) -> usize {
        let mut granted = 0usize;
        while granted < max {
            let current = self.spare.load(Ordering::Relaxed);
            if current == 0 {
                break;
            }
            let take = current.min(max - granted);
            if self
                .spare
                .compare_exchange(current, current - take, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                granted += take;
            }
        }
        granted
    }

    /// Returns `n` permits to the pool.
    pub(crate) fn release(&self, n: usize) {
        self.spare.fetch_add(n, Ordering::Relaxed);
    }
}

/// Claim states for the speculative extension window.
const CLAIM_FREE: u8 = 0;
const CLAIM_TAKEN: u8 = 1;

/// One speculated extension outcome: empty until a helper fills it with
/// either the extension result or the message of a caught helper panic.
type SpeculationSlot = Mutex<Option<Result<Option<ExtendedAlignment>, String>>>;

/// [`extend_anchors`] with anchors speculatively extended by
/// `threads - 1` helper workers while this thread commits results in
/// serial order — byte-identical output at any thread count.
///
/// Anchors are pre-sorted with the commit loop's exact (stable)
/// comparator so helper index *i* and commit index *i* name the same
/// anchor. Helpers claim anchors from a bounded lookahead window past
/// the commit frontier and run the pure [`run_extension`]; the commit
/// loop ([`extend_anchors_from`]) performs every observable action —
/// budget/deadline truncation, absorption, `extend.tile` fault gates,
/// counters, report mutation — on the calling thread, in serial order.
/// A helper panic is stored as its message and re-raised only if the
/// commit loop actually reaches that anchor (an anchor absorbed or
/// truncated before its turn never panics serially either).
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_anchors_sharded(
    params: &WgaParams,
    target: &Sequence,
    query: &Sequence,
    strand: Strand,
    mut anchors: Vec<Anchor>,
    pair_start: Instant,
    report: &mut WgaReport,
    obs: Obs<'_>,
    threads: usize,
) {
    if threads <= 1 || anchors.len() < 2 {
        return extend_anchors(params, target, query, strand, anchors, pair_start, report, obs);
    }
    anchors.sort_by_key(|a| std::cmp::Reverse(a.filter_score));
    let count = anchors.len();
    let claims: Vec<AtomicU8> = (0..count).map(|_| AtomicU8::new(CLAIM_FREE)).collect();
    let slots: Vec<SpeculationSlot> = (0..count).map(|_| Mutex::new(None)).collect();
    let committed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let window = threads * 8;
    let helpers = (threads - 1).min(count);

    let anchors_ref = &anchors;
    let claims_ref = &claims;
    let slots_ref = &slots;
    let committed_ref = &committed;
    let stop_ref = &stop;

    let commit_result = crossbeam::thread::scope(|scope| {
        for _ in 0..helpers {
            scope.spawn(move |_| {
                while !stop_ref.load(Ordering::Relaxed) {
                    let base = committed_ref.load(Ordering::Relaxed);
                    if base >= count {
                        break;
                    }
                    let mut claimed = None;
                    let limit = (base.saturating_add(window)).min(count);
                    for (idx, claim) in claims_ref.iter().enumerate().take(limit).skip(base) {
                        if claim
                            .compare_exchange(
                                CLAIM_FREE,
                                CLAIM_TAKEN,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            claimed = Some(idx);
                            break;
                        }
                    }
                    match claimed {
                        Some(idx) => {
                            let anchor = anchors_ref[idx];
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                run_extension(params, target, query, anchor)
                            }))
                            .map_err(|payload| panic_message(payload.as_ref()));
                            *slots_ref[idx].lock() = Some(outcome);
                        }
                        // Window exhausted: the commit frontier is the
                        // bottleneck, wait for it to advance.
                        None => std::thread::yield_now(),
                    }
                }
            });
        }

        // Commit thread: the serial loop verbatim, pulling speculated
        // results where a helper got there first. Panics (fault-gate
        // injections, re-raised helper failures) are caught so the stop
        // flag is set before the scope joins the helpers, then re-raised
        // outside the scope — the same escalation point as serial code.
        let commit = catch_unwind(AssertUnwindSafe(|| {
            extend_anchors_from(
                params,
                strand,
                anchors_ref.clone(),
                pair_start,
                report,
                obs,
                &mut |seq, anchor| {
                    committed_ref.store(seq, Ordering::Relaxed);
                    if claims_ref[seq]
                        .compare_exchange(
                            CLAIM_FREE,
                            CLAIM_TAKEN,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        // No helper reached it: compute inline, exactly
                        // the serial driver's code path.
                        run_extension(params, target, query, anchor)
                    } else {
                        loop {
                            if let Some(result) = slots_ref[seq].lock().take() {
                                match result {
                                    Ok(ext) => break ext,
                                    Err(message) => resume_unwind(Box::new(message)),
                                }
                            }
                            std::thread::yield_now();
                        }
                    }
                },
            )
        }));
        stop_ref.store(true, Ordering::Relaxed);
        commit
    });

    // Helper results still sitting in their slots were speculated but
    // never consumed: the commit loop absorbed or truncated the anchor
    // before reaching it. Pure telemetry — the value depends on the
    // thread schedule, so it never feeds canonical output.
    let discarded = slots.iter().filter(|slot| slot.lock().is_some()).count() as u64;
    if discarded > 0 {
        report.counters.spec_discard += discarded;
        obs.add(Counter::SpecDiscard, discarded);
    }

    match commit_result {
        Ok(Ok(())) => {}
        Ok(Err(payload)) => resume_unwind(payload),
        // A helper died outside its catch_unwind — escalate like any
        // other pair-level panic.
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WgaParams;
    use crate::pipeline::WgaPipeline;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shard_ranges_cover_and_align() {
        for (len, threads, min, align) in
            [(100_000, 8, 2048, 128), (5_000, 2, 2048, 1), (129, 8, 1, 64), (0, 4, 2048, 128)]
        {
            let ranges = shard_ranges(len, threads, min, align);
            let mut expect = 0usize;
            for r in &ranges {
                assert_eq!(r.start, expect, "contiguous");
                assert!(r.end > r.start, "non-empty");
                if r.end != len {
                    assert_eq!(r.end % align.max(1), 0, "aligned cut");
                    assert!(r.end - r.start >= min.min(len), "respects floor");
                }
                expect = r.end;
            }
            assert_eq!(expect, len, "covers 0..len");
        }
    }

    #[test]
    fn run_sharded_matches_serial_map() {
        let squares: Vec<usize> = run_sharded(37, 4, |i| i * i);
        assert_eq!(squares, (0..37).map(|i| i * i).collect::<Vec<_>>());
        let empty: Vec<usize> = run_sharded(0, 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn run_sharded_reports_lowest_failing_shard() {
        for _ in 0..16 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                run_sharded(64, 4, |i| {
                    if i == 7 || i == 40 {
                        panic!("shard {i} poisoned");
                    }
                    i
                })
            }))
            .expect_err("must escalate");
            assert_eq!(panic_message(err.as_ref()), "shard 7 poisoned");
        }
    }

    #[test]
    fn sharded_seeding_matches_serial() {
        let mut rng = StdRng::seed_from_u64(23);
        let pair = SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.2), &mut rng);
        let mut params = WgaParams::darwin_wga();
        params.shard_bases = 512; // force many shards
        let (serial, _) = timed_seed_table(&params, &pair.target.sequence);
        let (sharded, _) = sharded_seed_table(&params, &pair.target.sequence, 4);
        assert_eq!(serial.positions_indexed(), sharded.positions_indexed());
        assert_eq!(serial.distinct_words(), sharded.distinct_words());
        assert_eq!(serial.dropped_repeats(), sharded.dropped_repeats());

        let whole = dsoft_seeds(&serial, &pair.query.sequence, &params.dsoft);
        let split = sharded_dsoft(&sharded, &pair.query.sequence, &params.dsoft, 512, 4);
        assert_eq!(whole, split);
    }

    #[test]
    fn thread_grant_loans_and_returns() {
        let grant = ThreadGrant::new(3);
        assert_eq!(grant.acquire(2), 2);
        assert_eq!(grant.acquire(5), 1);
        assert_eq!(grant.acquire(1), 0);
        grant.release(3);
        assert_eq!(grant.acquire(4), 3);
    }

    #[test]
    fn sharded_extension_matches_serial_pipeline() {
        let mut rng = StdRng::seed_from_u64(31);
        let pair = SyntheticPair::generate(25_000, &EvolutionParams::at_distance(0.25), &mut rng);
        let params = WgaParams::darwin_wga();
        let serial =
            WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);

        // Rebuild the anchor set the serial run extended, then commit it
        // through the speculative path at several widths.
        let (table, _) = timed_seed_table(&params, &pair.target.sequence);
        let seeding = dsoft_seeds(&table, &pair.query.sequence, &params.dsoft);
        let mut anchors = Vec::new();
        for &hit in &seeding.hits {
            if let Some(anchor) = crate::stages::run_filter(
                &params,
                &pair.target.sequence,
                &pair.query.sequence,
                hit,
            )
            .anchor
            {
                anchors.push(anchor);
            }
        }
        for threads in [2usize, 4, 8] {
            let mut report = WgaReport::default();
            extend_anchors_sharded(
                &params,
                &pair.target.sequence,
                &pair.query.sequence,
                Strand::Forward,
                anchors.clone(),
                Instant::now(),
                &mut report,
                Obs::off(),
                threads,
            );
            report
                .alignments
                .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
            assert_eq!(
                serial.alignments, report.alignments,
                "speculative commit diverged at {threads} threads"
            );
            assert_eq!(serial.workload.extension_cells, report.workload.extension_cells);
            assert_eq!(
                serial.counters.anchors_absorbed,
                report.counters.anchors_absorbed
            );
        }
    }
}
