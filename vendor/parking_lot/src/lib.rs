//! Offline stand-in for the `parking_lot` API subset the workspace uses:
//! a `Mutex` whose `lock()` needs no `unwrap` and cannot poison. Built on
//! `std::sync::Mutex`, recovering the inner value if a holder panicked.

#![warn(missing_docs)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A non-poisoning mutex (API-compatible subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
