//! D-SOFT seeding as modified for Darwin-WGA (§III-B, Fig. 4a).
//!
//! The query is split into chunks of `c` bases; target positions are
//! grouped into bins of `b` bases. A (chunk, bin) pair identifies one
//! *diagonal band*. Seed hits are counted per band, and a band whose hit
//! count reaches the threshold `h` contributes **at most one** seed hit to
//! the filtering stage — this de-duplication of nearby hits is what keeps
//! the (enormous) seeding output tractable for the filter.

use crate::hit::SeedHit;
use crate::pattern::SeedPattern;
use crate::table::SeedTable;
use genome::Sequence;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// D-SOFT parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsoftParams {
    /// Query chunk size `c` (bases).
    pub chunk_size: usize,
    /// Target bin size `b` (bases).
    pub bin_size: usize,
    /// Minimum seed hits per diagonal band `h`.
    pub threshold: u32,
    /// Whether to look up one-transition seed variants as well.
    pub transitions: bool,
    /// Stride between sampled query positions (1 = every position).
    pub query_stride: usize,
}

impl DsoftParams {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes, stride or threshold.
    pub fn validate(&self) {
        assert!(self.chunk_size > 0, "chunk size must be positive");
        assert!(self.bin_size > 0, "bin size must be positive");
        assert!(self.threshold > 0, "threshold must be positive");
        assert!(self.query_stride > 0, "stride must be positive");
    }
}

impl Default for DsoftParams {
    fn default() -> Self {
        DsoftParams {
            chunk_size: 128,
            bin_size: 128,
            threshold: 1,
            transitions: true,
            query_stride: 1,
        }
    }
}

/// Output of D-SOFT seeding, with workload counters for Table V.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DsoftResult {
    /// One representative seed hit per qualifying diagonal band.
    pub hits: Vec<SeedHit>,
    /// Seed words looked up (the paper's "Seeds" workload column).
    pub seeds_queried: u64,
    /// Raw (pre-banding) seed hits found.
    pub raw_hits: u64,
    /// Number of diagonal bands that received at least one hit.
    pub bands_touched: u64,
}

/// Runs D-SOFT seeding of `query` against an indexed target.
///
/// Returns at most one hit per (chunk, target-bin) diagonal band — the
/// *first* hit the band received, which sits closest to the band's
/// upstream edge and therefore centres the filter tile best.
///
/// # Examples
///
/// ```
/// use genome::Sequence;
/// use seed::{dsoft::{dsoft_seeds, DsoftParams}, pattern::SeedPattern, table::SeedTable};
///
/// let t: Sequence = "TTTTTTTTACGTACGTACGTACGTTTTTTTTT".parse()?;
/// let q: Sequence = "GGGGACGTACGTACGTACGTGGGG".parse()?;
/// let pattern = SeedPattern::exact(12);
/// let table = SeedTable::build(&t, &pattern, 64);
/// let result = dsoft_seeds(&table, &q, &DsoftParams::default());
/// assert!(!result.hits.is_empty());
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn dsoft_seeds(table: &SeedTable, query: &Sequence, params: &DsoftParams) -> DsoftResult {
    dsoft_seeds_range(table, query, params, 0..query.len())
}

/// Runs D-SOFT seeding over one shard of query positions.
///
/// Identical to [`dsoft_seeds`] restricted to sampled query positions in
/// `qrange` (the stride phase is global: the first sampled position is
/// the smallest multiple of `query_stride` at or after `qrange.start`,
/// exactly the positions the whole-query walk would visit there).
///
/// Sharding is *exact* — [`merge_dsoft_results`] over any partition of
/// `0..query.len()` reproduces the whole-query [`DsoftResult`] byte for
/// byte — **provided every cut is a multiple of `params.chunk_size`**.
/// Chunk-aligned cuts keep each (chunk, bin) diagonal band confined to
/// one shard, so per-shard band counts, threshold filtering and
/// first-hit selection all match the global walk. A cut inside a chunk
/// would split that chunk's bands across shards and double-count them.
pub fn dsoft_seeds_range(
    table: &SeedTable,
    query: &Sequence,
    params: &DsoftParams,
    qrange: Range<usize>,
) -> DsoftResult {
    params.validate();
    let pattern: &SeedPattern = table.pattern();
    let qslice = query.as_slice();
    let mut result = DsoftResult::default();
    // band key: (chunk index, target bin) → count and first hit.
    // BTreeMap, not HashMap: `into_values` below iterates, and the
    // hits it yields reach canonical output — ordered iteration keeps
    // that path deterministic by construction (wga-lint: determinism).
    let mut bands: BTreeMap<(u32, u32), (u32, SeedHit)> = BTreeMap::new();

    let end = query
        .len()
        .saturating_sub(pattern.span().saturating_sub(1))
        .min(qrange.end);
    // First multiple of the stride at or after the shard start — the
    // same positions the whole-query walk samples inside this range.
    let mut qpos = qrange.start.div_ceil(params.query_stride) * params.query_stride;
    while qpos < end {
        let words = if params.transitions {
            pattern.extract_with_transitions(qslice, qpos)
        } else {
            pattern.extract(qslice, qpos).into_iter().collect()
        };
        result.seeds_queried += words.len() as u64;
        let chunk = (qpos / params.chunk_size) as u32;
        for word in words {
            for &tpos in table.lookup(word) {
                result.raw_hits += 1;
                let bin = (tpos as usize / params.bin_size) as u32;
                let entry = bands
                    .entry((chunk, bin))
                    .or_insert((0, SeedHit::new(tpos as usize, qpos)));
                entry.0 += 1;
            }
        }
        qpos += params.query_stride;
    }

    result.bands_touched = bands.len() as u64;
    let mut hits: Vec<SeedHit> = bands
        .into_values()
        .filter(|(count, _)| *count >= params.threshold)
        .map(|(_, hit)| hit)
        .collect();
    hits.sort_unstable();
    hits.dedup();
    result.hits = hits;
    result
}

/// Merges per-shard [`dsoft_seeds_range`] outputs back into the
/// whole-query result.
///
/// Hits concatenate and re-sort into the same canonical order
/// [`dsoft_seeds`] emits (each hit belongs to exactly one diagonal band,
/// and chunk-aligned cuts keep every band inside one shard, so the
/// concatenation has no duplicates and the counters sum exactly).
/// Accepts the parts in any order — the sort canonicalises.
pub fn merge_dsoft_results(parts: impl IntoIterator<Item = DsoftResult>) -> DsoftResult {
    let mut merged = DsoftResult::default();
    for part in parts {
        merged.hits.extend(part.hits);
        merged.seeds_queried += part.seeds_queried;
        merged.raw_hits += part.raw_hits;
        merged.bands_touched += part.bands_touched;
    }
    merged.hits.sort_unstable();
    merged.hits.dedup();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(target: &str, pattern_k: usize) -> (SeedTable, SeedPattern) {
        let t: Sequence = target.parse().unwrap();
        let p = SeedPattern::exact(pattern_k);
        (SeedTable::build(&t, &p, usize::MAX), p)
    }

    #[test]
    fn finds_exact_match_hit() {
        let shared = "ACGGTCAGTCGATTGCAGTC";
        let target = format!("TTTTTTTT{shared}TTTTTTTT");
        let query = format!("GGGG{shared}GGGG");
        let (table, _) = setup(&target, 12);
        let q: Sequence = query.parse().unwrap();
        let r = dsoft_seeds(&table, &q, &DsoftParams::default());
        assert!(!r.hits.is_empty());
        let hit = r.hits[0];
        assert_eq!(hit.target_pos, 8);
        assert_eq!(hit.query_pos, 4);
    }

    #[test]
    fn one_hit_per_band() {
        // A long shared region produces many raw hits but bands collapse
        // them to a handful.
        let shared = "ACGGTCAGTCGATTGCAGTCACGGTCAGTCGATTGCAGTC".repeat(4);
        let target = shared.clone();
        let (table, _) = setup(&target, 12);
        let q: Sequence = shared.parse().unwrap();
        let params = DsoftParams {
            chunk_size: 64,
            bin_size: 64,
            threshold: 1,
            transitions: false,
            query_stride: 1,
        };
        let r = dsoft_seeds(&table, &q, &params);
        assert!(r.raw_hits > r.hits.len() as u64 * 3);
        assert!(r.hits.len() as u64 <= r.bands_touched);
    }

    #[test]
    fn threshold_filters_sparse_bands() {
        let shared = "ACGGTCAGTCGATTGCAGTC"; // 20 bp → 9 seed positions at k=12
        let target = format!("TTTTTTTT{shared}TTTTTTTTTT");
        let query = format!("GGGG{shared}GGGGGG");
        let (table, _) = setup(&target, 12);
        let q: Sequence = query.parse().unwrap();
        let lenient = DsoftParams {
            threshold: 1,
            transitions: false,
            ..DsoftParams::default()
        };
        let strict = DsoftParams {
            threshold: 50,
            transitions: false,
            ..DsoftParams::default()
        };
        assert!(!dsoft_seeds(&table, &q, &lenient).hits.is_empty());
        assert!(dsoft_seeds(&table, &q, &strict).hits.is_empty());
    }

    #[test]
    fn transitions_increase_lookups_and_can_rescue_hits() {
        // Query differs from target by one transition (A→G) inside the
        // only seed window.
        let target = "TTTTACGTACGTACGTTTTT";
        let query = "GGGGGCGTACGTACGTGGGG"; // A→G at the window start
        let (table, _) = setup(target, 12);
        let q: Sequence = query.parse().unwrap();
        let without = dsoft_seeds(
            &table,
            &q,
            &DsoftParams {
                transitions: false,
                ..DsoftParams::default()
            },
        );
        let with = dsoft_seeds(
            &table,
            &q,
            &DsoftParams {
                transitions: true,
                ..DsoftParams::default()
            },
        );
        assert!(with.seeds_queried > without.seeds_queried * 10);
        assert!(with.raw_hits >= without.raw_hits);
        assert!(!with.hits.is_empty());
    }

    #[test]
    fn stride_reduces_lookups() {
        let target = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let (table, _) = setup(target, 12);
        let q: Sequence = target.parse().unwrap();
        let stride1 = dsoft_seeds(
            &table,
            &q,
            &DsoftParams {
                transitions: false,
                ..DsoftParams::default()
            },
        );
        let stride4 = dsoft_seeds(
            &table,
            &q,
            &DsoftParams {
                transitions: false,
                query_stride: 4,
                ..DsoftParams::default()
            },
        );
        assert!(stride4.seeds_queried < stride1.seeds_queried);
        assert!(!stride4.hits.is_empty());
    }

    #[test]
    fn chunk_aligned_shards_merge_to_whole_query_result() {
        let unit = "ACGGTCAGTCGATTGCAGTCTTAGGCCATA";
        let target: String = unit.repeat(40);
        let (table, _) = setup(&target, 12);
        let q: Sequence = unit.repeat(37).parse().unwrap();
        for (chunk_size, stride, threshold) in [(64, 1, 1), (32, 3, 2), (128, 7, 1)] {
            let params = DsoftParams {
                chunk_size,
                bin_size: 64,
                threshold,
                transitions: false,
                query_stride: stride,
            };
            let whole = dsoft_seeds(&table, &q, &params);
            assert!(!whole.hits.is_empty());
            // Uneven chunk-aligned cuts, including an empty final shard.
            let cuts = [
                0,
                chunk_size,
                chunk_size * 4,
                chunk_size * 5,
                q.len().div_ceil(chunk_size) * chunk_size,
            ];
            let parts: Vec<DsoftResult> = cuts
                .windows(2)
                .map(|w| dsoft_seeds_range(&table, &q, &params, w[0]..w[1]))
                .collect();
            assert_eq!(
                merge_dsoft_results(parts),
                whole,
                "c={chunk_size} stride={stride} h={threshold}"
            );
        }
    }

    #[test]
    fn full_range_equals_whole_query() {
        let shared = "ACGGTCAGTCGATTGCAGTC".repeat(8);
        let (table, _) = setup(&shared, 12);
        let q: Sequence = shared.parse().unwrap();
        let params = DsoftParams::default();
        assert_eq!(
            dsoft_seeds_range(&table, &q, &params, 0..q.len()),
            dsoft_seeds(&table, &q, &params)
        );
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_zero_threshold() {
        let (table, _) = setup("ACGTACGTACGTACGT", 12);
        let q: Sequence = "ACGTACGTACGTACGT".parse().unwrap();
        dsoft_seeds(
            &table,
            &q,
            &DsoftParams {
                threshold: 0,
                ..DsoftParams::default()
            },
        );
    }
}
