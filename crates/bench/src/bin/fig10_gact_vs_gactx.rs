//! Figure 10 — GACT vs GACT-X: alignment quality and throughput vs
//! traceback memory.
//!
//! The paper feeds the same anchors (from the Darwin-WGA seeding+filter
//! stages on ce11/cb4 chromosome X) to GACT at 512 KB / 1 MB / 2 MB of
//! traceback memory and to GACT-X at its default (1 MB, tile 1920), and
//! plots matched base pairs and base pairs aligned per second, both
//! normalised to GACT-X.
//!
//! Expected shape: GACT quality grows with memory but stays below GACT-X
//! even at 2 MB; GACT throughput is well below GACT-X at equal memory
//! (paper: 0.56× matched bp and 0.66× throughput at 1 MB).
//!
//! Run with: `cargo run --release -p wga-bench --bin fig10_gact_vs_gactx`
//! Optional args: `[genome_len]` (default 60000).

use align::cigar::AlignOp;
use align::gactx::{extend_alignment, TilingParams};
use genome::evolve::SpeciesPair;
use genome::Sequence;
use hwsim::gactx_array::GactXBank;
use seed::Anchor;
use std::time::Instant;
use wga_bench::paper_pair;
use wga_core::config::{FilterStage, WgaParams};
use wga_core::stages::run_filter;

struct Outcome {
    label: String,
    matched: u64,
    true_matched: u64,
    precision: f64,
    bp_per_sec: f64,
    hw_tiles_per_sec: f64,
    peak_traceback: u64,
}

/// Counts aligned pairs of an alignment that are ground-truth orthologous.
fn true_pairs(
    alignment: &align::Alignment,
    truth: &std::collections::HashSet<(usize, usize)>,
) -> u64 {
    let (mut t, mut q) = (alignment.target_start, alignment.query_start);
    let mut hits = 0u64;
    for op in alignment.cigar.iter_ops() {
        match op {
            AlignOp::Match | AlignOp::Subst => {
                if truth.contains(&(t, q)) {
                    hits += 1;
                }
                t += 1;
                q += 1;
            }
            AlignOp::Insert => q += 1,
            AlignOp::Delete => t += 1,
        }
    }
    hits
}

fn run_extender(
    label: &str,
    params: &TilingParams,
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    truth: &std::collections::HashSet<(usize, usize)>,
) -> Outcome {
    let w = genome::SubstitutionMatrix::darwin_wga();
    let g = genome::GapPenalties::darwin_wga();
    let start = Instant::now();
    let mut matched = 0u64;
    let mut truem = 0u64;
    let mut aligned_bp = 0u64;
    let (mut tiles, mut cells, mut rows) = (0u64, 0u64, 0u64);
    let mut peak = 0u64;
    for anchor in anchors {
        if let Some(ext) =
            extend_alignment(target, query, anchor.target_pos, anchor.query_pos, &w, &g, params)
        {
            matched += ext.alignment.matches();
            truem += true_pairs(&ext.alignment, truth);
            aligned_bp += ext.alignment.cigar.aligned_pairs();
            tiles += ext.stats.tiles;
            cells += ext.stats.cells;
            rows += ext.stats.rows;
            peak = peak.max(ext.stats.peak_traceback_bytes);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    // Hardware throughput for this workload on one FPGA GACT-X-style array.
    let bank = GactXBank {
        num_arrays: 1,
        ..GactXBank::fpga()
    };
    let hw_seconds = bank.seconds_for_workload(tiles, cells, rows).max(1e-12);
    Outcome {
        label: label.to_string(),
        matched,
        true_matched: truem,
        precision: truem as f64 / aligned_bp.max(1) as f64,
        bp_per_sec: aligned_bp as f64 / elapsed,
        hw_tiles_per_sec: tiles as f64 / hw_seconds,
        peak_traceback: peak,
    }
}

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);

    // Anchors from the Darwin-WGA seeding + gapped filtering stages on the
    // ce11-cb4 stand-in, exactly as in the paper's methodology (§V-B).
    let sp = &SpeciesPair::paper_pairs()[0];
    let pair = paper_pair(sp, genome_len, 31);
    let params = WgaParams::darwin_wga();
    let table = seed::SeedTable::build(
        &pair.target.sequence,
        &params.seed_pattern,
        params.max_seed_occurrences,
    );
    let seeding = seed::dsoft_seeds(&table, &pair.query.sequence, &params.dsoft);
    let mut anchors: Vec<Anchor> = seeding
        .hits
        .iter()
        .filter_map(|&hit| {
            run_filter(&params, &pair.target.sequence, &pair.query.sequence, hit).anchor
        })
        .collect();
    anchors.sort_by_key(|a| std::cmp::Reverse(a.filter_score));
    anchors.truncate(200);
    let FilterStage::Gapped(f) = params.filter else {
        unreachable!()
    };
    println!(
        "Figure 10 — GACT vs GACT-X on {} anchors from the {} stand-in (Hf={})\n",
        anchors.len(),
        sp.name(),
        f.threshold
    );

    let configs: Vec<(String, TilingParams)> = vec![
        ("GACT 512KB".into(), TilingParams::gact_with_memory(512 * 1024)),
        ("GACT 1MB".into(), TilingParams::gact_with_memory(1024 * 1024)),
        ("GACT 2MB".into(), TilingParams::gact_with_memory(2 * 1024 * 1024)),
        ("GACT-X (1MB)".into(), TilingParams::gactx_default()),
    ];

    let truth: std::collections::HashSet<(usize, usize)> =
        pair.orthologous_pairs().into_iter().collect();
    let outcomes: Vec<Outcome> = configs
        .iter()
        .map(|(label, p)| {
            run_extender(label, p, &pair.target.sequence, &pair.query.sequence, &anchors, &truth)
        })
        .collect();

    let reference = outcomes.last().expect("GACT-X present");
    println!(
        "{:<14} {:>6} {:>11} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "extender", "tile", "matched bp", "true bp", "norm.true", "precision", "norm.sw-bps", "norm.hw-tiles"
    );
    for (o, (_, p)) in outcomes.iter().zip(&configs) {
        println!(
            "{:<14} {:>6} {:>11} {:>10} {:>10.2} {:>9.1}% {:>12.2} {:>14.2}",
            o.label,
            p.tile_size,
            o.matched,
            o.true_matched,
            o.true_matched as f64 / reference.true_matched.max(1) as f64,
            o.precision * 100.0,
            o.bp_per_sec / reference.bp_per_sec.max(1e-9),
            o.hw_tiles_per_sec / reference.hw_tiles_per_sec.max(1e-9),
        );
    }
    println!(
        "\nPeak traceback memory actually used by GACT-X: {} KB of its 1 MB budget",
        reference.peak_traceback / 1024
    );
    println!("\nPaper (Fig. 10): GACT at 1MB reaches only 0.56x matched bp and 0.66x the");
    println!("throughput of GACT-X; even at 2MB (tile 2048 > GACT-X's 1920) GACT stays below.");
    println!("Expected shape here: GACT's unconstrained tiles wander off-diagonal (its raw");
    println!("matched-bp count is inflated by spurious pairs — low precision), its ground-");
    println!("truth quality never exceeds GACT-X's, and its modelled hardware throughput");
    println!("falls well below GACT-X at equal (1MB) and even double (2MB) memory.");
}
