//! Property-based tests of pipeline-level invariants.

use genome::evolve::{EvolutionParams, SyntheticPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wga_core::config::WgaParams;
use wga_core::pipeline::WgaPipeline;

fn synthetic(distance: f64, len: usize, seed: u64) -> SyntheticPair {
    let mut rng = StdRng::seed_from_u64(seed);
    SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_hold_on_random_pairs(
        seed in 0u64..10_000,
        distance in 0.05f64..0.9,
    ) {
        let pair = synthetic(distance, 8_000, seed);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);

        // Funnel monotonicity.
        prop_assert!(report.counters.anchors_passed <= report.counters.hits_filtered);
        prop_assert!(
            report.counters.alignments_kept + report.counters.anchors_absorbed
                <= report.counters.anchors_passed
        );
        prop_assert_eq!(report.counters.alignments_kept, report.alignments.len() as u64);
        prop_assert_eq!(report.workload.filter_tiles, report.counters.hits_filtered);

        for wa in &report.alignments {
            // Every alignment is consistent and above the threshold.
            prop_assert!(wa.alignment.validate(&pair.target.sequence, &pair.query.sequence).is_ok());
            prop_assert!(wa.alignment.score >= 4000);
            // Scores are exact.
            prop_assert_eq!(
                wa.alignment.score,
                wa.alignment.rescore(
                    &pair.target.sequence,
                    &pair.query.sequence,
                    &genome::SubstitutionMatrix::darwin_wga(),
                    &genome::GapPenalties::darwin_wga(),
                )
            );
        }

        // Sorted by descending score.
        for w in report.alignments.windows(2) {
            prop_assert!(w[0].alignment.score >= w[1].alignment.score);
        }
    }

    #[test]
    fn baseline_never_finds_more_than_iso_threshold_darwin(
        seed in 0u64..10_000,
    ) {
        // With identical thresholds (He = Hf = 3000 for both), gapped
        // filtering passes a superset of what ungapped filtering passes,
        // so Darwin's anchors must be at least the baseline's.
        let pair = synthetic(0.5, 8_000, seed);
        let darwin = WgaPipeline::new(
            WgaParams::darwin_wga().with_filter_threshold(3000),
        )
        .run(&pair.target.sequence, &pair.query.sequence);
        let lastz = WgaPipeline::new(WgaParams::lastz_baseline())
            .run(&pair.target.sequence, &pair.query.sequence);
        prop_assert!(
            darwin.counters.anchors_passed >= lastz.counters.anchors_passed,
            "darwin {} < lastz {}",
            darwin.counters.anchors_passed,
            lastz.counters.anchors_passed
        );
    }
}
