//! Translated-search throughput (the §IX future-work feature).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use genome::markov::MarkovModel;
use protein::amino::{translate, Frame};
use protein::search::{tblastx, TblastxParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tblastx(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let model = MarkovModel::genome_like();
    let target = model.generate(20_000, &mut rng);
    let query = model.generate(20_000, &mut rng);

    let mut group = c.benchmark_group("tblastx");
    group.sample_size(10);
    group.throughput(Throughput::Elements(target.len() as u64));
    group.bench_function("translate_6_frames", |b| {
        b.iter(|| {
            for f in Frame::all() {
                black_box(translate(black_box(&target), f));
            }
        })
    });
    group.bench_function("search_20kb_vs_20kb", |b| {
        b.iter(|| tblastx(black_box(&target), black_box(&query), &TblastxParams::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_tblastx);
criterion_main!(benches);
