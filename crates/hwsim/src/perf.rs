//! End-to-end runtime and efficiency roll-ups (Table V).
//!
//! A whole-genome alignment run produces a [`Workload`] (seeds, filter
//! tiles, extension work). Combined with measured software throughputs
//! and the accelerator cycle models this yields the Table V columns:
//! LASTZ-style runtime, iso-sensitive software runtime, Darwin-WGA
//! hardware runtime, and the performance/$ and performance/W improvement
//! factors.

use crate::platform::{AcceleratorConfig, CpuConfig};
use serde::{Deserialize, Serialize};

/// Workload counters of one whole-genome alignment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Seed words queried (the paper's "Seeds" column).
    pub seeds: u64,
    /// Gapped filter tiles executed (the "Filter tiles" column).
    pub filter_tiles: u64,
    /// Extension tiles executed (the "Extension tiles" column).
    pub extension_tiles: u64,
    /// Total live DP cells across extension tiles.
    pub extension_cells: u64,
    /// Total DP rows across extension tiles.
    pub extension_rows: u64,
}

impl Workload {
    /// Merges another workload into this one.
    pub fn merge(&mut self, other: &Workload) {
        self.seeds += other.seeds;
        self.filter_tiles += other.filter_tiles;
        self.extension_tiles += other.extension_tiles;
        self.extension_cells += other.extension_cells;
        self.extension_rows += other.extension_rows;
    }
}

/// Measured single-machine software throughputs, used both for the
/// software rows of Table V and for the stage that stays in software on
/// the accelerated platform (seeding).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftwareThroughput {
    /// Seed lookups per second (all threads).
    pub seeds_per_second: f64,
    /// Software BSW filter tiles per second (all threads) — the Parasail
    /// role: this rate defines the *iso-sensitive software* baseline.
    pub filter_tiles_per_second: f64,
    /// Software ungapped filter hits per second (all threads) — the
    /// LASTZ-style filter rate.
    pub ungapped_filters_per_second: f64,
    /// Software extension tiles per second (all threads).
    pub extension_tiles_per_second: f64,
}

/// Runtime breakdown of one platform on one workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBreakdown {
    /// Seeding seconds (always software).
    pub seeding_s: f64,
    /// Filtering seconds.
    pub filtering_s: f64,
    /// Extension seconds.
    pub extension_s: f64,
}

impl RuntimeBreakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.seeding_s + self.filtering_s + self.extension_s
    }
}

/// Runtime of the iso-sensitive *software* pipeline (gapped filtering in
/// software, as Parasail would run it).
pub fn software_runtime(workload: &Workload, sw: &SoftwareThroughput) -> RuntimeBreakdown {
    RuntimeBreakdown {
        seeding_s: safe_div(workload.seeds as f64, sw.seeds_per_second),
        filtering_s: safe_div(workload.filter_tiles as f64, sw.filter_tiles_per_second),
        extension_s: safe_div(workload.extension_tiles as f64, sw.extension_tiles_per_second),
    }
}

/// Runtime of the accelerated pipeline: seeding in software, filtering on
/// the BSW bank, extension on the GACT-X bank.
pub fn accelerated_runtime(
    workload: &Workload,
    sw: &SoftwareThroughput,
    acc: &AcceleratorConfig,
) -> RuntimeBreakdown {
    let filter_tps = acc.filter_tiles_per_second();
    let extension_s = acc.gactx.seconds_for_workload(
        workload.extension_tiles,
        workload.extension_cells,
        workload.extension_rows,
    );
    RuntimeBreakdown {
        seeding_s: safe_div(workload.seeds as f64, sw.seeds_per_second),
        filtering_s: safe_div(workload.filter_tiles as f64, filter_tps),
        extension_s,
    }
}

/// Performance-per-dollar improvement of an accelerator run over a
/// software run: `(T_sw · price_sw) / (T_hw · price_hw)`.
///
/// # Panics
///
/// Panics if the accelerator has no hourly price (ASIC configs).
pub fn perf_per_dollar_improvement(
    sw_seconds: f64,
    cpu: &CpuConfig,
    hw_seconds: f64,
    acc: &AcceleratorConfig,
) -> f64 {
    assert!(
        acc.price_per_hour.is_some(),
        "accelerator has no hourly price; use perf/W for ASICs"
    );
    let hw_price = acc.price_per_hour.unwrap_or_default();
    (sw_seconds * cpu.price_per_hour) / (hw_seconds * hw_price)
}

/// Performance-per-watt improvement: `(T_sw · P_sw) / (T_hw · P_hw)`.
pub fn perf_per_watt_improvement(
    sw_seconds: f64,
    cpu: &CpuConfig,
    hw_seconds: f64,
    acc: &AcceleratorConfig,
) -> f64 {
    (sw_seconds * cpu.power_w) / (hw_seconds * acc.power_w)
}

/// Energy and dollar cost of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy in joules (seconds × platform watts).
    pub joules: f64,
    /// Cloud cost in dollars (None when the platform has no hourly price).
    pub dollars: Option<f64>,
}

/// Cost of running `seconds` on the CPU baseline.
pub fn cpu_run_cost(seconds: f64, cpu: &CpuConfig) -> RunCost {
    RunCost {
        seconds,
        joules: seconds * cpu.power_w,
        dollars: Some(seconds / 3600.0 * cpu.price_per_hour),
    }
}

/// Cost of running `seconds` on an accelerator platform.
pub fn accelerator_run_cost(seconds: f64, acc: &AcceleratorConfig) -> RunCost {
    RunCost {
        seconds,
        joules: seconds * acc.power_w,
        dollars: acc.price_per_hour.map(|p| seconds / 3600.0 * p),
    }
}

/// Modeled accelerator cycle counts for one workload, one figure per
/// offloaded stage. Integer by construction, so trace consumers can diff
/// them across runs; the observability layer emits them as `hwsim.bsw` /
/// `hwsim.gactx` trace spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeledCycles {
    /// Filter tiles offloaded to the BSW bank.
    pub bsw_tiles: u64,
    /// Single-array cycles the BSW bank spends on them.
    pub bsw_cycles: u64,
    /// Extension tiles offloaded to the GACT-X bank.
    pub gactx_tiles: u64,
    /// Single-array cycles the GACT-X bank spends on them.
    pub gactx_cycles: u64,
}

/// Replays a workload summary extracted from a trace through the
/// accelerator cycle models — the entry point behind `wga profile`'s
/// modeled-vs-measured drift engine.
///
/// The five integers are exactly what a schema-2 trace carries: `seeds`
/// from the `seed` spans' `cells`, `filter_tiles` from the
/// `filter.tiles` counter, `extension_tiles` from the `extend.tile`
/// spans' `items`, and `extension_cells`/`extension_rows` from the
/// `extend.cells`/`extend.rows` counters. Returns the assembled
/// [`Workload`] alongside its [`ModeledCycles`] so callers can report
/// both; the cycle figures are identical to what the run itself would
/// have recorded as `hwsim.bsw`/`hwsim.gactx` spans, making any gap a
/// pure model/extraction drift signal (never timing noise).
pub fn replay_trace_workload(
    seeds: u64,
    filter_tiles: u64,
    extension_tiles: u64,
    extension_cells: u64,
    extension_rows: u64,
    acc: &AcceleratorConfig,
) -> (Workload, ModeledCycles) {
    let workload = Workload {
        seeds,
        filter_tiles,
        extension_tiles,
        extension_cells,
        extension_rows,
    };
    let modeled = modeled_cycles(&workload, acc);
    (workload, modeled)
}

/// Rolls a measured [`Workload`] through the accelerator cycle models.
pub fn modeled_cycles(workload: &Workload, acc: &AcceleratorConfig) -> ModeledCycles {
    ModeledCycles {
        bsw_tiles: workload.filter_tiles,
        bsw_cycles: acc.bsw.cycles_for_workload(workload.filter_tiles),
        gactx_tiles: workload.extension_tiles,
        gactx_cycles: acc.gactx.cycles_for_workload(
            workload.extension_tiles,
            workload.extension_cells,
            workload.extension_rows,
        ),
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_workload() -> Workload {
        Workload {
            seeds: 1_000_000_000,
            filter_tiles: 10_000_000_000, // filter dominates, as in Table V
            extension_tiles: 3_000_000,
            extension_cells: 3_000_000 * 1920 * 600,
            extension_rows: 3_000_000 * 1920,
        }
    }

    fn sample_sw() -> SoftwareThroughput {
        SoftwareThroughput {
            seeds_per_second: 50.0e6,
            filter_tiles_per_second: 225.0e3, // the paper's Parasail rate
            ungapped_filters_per_second: 45.0e6,
            extension_tiles_per_second: 1.0e3,
        }
    }

    #[test]
    fn software_filtering_dominates() {
        let rt = software_runtime(&sample_workload(), &sample_sw());
        assert!(rt.filtering_s > 0.8 * rt.total_s());
    }

    #[test]
    fn fpga_accelerates_by_orders_of_magnitude() {
        let w = sample_workload();
        let sw = sample_sw();
        let fpga = AcceleratorConfig::fpga();
        let sw_rt = software_runtime(&w, &sw);
        let hw_rt = accelerated_runtime(&w, &sw, &fpga);
        assert!(hw_rt.total_s() < sw_rt.total_s() / 10.0);
        let cpu = CpuConfig::c4_8xlarge();
        let perf = perf_per_dollar_improvement(sw_rt.total_s(), &cpu, hw_rt.total_s(), &fpga);
        assert!(perf > 5.0, "{perf}");
    }

    #[test]
    fn asic_perf_per_watt_is_large() {
        let w = sample_workload();
        let sw = sample_sw();
        let asic = AcceleratorConfig::asic();
        let sw_rt = software_runtime(&w, &sw);
        let hw_rt = accelerated_runtime(&w, &sw, &asic);
        let cpu = CpuConfig::c4_8xlarge();
        let perf = perf_per_watt_improvement(sw_rt.total_s(), &cpu, hw_rt.total_s(), &asic);
        // Paper: ~1500×. Our sample workload should land in the hundreds
        // to thousands.
        assert!(perf > 100.0, "{perf}");
    }

    #[test]
    #[should_panic(expected = "no hourly price")]
    fn asic_has_no_dollar_price() {
        let asic = AcceleratorConfig::asic();
        perf_per_dollar_improvement(1.0, &CpuConfig::c4_8xlarge(), 1.0, &asic);
    }

    #[test]
    fn run_costs() {
        let cpu = CpuConfig::c4_8xlarge();
        let c = cpu_run_cost(3600.0, &cpu);
        assert!((c.joules - 215.0 * 3600.0).abs() < 1e-6);
        assert!((c.dollars.unwrap() - 1.59).abs() < 1e-9);
        let fpga = accelerator_run_cost(3600.0, &AcceleratorConfig::fpga());
        assert!((fpga.dollars.unwrap() - 1.65).abs() < 1e-9);
        let asic = accelerator_run_cost(10.0, &AcceleratorConfig::asic());
        assert_eq!(asic.dollars, None);
        assert!((asic.joules - 433.4).abs() < 1e-6);
    }

    #[test]
    fn modeled_cycles_track_the_bank_models() {
        let w = sample_workload();
        let acc = AcceleratorConfig::fpga();
        let m = modeled_cycles(&w, &acc);
        assert_eq!(m.bsw_tiles, w.filter_tiles);
        assert_eq!(m.bsw_cycles, acc.bsw.cycles_for_workload(w.filter_tiles));
        assert_eq!(
            m.gactx_cycles,
            acc.gactx
                .cycles_for_workload(w.extension_tiles, w.extension_cells, w.extension_rows)
        );
        assert!(m.bsw_cycles > 0 && m.gactx_cycles > 0);
        assert_eq!(modeled_cycles(&Workload::default(), &acc), ModeledCycles::default());
    }

    #[test]
    fn replay_matches_direct_model() {
        let w = sample_workload();
        let acc = AcceleratorConfig::fpga();
        let (replayed_w, replayed) = replay_trace_workload(
            w.seeds,
            w.filter_tiles,
            w.extension_tiles,
            w.extension_cells,
            w.extension_rows,
            &acc,
        );
        assert_eq!(replayed_w, w);
        assert_eq!(replayed, modeled_cycles(&w, &acc));
    }

    #[test]
    fn workload_merge() {
        let mut a = sample_workload();
        let before = a.filter_tiles;
        a.merge(&sample_workload());
        assert_eq!(a.filter_tiles, 2 * before);
    }

    #[test]
    fn zero_throughput_is_zero_time() {
        let rt = software_runtime(
            &Workload::default(),
            &SoftwareThroughput {
                seeds_per_second: 0.0,
                filter_tiles_per_second: 0.0,
                ungapped_filters_per_second: 0.0,
                extension_tiles_per_second: 0.0,
            },
        );
        assert_eq!(rt.total_s(), 0.0);
    }
}
