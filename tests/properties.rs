//! Cross-kernel property tests: BSW symmetry, BSW vs full Smith-Waterman,
//! and CIGAR length round-trips.
//!
//! These pin the algebraic invariants the pipeline silently relies on:
//! the banded filter is symmetric under query/reference swap (the
//! Darwin-WGA matrix is symmetric and gap penalties are strand-agnostic),
//! a banded maximum can never beat the unbanded optimum, and every CIGAR
//! a kernel emits consumes exactly the aligned spans it claims.

use darwin_wga::align::banded::banded_smith_waterman;
use darwin_wga::align::bsw_fast::{banded_smith_waterman_wavefront, WavefrontScratch};
use darwin_wga::align::cigar::{AlignOp, Cigar};
use darwin_wga::align::nw::needleman_wunsch;
use darwin_wga::align::sw::smith_waterman;
use darwin_wga::align::xdrop::xdrop_tile;
use darwin_wga::genome::{Base, GapPenalties, Sequence, SubstitutionMatrix};
use proptest::prelude::*;

fn dna_strategy(min: usize, max: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0u8..4, min..max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// A base sequence plus a mutated copy (substitutions and indels).
fn related_pair() -> impl Strategy<Value = (Sequence, Sequence)> {
    (dna_strategy(10, 240), any::<u64>()).prop_map(|(s, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Sequence::new();
        for b in s.iter() {
            match rng.gen_range(0..16) {
                0 => {}
                1 => {
                    q.push(Base::from_code(rng.gen_range(0..4)));
                    q.push(b);
                }
                2 => q.push(Base::from_code(rng.gen_range(0..4))),
                _ => q.push(b),
            }
        }
        (s, q)
    })
}

fn scoring() -> (SubstitutionMatrix, GapPenalties) {
    (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bsw_is_symmetric_under_sequence_swap((t, q) in related_pair(), band in 1usize..80) {
        // The Table IIa matrix is symmetric and gap penalties apply
        // identically to either sequence, and the band |i-j| <= B is a
        // symmetric region — so swapping target and query transposes the
        // DP matrix without changing its values: the maximum score and
        // the number of banded cells are invariant. (The argmax *cell*
        // may differ under ties: row-major order is not transpose-
        // invariant.)
        let (w, g) = scoring();
        let fwd = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        let rev = banded_smith_waterman(q.as_slice(), t.as_slice(), &w, &g, band);
        prop_assert_eq!(fwd.max_score, rev.max_score);
        prop_assert_eq!(fwd.cells, rev.cells);
        // The swapped argmax must attain the same maximum in the
        // transposed matrix; spot-check via the wavefront engine too.
        let mut scratch = WavefrontScratch::new();
        let wf_rev = banded_smith_waterman_wavefront(
            q.as_slice(), t.as_slice(), &w, &g, band, &mut scratch);
        prop_assert_eq!(rev, wf_rev);
    }

    #[test]
    fn bsw_never_exceeds_full_smith_waterman((t, q) in related_pair(), band in 1usize..64) {
        // Banding only removes paths, so the banded maximum is a lower
        // bound on the full Gotoh local optimum — for both engines.
        let (w, g) = scoring();
        let full = smith_waterman(t.as_slice(), q.as_slice(), &w, &g);
        let banded = banded_smith_waterman(t.as_slice(), q.as_slice(), &w, &g, band);
        prop_assert!(banded.max_score <= full.best_score,
            "banded {} > full {}", banded.max_score, full.best_score);
        let mut scratch = WavefrontScratch::new();
        let wf = banded_smith_waterman_wavefront(
            t.as_slice(), q.as_slice(), &w, &g, band, &mut scratch);
        prop_assert!(wf.max_score <= full.best_score);
        prop_assert_eq!(wf, banded);
    }

    #[test]
    fn sw_cigar_consumes_exactly_the_aligned_spans((t, q) in related_pair()) {
        let (w, g) = scoring();
        if let Some(a) = smith_waterman(t.as_slice(), q.as_slice(), &w, &g).alignment {
            prop_assert_eq!(a.cigar.target_len(), a.target_span());
            prop_assert_eq!(a.cigar.query_len(), a.query_span());
            prop_assert!(a.validate(&t, &q).is_ok());
        }
    }

    #[test]
    fn nw_cigar_consumes_both_sequences_completely((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        prop_assert_eq!(r.cigar.target_len(), t.len());
        prop_assert_eq!(r.cigar.query_len(), q.len());
    }

    #[test]
    fn xdrop_cigar_consumes_exactly_the_reported_spans((t, q) in related_pair()) {
        let (w, g) = scoring();
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, 9430);
        prop_assert_eq!(r.cigar.target_len(), r.max_target);
        prop_assert_eq!(r.cigar.query_len(), r.max_query);
    }

    #[test]
    fn cigar_push_roundtrips_op_counts(ops in prop::collection::vec((0u8..4, 1u32..9), 0..24)) {
        // Building a CIGAR run-by-run preserves exactly the pushed ops
        // (merging adjacent equal ops changes representation, never
        // content): lengths, per-op counts and the op stream round-trip.
        let decode = |c: u8| match c {
            0 => AlignOp::Match,
            1 => AlignOp::Subst,
            2 => AlignOp::Insert,
            _ => AlignOp::Delete,
        };
        let mut cigar = Cigar::new();
        let mut expect_target = 0usize;
        let mut expect_query = 0usize;
        let mut expect_ops: Vec<AlignOp> = Vec::new();
        for &(code, count) in &ops {
            let op = decode(code);
            cigar.push(op, count);
            if op.consumes_target() { expect_target += count as usize; }
            if op.consumes_query() { expect_query += count as usize; }
            expect_ops.extend(std::iter::repeat_n(op, count as usize));
        }
        prop_assert_eq!(cigar.target_len(), expect_target);
        prop_assert_eq!(cigar.query_len(), expect_query);
        prop_assert_eq!(cigar.iter_ops().collect::<Vec<_>>(), expect_ops);
        // Adjacent runs are always merged: no two consecutive runs share
        // an op, so the text form is canonical.
        for pair in cigar.runs().windows(2) {
            prop_assert!(pair[0].0 != pair[1].0, "unmerged runs in {}", cigar);
        }
        // And a rebuilt copy from the op stream is identical.
        let mut rebuilt = Cigar::new();
        for op in cigar.iter_ops() {
            rebuilt.push(op, 1);
        }
        prop_assert_eq!(rebuilt.runs(), cigar.runs());
    }
}
