//! The extended DNA alphabet `{A, C, G, T, N}` used throughout Darwin-WGA.
//!
//! The hardware stores bases using 3 bits (§IV of the paper); in software we
//! keep one byte per base in [`crate::Sequence`] but expose the same 3-bit
//! code via [`Base::code`] so the hardware model and packed storage agree.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single nucleotide of the extended DNA alphabet.
///
/// `N` denotes an ambiguous/unknown base; it never matches anything,
/// including another `N`.
///
/// # Examples
///
/// ```
/// use genome::Base;
///
/// let b = Base::from_ascii(b'a').unwrap();
/// assert_eq!(b, Base::A);
/// assert_eq!(b.complement(), Base::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
    /// Ambiguous base.
    N = 4,
}

impl Base {
    /// All four unambiguous bases, in code order.
    pub const DNA: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Parses an ASCII byte (case-insensitive). Any IUPAC ambiguity code
    /// other than `A`/`C`/`G`/`T` maps to `N`; bytes that are not letters
    /// return `None`.
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<Base> {
        match byte.to_ascii_uppercase() {
            b'A' => Some(Base::A),
            b'C' => Some(Base::C),
            b'G' => Some(Base::G),
            b'T' => Some(Base::T),
            b'B'..=b'Z' => Some(Base::N),
            _ => None,
        }
    }

    /// The 3-bit hardware code of this base (`A=0, C=1, G=2, T=3, N=4`).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Reconstructs a base from a 3-bit hardware code.
    ///
    /// Codes `0..=3` map to `A/C/G/T`; everything else maps to `N`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b111 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => Base::N,
        }
    }

    /// The 2-bit code of an unambiguous base.
    ///
    /// # Panics
    ///
    /// Panics if the base is [`Base::N`]; use [`Base::code`] when ambiguous
    /// bases may be present.
    #[inline]
    pub fn code2(self) -> u8 {
        assert!(self != Base::N, "N has no 2-bit code");
        self as u8
    }

    /// The uppercase ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
            Base::N => b'N',
        }
    }

    /// The Watson–Crick complement (`N` complements to `N`).
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }

    /// Whether `self → other` is a *transition* substitution
    /// (`A↔G` or `C↔T`, §III-B of the paper).
    ///
    /// Identical bases and pairs involving `N` are not transitions.
    #[inline]
    pub fn is_transition(self, other: Base) -> bool {
        matches!(
            (self, other),
            (Base::A, Base::G) | (Base::G, Base::A) | (Base::C, Base::T) | (Base::T, Base::C)
        )
    }

    /// Whether `self → other` is a *transversion* (any substitution that is
    /// not a transition; pairs involving `N` are not transversions).
    #[inline]
    pub fn is_transversion(self, other: Base) -> bool {
        self != other && self != Base::N && other != Base::N && !self.is_transition(other)
    }

    /// Whether this is a purine (`A` or `G`).
    #[inline]
    pub fn is_purine(self) -> bool {
        matches!(self, Base::A | Base::G)
    }

    /// Whether this is a pyrimidine (`C` or `T`).
    #[inline]
    pub fn is_pyrimidine(self) -> bool {
        matches!(self, Base::C | Base::T)
    }

    /// The transition partner of an unambiguous base (`A↔G`, `C↔T`);
    /// `N` maps to itself.
    #[inline]
    pub fn transition_partner(self) -> Base {
        match self {
            Base::A => Base::G,
            Base::G => Base::A,
            Base::C => Base::T,
            Base::T => Base::C,
            Base::N => Base::N,
        }
    }
}

#[allow(clippy::derivable_impls)] // explicit: the default base is the *unknown* base
impl Default for Base {
    fn default() -> Self {
        Base::N
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_ascii() as char
    }
}

impl TryFrom<u8> for Base {
    type Error = ParseBaseError;

    fn try_from(byte: u8) -> Result<Base, ParseBaseError> {
        Base::from_ascii(byte).ok_or(ParseBaseError { byte })
    }
}

/// Error returned when a byte cannot be interpreted as a DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBaseError {
    byte: u8,
}

impl ParseBaseError {
    /// The offending byte.
    pub fn byte(&self) -> u8 {
        self.byte
    }
}

impl fmt::Display for ParseBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {:#04x} is not a DNA base", self.byte)
    }
}

impl std::error::Error for ParseBaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        for &b in &[Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn code_round_trip() {
        for &b in &[Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn ambiguity_codes_map_to_n() {
        for byte in [b'R', b'Y', b'S', b'W', b'K', b'M', b'n'] {
            assert_eq!(Base::from_ascii(byte), Some(Base::N));
        }
        assert_eq!(Base::from_ascii(b'1'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
    }

    #[test]
    fn complement_is_involution() {
        for &b in &Base::DNA {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
        assert_eq!(Base::N.complement(), Base::N);
    }

    #[test]
    fn transition_classification() {
        assert!(Base::A.is_transition(Base::G));
        assert!(Base::T.is_transition(Base::C));
        assert!(!Base::A.is_transition(Base::A));
        assert!(!Base::A.is_transition(Base::C));
        assert!(!Base::N.is_transition(Base::A));
        assert!(Base::A.is_transversion(Base::C));
        assert!(Base::A.is_transversion(Base::T));
        assert!(!Base::A.is_transversion(Base::G));
        assert!(!Base::A.is_transversion(Base::A));
        assert!(!Base::N.is_transversion(Base::A));
    }

    #[test]
    fn purine_pyrimidine_partition() {
        let purines: Vec<_> = Base::DNA.iter().filter(|b| b.is_purine()).collect();
        let pyrimidines: Vec<_> = Base::DNA.iter().filter(|b| b.is_pyrimidine()).collect();
        assert_eq!(purines.len(), 2);
        assert_eq!(pyrimidines.len(), 2);
    }

    #[test]
    fn transition_partner_is_involution_and_a_transition() {
        for &b in &Base::DNA {
            let p = b.transition_partner();
            assert!(b.is_transition(p));
            assert_eq!(p.transition_partner(), b);
        }
    }

    #[test]
    fn parse_error_reports_byte() {
        let err = Base::try_from(b'-').unwrap_err();
        assert_eq!(err.byte(), b'-');
        assert!(err.to_string().contains("0x2d"));
    }

    #[test]
    fn two_bit_code_panics_on_n() {
        let result = std::panic::catch_unwind(|| Base::N.code2());
        assert!(result.is_err());
    }
}
