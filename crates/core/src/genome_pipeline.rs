//! Assembly-level (genome-vs-genome) alignment driver.
//!
//! Whole-genome alignment runs every query chromosome against every
//! target chromosome (LASTZ is invoked per chromosome pair and the
//! results are chained together, §V-B). This driver does the same over
//! [`genome::assembly::Assembly`] inputs, tagging each alignment with its
//! chromosome pair.
//!
//! Assembly-scale runs take hours, so the driver is fault tolerant: a
//! panic inside one chromosome pair is contained ([`RunOutcome::Failed`]
//! for that pair, the rest of the run continues), and an optional
//! checkpoint journal ([`AlignOptions::checkpoint`]) makes completed
//! pairs durable so an interrupted run resumes where it left off with a
//! byte-identical final report (see [`AssemblyReport::canonical_text`]).
//!
//! The filter stage of every pair runs through the engine selected by
//! [`WgaParams::filter_engine`] (scalar reference or batched wavefront,
//! see [`crate::filter_engine`]); both the serial and the panic-isolated
//! parallel drivers build one shared
//! [`crate::filter_engine::FilterContext`] per pair/strand and feed whole
//! batches of tiles to each worker's engine. Engine choice never changes
//! results — the golden-file regression test pins the canonical report
//! byte-identical across engines and thread counts.

use crate::config::WgaParams;
use crate::dataflow::{ExecutorKind, ExecutorMetrics, StageMetrics, DEFAULT_QUEUE_DEPTH};
use crate::error::{WgaError, WgaResult};
use crate::faultsim::{FaultInjector, FaultPlan, Hook};
use crate::journal::{params_fingerprint, Journal, JournalStats, PairRecord};
use crate::obs::{Counter, Obs, SpanName, STRAND_NA};
use crate::report::{
    FunnelCounters, PairOutcome, RunOutcome, StageTimings, Strand, WgaAlignment, WgaReport,
};
use crate::supervise::{self, RetryPolicy};
use genome::assembly::Assembly;
use genome::Sequence;
use hwsim::Workload;
use seed::SeedTable;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// One alignment located on a chromosome pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocatedAlignment {
    /// Target chromosome name.
    pub target_chrom: String,
    /// Query chromosome name.
    pub query_chrom: String,
    /// The alignment (coordinates within the named chromosomes).
    pub aligned: WgaAlignment,
}

/// Execution options for [`align_assemblies_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignOptions {
    /// Worker threads for the filter stage of each pair (`1` = serial).
    /// The dataflow executor uses this as the size of *each* of its
    /// filter and extension worker pools.
    pub threads: usize,
    /// Checkpoint journal path. When set, completed pairs are made
    /// durable as they finish and a rerun with the same parameters skips
    /// them (see [`crate::journal`]).
    pub checkpoint: Option<PathBuf>,
    /// Which execution engine drives the run: the stage-barrier driver
    /// (default) or the streaming dataflow executor
    /// (see [`crate::dataflow`]). Results are byte-identical either way.
    pub executor: ExecutorKind,
    /// Bounded-queue capacity of the dataflow executor's inter-stage
    /// queues (ignored by the barrier executor). Must be at least 1.
    pub queue_depth: usize,
    /// Supervised retries per fault site (`--max-retries`): how many
    /// times a transient journal/sink failure — or an injected error —
    /// is retried with capped-exponential backoff before escalating.
    pub max_retries: u32,
    /// Dataflow stall watchdog timeout (`--stall-timeout-ms`): when a
    /// dataflow run makes no progress for this long, its queues are
    /// closed and unfinished pairs fail instead of hanging. `0` (the
    /// default) disables the watchdog; ignored by the other executors.
    pub stall_timeout_ms: u64,
    /// Fault-injection plan (`--fault-plan` / `WGA_FAULT_PLAN`). `None`
    /// outside chaos runs.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for AlignOptions {
    fn default() -> Self {
        AlignOptions {
            threads: 1,
            checkpoint: None,
            executor: ExecutorKind::Barrier,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_retries: 1,
            stall_timeout_ms: 0,
            fault_plan: None,
        }
    }
}

/// Assembly-level run output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// All alignments across chromosome pairs.
    pub alignments: Vec<LocatedAlignment>,
    /// Aggregate workload.
    pub workload: Workload,
    /// Aggregate stage timings.
    pub timings: StageTimings,
    /// Aggregate funnel counters across all pairs. Excluded from
    /// [`AssemblyReport::canonical_text`], like timings.
    #[serde(default)]
    pub counters: FunnelCounters,
    /// Per-pair outcomes, in canonical (target × query) order.
    #[serde(default)]
    pub pairs: Vec<PairOutcome>,
    /// Pairs replayed from the checkpoint journal instead of recomputed.
    #[serde(default)]
    pub resumed_pairs: u64,
    /// Per-stage telemetry of the executor that ran this report (set by
    /// both the barrier and dataflow executors). Excluded from
    /// [`AssemblyReport::canonical_text`], like timings: telemetry varies
    /// run to run, results do not.
    #[serde(default)]
    pub stage_metrics: Option<ExecutorMetrics>,
    /// What journal recovery found when this run resumed from a
    /// checkpoint (`None` without a checkpoint). Excluded from
    /// [`AssemblyReport::canonical_text`]: recovery circumstances vary,
    /// results do not.
    #[serde(default)]
    pub journal_stats: Option<JournalStats>,
}

impl AssemblyReport {
    /// Total matched base pairs.
    pub fn total_matches(&self) -> u64 {
        self.alignments
            .iter()
            .map(|a| a.aligned.alignment.matches())
            .sum()
    }

    /// Alignments on one chromosome pair.
    pub fn for_pair(&self, target_chrom: &str, query_chrom: &str) -> Vec<&LocatedAlignment> {
        self.alignments
            .iter()
            .filter(|a| a.target_chrom == target_chrom && a.query_chrom == query_chrom)
            .collect()
    }

    /// Pairs that ran with budget trips or failed worker batches.
    pub fn degraded_pairs(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| matches!(p.outcome, RunOutcome::Degraded { .. }))
            .count()
    }

    /// Pairs that produced no results because their worker panicked.
    pub fn failed_pairs(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| matches!(p.outcome, RunOutcome::Failed { .. }))
            .count()
    }

    /// A deterministic rendering of everything except wall-clock timings,
    /// for equivalence checks between runs (e.g. interrupted-and-resumed
    /// vs uninterrupted). Two runs over the same inputs with the same
    /// parameters and budgets produce identical text regardless of thread
    /// count or how many pairs were replayed from a journal — timings and
    /// [`AssemblyReport::resumed_pairs`] are the only fields excluded.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for pair in &self.pairs {
            let tag = match &pair.outcome {
                RunOutcome::Completed => "completed".to_string(),
                RunOutcome::Degraded { events } => format!("degraded({})", events.len()),
                RunOutcome::Failed { .. } => "failed".to_string(),
            };
            out.push_str(&format!(
                "pair\t{}\t{}\t{}\n",
                pair.target_chrom, pair.query_chrom, tag
            ));
        }
        for a in &self.alignments {
            out.push_str(&format!(
                "aln\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                a.target_chrom,
                a.query_chrom,
                match a.aligned.strand {
                    Strand::Forward => '+',
                    Strand::Reverse => '-',
                },
                a.aligned.alignment.target_start,
                a.aligned.alignment.query_start,
                a.aligned.alignment.score,
                a.aligned.alignment.cigar
            ));
        }
        let w = &self.workload;
        out.push_str(&format!(
            "workload\t{}\t{}\t{}\t{}\t{}\n",
            w.seeds, w.filter_tiles, w.extension_tiles, w.extension_cells, w.extension_rows
        ));
        out
    }
}

/// Aligns every query chromosome against every target chromosome.
///
/// The seed table is built once per target chromosome and reused across
/// query chromosomes, as a production aligner would. Serial, no
/// checkpointing; see [`align_assemblies_with`] for the full-featured
/// entry point with typed errors.
///
/// # Panics
///
/// Panics when the parameters fail [`WgaParams::validate`].
///
/// # Examples
///
/// ```
/// use genome::assembly::Assembly;
/// use wga_core::{config::WgaParams, genome_pipeline::align_assemblies};
///
/// let mut target = Assembly::new("t");
/// target.push("chrI", "TTTTACGGTCAGTCGATTGCAGTCCATGGACTGATCTTTT".repeat(20).parse()?);
/// let mut query = Assembly::new("q");
/// query.push("chr1", "GGGGACGGTCAGTCGATTGCAGTCCATGGACTGATCGGGG".repeat(20).parse()?);
///
/// let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
/// assert!(report.total_matches() > 500);
/// assert_eq!(report.alignments[0].target_chrom, "chrI");
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn align_assemblies(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
) -> AssemblyReport {
    // With default options the only failure mode is degenerate
    // parameters — a caller bug at this convenience entry point.
    // `align_assemblies_with` is the typed-error path.
    let result = align_assemblies_with(params, target, query, &AlignOptions::default());
    assert!(
        result.is_ok(),
        "{}",
        result.as_ref().err().map(|e| e.to_string()).unwrap_or_default()
    );
    result.unwrap_or_default()
}

/// Aligns two assemblies with fault tolerance, parallelism and optional
/// checkpoint/resume.
///
/// Per chromosome pair: the pipeline runs under panic isolation — a
/// panicking pair is recorded as [`RunOutcome::Failed`] and the run
/// continues with the next pair. With a checkpoint journal configured,
/// every completed (or degraded) pair is fsync'd to the journal before
/// the driver moves on, and a rerun pointing at the same journal replays
/// those pairs instead of recomputing them; failed pairs are *not*
/// journaled, so a rerun retries them.
///
/// # Errors
///
/// [`WgaError::Config`] when the parameters are degenerate or
/// `options.threads` is zero; [`WgaError::Checkpoint`] /
/// [`WgaError::Io`] when the journal is unusable.
pub fn align_assemblies_with(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    options: &AlignOptions,
) -> WgaResult<AssemblyReport> {
    align_assemblies_observed(params, target, query, options, Obs::off())
}

/// [`align_assemblies_with`] with an observability hook: spans, counters
/// and histograms flow into `obs` (see [`crate::obs`]). Passing
/// [`Obs::off`] makes this identical to the plain entry point — the
/// disabled path costs one branch per instrumentation site and never
/// changes results.
pub fn align_assemblies_observed(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    options: &AlignOptions,
    obs: Obs<'_>,
) -> WgaResult<AssemblyReport> {
    align_assemblies_provided(params, target, query, options, obs, None)
}

/// Source of prebuilt seed tables for many-genome runs: maps a target
/// chromosome index to its (possibly cached) table. The callback must
/// return a table built with the *same* parameters as the run — the
/// shared-index orchestrator guarantees this by building every table
/// from one scaled parameter set. A panicking provider fails the
/// affected pairs exactly like an in-run seed-table build panic.
pub type SeedTableFn<'p> = dyn Fn(usize) -> Arc<SeedTable> + Sync + 'p;

/// [`align_assemblies_observed`] with an optional external seed-table
/// provider, so a many-genome orchestrator can share one index across
/// the whole pair matrix instead of rebuilding per genome pair.
pub(crate) fn align_assemblies_provided(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    options: &AlignOptions,
    obs: Obs<'_>,
    tables: Option<&SeedTableFn<'_>>,
) -> WgaResult<AssemblyReport> {
    params.validate()?;
    if options.threads == 0 {
        return Err(WgaError::config("threads must be at least 1"));
    }
    if options.executor == ExecutorKind::Dataflow && options.queue_depth == 0 {
        return Err(WgaError::config("queue depth must be at least 1"));
    }
    let injector = options
        .fault_plan
        .as_ref()
        .map(|plan| FaultInjector::new((**plan).clone(), options.max_retries));
    let obs = obs.with_fault(injector.as_ref());
    let retry_policy = injector.as_ref().map_or(
        RetryPolicy {
            max_retries: options.max_retries,
            ..RetryPolicy::default()
        },
        FaultInjector::policy,
    );

    let mut journal = match &options.checkpoint {
        Some(path) => Some(Journal::open(path, &params_fingerprint(params))?),
        None => None,
    };
    let journal_stats = journal.as_ref().map(Journal::stats);

    if options.executor == ExecutorKind::Dataflow {
        let mut report =
            crate::dataflow::execute(params, target, query, options, journal, obs, tables)?;
        report.journal_stats = journal_stats;
        return Ok(report);
    }

    let qn = query.chromosomes().len();
    obs.set_total_pairs((target.chromosomes().len() * qn) as u64);
    let mut out = AssemblyReport::default();
    for (ti, tchrom) in target.chromosomes().iter().enumerate() {
        // Built lazily so a fully-journaled target row skips the build.
        let mut table: Option<Arc<SeedTable>> = None;
        let mut table_failed: Option<String> = None;
        for (qi, qchrom) in query.chromosomes().iter().enumerate() {
            let pair_obs = obs.with_pair((ti * qn + qi) as u64);
            if let Some(journal) = journal.as_mut() {
                if let Some(record) = journal.take(&tchrom.name, &qchrom.name) {
                    out.resumed_pairs += 1;
                    out.workload.merge(&record.workload);
                    out.timings.merge(&record.timings);
                    out.counters.merge(&record.counters);
                    obs.add(Counter::PairsDone, 1);
                    out.pairs.push(PairOutcome {
                        target_chrom: tchrom.name.clone(),
                        query_chrom: qchrom.name.clone(),
                        outcome: record.outcome,
                    });
                    out.alignments
                        .extend(record.alignments.into_iter().map(|aligned| {
                            LocatedAlignment {
                                target_chrom: tchrom.name.clone(),
                                query_chrom: qchrom.name.clone(),
                                aligned,
                            }
                        }));
                    continue;
                }
            }

            if table.is_none() && table_failed.is_none() {
                if let Some(provider) = tables {
                    // Shared-index mode: the provider owns build timing
                    // and span accounting (a hit here may be a cache
                    // lookup, not a build).
                    match catch_unwind(AssertUnwindSafe(|| provider(ti))) {
                        Ok(built) => table = Some(built),
                        Err(payload) => {
                            table_failed =
                                Some(crate::parallel::panic_message(payload.as_ref()));
                        }
                    }
                } else {
                    let mut buf = pair_obs.buffer();
                    let table_timer = buf.start();
                    match catch_unwind(AssertUnwindSafe(|| {
                        crate::shard::sharded_seed_table(params, &tchrom.sequence, options.threads)
                    })) {
                        Ok((built, build_time)) => {
                            table = Some(Arc::new(built));
                            out.timings.seeding += build_time;
                            buf.finish(
                                table_timer,
                                SpanName::SeedTable,
                                STRAND_NA,
                                ti as u64,
                                1,
                                tchrom.sequence.len() as u64,
                            );
                        }
                        Err(payload) => {
                            table_failed =
                                Some(crate::parallel::panic_message(payload.as_ref()));
                        }
                    }
                }
            }

            let outcome = if let Some(message) = &table_failed {
                RunOutcome::Failed {
                    error: format!("seed table build panicked: {message}"),
                }
            } else if let Some(table) = &table {
                match catch_unwind(AssertUnwindSafe(|| {
                    run_pair(
                        params,
                        table.as_ref(),
                        &tchrom.sequence,
                        &qchrom.sequence,
                        options.threads,
                        pair_obs,
                    )
                })) {
                    Ok(mut report) => {
                        // Fold the pair's fault accounting into its
                        // counters before the record is journaled, so a
                        // resumed run replays the same numbers.
                        if let Some(inj) = injector.as_ref() {
                            let faults = inj.take_pair(pair_obs.pair());
                            report.counters.faults_injected += faults.injected;
                            report.counters.retries += faults.retries;
                        }
                        let outcome = report.outcome();
                        if let Some(journal) = journal.as_mut() {
                            let mut buf = pair_obs.buffer();
                            let ckpt_timer = buf.start();
                            let record = PairRecord {
                                target_chrom: tchrom.name.clone(),
                                query_chrom: qchrom.name.clone(),
                                outcome: outcome.clone(),
                                workload: report.workload,
                                timings: report.timings,
                                counters: report.counters,
                                alignments: report.alignments.clone(),
                            };
                            append_supervised(
                                journal,
                                &record,
                                &retry_policy,
                                injector.as_ref(),
                                &pair_obs,
                            )?;
                            buf.finish(ckpt_timer, SpanName::Checkpoint, STRAND_NA, 0, 1, 0);
                        }
                        out.workload.merge(&report.workload);
                        out.timings.merge(&report.timings);
                        out.counters.merge(&report.counters);
                        obs.add(Counter::PairsDone, 1);
                        out.alignments
                            .extend(report.alignments.into_iter().map(|aligned| {
                                LocatedAlignment {
                                    target_chrom: tchrom.name.clone(),
                                    query_chrom: qchrom.name.clone(),
                                    aligned,
                                }
                            }));
                        outcome
                    }
                    Err(payload) => {
                        // Failed pairs are not journaled; drop their
                        // per-pair fault accounting (run totals keep it).
                        if let Some(inj) = injector.as_ref() {
                            let _ = inj.take_pair(pair_obs.pair());
                        }
                        RunOutcome::Failed {
                            error: crate::parallel::panic_message(payload.as_ref()),
                        }
                    }
                }
            } else {
                // Unreachable: the build attempt always sets one of the
                // two options above.
                RunOutcome::Failed {
                    error: "seed table unavailable".to_string(),
                }
            };
            out.pairs.push(PairOutcome {
                target_chrom: tchrom.name.clone(),
                query_chrom: qchrom.name.clone(),
                outcome,
            });
        }
    }
    out.alignments
        .sort_by_key(|a| std::cmp::Reverse(a.aligned.alignment.score));
    let mut metrics = barrier_metrics(&out, options.threads);
    metrics.spec_discard = out.counters.spec_discard;
    if let Some(inj) = injector.as_ref() {
        let (faults_injected, retries) = inj.totals();
        metrics.faults_injected = faults_injected;
        metrics.retries = retries;
    }
    out.stage_metrics = Some(metrics);
    out.journal_stats = journal_stats;
    Ok(out)
}

/// Appends one pair record under supervision: the write is retried with
/// the run's backoff policy, and chaos runs inject `journal.append` /
/// `journal.sync` faults around the real append. Retries count into the
/// injector's run totals (the pair's own counters are already frozen
/// inside `record`).
pub(crate) fn append_supervised(
    journal: &mut Journal,
    record: &PairRecord,
    policy: &RetryPolicy,
    injector: Option<&FaultInjector>,
    obs: &Obs<'_>,
) -> WgaResult<()> {
    let pair = obs.pair();
    let site = (Hook::JournalAppend.code() << 32) | (pair & 0xFFFF_FFFF);
    supervise::retry_io(
        policy,
        site,
        |_| {
            if let Some(inj) = injector {
                inj.count_retry(pair);
            }
        },
        || {
            if let Some(inj) = injector {
                inj.gate_io(Hook::JournalAppend, pair, Some(obs))?;
            }
            journal.append(record)?;
            if let Some(inj) = injector {
                inj.gate_io(Hook::JournalSync, pair, Some(obs))?;
            }
            Ok(())
        },
    )
}

/// Derives [`ExecutorMetrics`] for a barrier run from the aggregate
/// timings, workload and funnel counters, so `--metrics-out` carries the
/// same shape on every executor. Barrier stages run to completion one
/// after another, so idle time and queue occupancy are zero by
/// construction. Since intra-pair sharding, every stage — seed-table
/// build, D-SOFT binning, filtering and (speculative) extension — fans
/// out over the whole pool, so each stage reports `threads` workers.
fn barrier_metrics(out: &AssemblyReport, threads: usize) -> ExecutorMetrics {
    ExecutorMetrics {
        executor: ExecutorKind::Barrier,
        threads,
        queue_depth: 0,
        seeding: StageMetrics {
            workers: threads,
            items: out.counters.hits_filtered,
            cells: out.workload.seeds,
            busy_us: out.timings.seeding.as_micros() as u64,
            idle_us: 0,
            max_queue_occupancy: 0,
        },
        filtering: StageMetrics {
            workers: threads,
            items: out.workload.filter_tiles,
            cells: out.counters.filter_cells,
            busy_us: out.timings.filtering.as_micros() as u64,
            idle_us: 0,
            max_queue_occupancy: 0,
        },
        extension: StageMetrics {
            workers: threads,
            items: out.counters.anchors_passed,
            cells: out.workload.extension_cells,
            busy_us: out.timings.extension.as_micros() as u64,
            idle_us: 0,
            max_queue_occupancy: 0,
        },
        // Fault totals are filled in by the caller from the injector.
        ..ExecutorMetrics::default()
    }
}

/// Runs one chromosome pair serially or with a parallel filter stage.
fn run_pair(
    params: &WgaParams,
    table: &SeedTable,
    target: &Sequence,
    query: &Sequence,
    threads: usize,
    obs: Obs<'_>,
) -> WgaReport {
    if threads > 1 {
        crate::parallel::run_with_table_parallel_observed(params, table, target, query, threads, obs)
    } else {
        crate::pipeline::WgaPipeline::new(params.clone())
            .run_with_table_observed(table, target, query, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_chrom_assemblies() -> (Assembly, Assembly) {
        let mut rng = StdRng::seed_from_u64(21);
        let p1 = SyntheticPair::generate(15_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let p2 = SyntheticPair::generate(12_000, &EvolutionParams::at_distance(0.15), &mut rng);
        let mut target = Assembly::new("targ1");
        target.push("chrI", p1.target.sequence.clone());
        target.push("chrII", p2.target.sequence.clone());
        let mut query = Assembly::new("quer1");
        query.push("chr1", p1.query.sequence.clone());
        query.push("chr2", p2.query.sequence.clone());
        (target, query)
    }

    #[test]
    fn homologous_chromosomes_attract_the_alignments() {
        let (target, query) = two_chrom_assemblies();
        let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
        assert!(report.total_matches() > 15_000);
        let homologous: u64 = report
            .for_pair("chrI", "chr1")
            .iter()
            .chain(report.for_pair("chrII", "chr2").iter())
            .map(|a| a.aligned.alignment.matches())
            .sum();
        let paralogous: u64 = report
            .for_pair("chrI", "chr2")
            .iter()
            .chain(report.for_pair("chrII", "chr1").iter())
            .map(|a| a.aligned.alignment.matches())
            .sum();
        assert!(
            homologous > 20 * paralogous.max(1),
            "homologous {homologous} vs cross {paralogous}"
        );
    }

    #[test]
    fn alignments_validate_within_their_chromosomes() {
        let (target, query) = two_chrom_assemblies();
        let report = align_assemblies(&WgaParams::darwin_wga(), &target, &query);
        for la in &report.alignments {
            let t = &target.chromosome(&la.target_chrom).unwrap().sequence;
            let q = &query.chromosome(&la.query_chrom).unwrap().sequence;
            la.aligned.alignment.validate(t, q).unwrap();
        }
        assert_eq!(report.pairs.len(), 4);
        assert_eq!(report.failed_pairs(), 0);
        assert_eq!(report.resumed_pairs, 0);
    }

    #[test]
    fn empty_assemblies_produce_empty_report() {
        let report = align_assemblies(
            &WgaParams::darwin_wga(),
            &Assembly::new("a"),
            &Assembly::new("b"),
        );
        assert!(report.alignments.is_empty());
        assert_eq!(report.total_matches(), 0);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn zero_threads_is_a_config_error() {
        let (target, query) = two_chrom_assemblies();
        let err = align_assemblies_with(
            &WgaParams::darwin_wga(),
            &target,
            &query,
            &AlignOptions {
                threads: 0,
                ..AlignOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, WgaError::Config(_)), "{err}");
    }

    #[test]
    fn degenerate_params_are_a_config_error() {
        let mut params = WgaParams::darwin_wga();
        params.max_seed_occurrences = 0;
        let err = align_assemblies_with(
            &params,
            &Assembly::new("a"),
            &Assembly::new("b"),
            &AlignOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, WgaError::Config(_)), "{err}");
    }

    #[test]
    fn parallel_assembly_matches_serial_canonically() {
        let (target, query) = two_chrom_assemblies();
        let params = WgaParams::darwin_wga();
        let serial = align_assemblies(&params, &target, &query);
        let parallel = align_assemblies_with(
            &params,
            &target,
            &query,
            &AlignOptions {
                threads: 3,
                ..AlignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.canonical_text(), parallel.canonical_text());
    }

    #[test]
    fn checkpointed_rerun_replays_all_pairs() {
        let (target, query) = two_chrom_assemblies();
        let params = WgaParams::darwin_wga();
        let path = std::env::temp_dir().join(format!(
            "wga-genome-pipeline-ckpt-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let opts = AlignOptions {
            threads: 1,
            checkpoint: Some(path.clone()),
            ..AlignOptions::default()
        };
        let first = align_assemblies_with(&params, &target, &query, &opts).unwrap();
        assert_eq!(first.resumed_pairs, 0);
        let second = align_assemblies_with(&params, &target, &query, &opts).unwrap();
        assert_eq!(second.resumed_pairs, 4);
        assert_eq!(first.canonical_text(), second.canonical_text());
        assert_eq!(first.workload, second.workload);
        let _ = std::fs::remove_file(&path);
    }
}
