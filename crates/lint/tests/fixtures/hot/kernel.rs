//! Hot-loop fixture: tagged file with exactly FOUR in-loop sites.
//! Allocations before the loop, in test code, and non-matching calls
//! (`clone_from_slice`, `resize`) must not count.

// lint: hot

pub fn kernel(rows: usize, scratch: &mut Vec<i32>) -> String {
    let mut reuse: Vec<i32> = Vec::new(); // fine: outside any loop
    let mut label = String::new();
    for r in 0..rows {
        let fresh: Vec<i32> = Vec::new(); // site 1
        let copy = scratch.to_vec(); // site 2
        let dup = copy.clone(); // site 3
        label = format!("row {}", r); // site 4
        scratch.resize(r, 0); // fine: reuse, not allocation
        reuse.clone_from_slice(&dup); // fine: not `.clone()`
        let _ = fresh;
    }
    while reuse.len() > rows {
        reuse.pop(); // fine: no allocation
    }
    label
}

impl Renderer for Kernel {
    // `for` in `impl … for …` is not a loop: this body is clean.
    fn render(&self) -> Vec<u8> {
        let buffer = Vec::new();
        buffer
    }
}

#[cfg(test)]
mod tests {
    fn t() {
        for _ in 0..3 {
            let _ = format!("test code is exempt");
        }
    }
}
