//! Regression diff between two `profile_report.json` artifacts.
//!
//! `wga profile diff old.json new.json` compares the per-stage time
//! shares and the drift scores against explicit thresholds and exits
//! nonzero when the new report regresses — the second half of the CI
//! perf-drift gate (the first half is the absolute `--max-drift-centi`
//! cap on `report`).

use crate::report::fmt_centi;
use crate::ProfileError;
use std::fmt::Write as _;
use wga_core::journal::json::{self, Json};

/// Regression thresholds, all integer centi-percent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Max allowed *increase* of any stage's share of pipeline time
    /// (seed/filter/extend), centi-percent.
    pub share_regression_centi: u64,
    /// Max allowed increase of a stage's modeled-vs-measured drift
    /// score, centi-percent.
    pub drift_regression_centi: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            share_regression_centi: 500,
            drift_regression_centi: 100,
        }
    }
}

/// The fields `diff` reads out of a report JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSummary {
    /// `profile_schema` of the artifact.
    pub profile_schema: u64,
    /// Seed share of pipeline time, centi-percent.
    pub seed_centi: u64,
    /// Filter share, centi-percent.
    pub filter_centi: u64,
    /// Extend share, centi-percent.
    pub extend_centi: u64,
    /// BSW drift score (`None` when the trace had no `hwsim.bsw` span).
    pub bsw_drift_centi: Option<u64>,
    /// GACT-X drift score.
    pub gactx_drift_centi: Option<u64>,
    /// Speculation discard share, centi-percent.
    pub discard_centi: u64,
}

fn int_at(doc: &Json, path: &[&str]) -> Result<u64, ProfileError> {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| ProfileError::msg(format!("report missing field {}", path.join("."))))?;
    }
    cur.as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| ProfileError::msg(format!("report field {} is not an integer", path.join("."))))
}

impl ReportSummary {
    /// Parses a `profile_report.json` document.
    pub fn from_json(text: &str) -> Result<ReportSummary, ProfileError> {
        let doc = json::parse(text).map_err(|e| ProfileError::msg(format!("invalid report JSON: {e}")))?;
        let schema = int_at(&doc, &["profile_schema"])?;
        if schema != crate::report::PROFILE_SCHEMA {
            return Err(ProfileError::msg(format!(
                "unsupported profile_schema {schema} (expected {})",
                crate::report::PROFILE_SCHEMA
            )));
        }
        let drift_of = |stage: &str| -> Result<Option<u64>, ProfileError> {
            if int_at(&doc, &["drift", stage, "present"])? == 0 {
                Ok(None)
            } else {
                int_at(&doc, &["drift", stage, "drift_centi"]).map(Some)
            }
        };
        Ok(ReportSummary {
            profile_schema: schema,
            seed_centi: int_at(&doc, &["shares", "seed_centi"])?,
            filter_centi: int_at(&doc, &["shares", "filter_centi"])?,
            extend_centi: int_at(&doc, &["shares", "extend_centi"])?,
            bsw_drift_centi: drift_of("bsw")?,
            gactx_drift_centi: drift_of("gactx")?,
            discard_centi: int_at(&doc, &["speculation", "discard_centi"])?,
        })
    }
}

/// One threshold violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// What regressed (`filter share`, `bsw drift`, …).
    pub what: String,
    /// Old value, centi-percent.
    pub old_centi: u64,
    /// New value, centi-percent.
    pub new_centi: u64,
    /// The allowed increase it exceeded, centi-percent.
    pub limit_centi: u64,
}

/// Result of comparing two reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiffOutcome {
    /// Threshold violations; empty means the gate passes.
    pub regressions: Vec<Regression>,
    /// Non-gating observations worth printing.
    pub notes: Vec<String>,
}

impl DiffOutcome {
    /// Whether the gate passes.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human rendering (one line per note / regression).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION: {} {} -> {} (allowed increase {})",
                r.what,
                fmt_centi(r.old_centi),
                fmt_centi(r.new_centi),
                fmt_centi(r.limit_centi)
            );
        }
        if self.is_pass() {
            let _ = writeln!(out, "diff: pass");
        } else {
            let _ = writeln!(out, "diff: {} regression(s)", self.regressions.len());
        }
        out
    }
}

fn check(
    out: &mut DiffOutcome,
    what: &str,
    old: u64,
    new: u64,
    limit: u64,
) {
    if new > old.saturating_add(limit) {
        out.regressions.push(Regression {
            what: what.to_string(),
            old_centi: old,
            new_centi: new,
            limit_centi: limit,
        });
    }
}

/// Compares `new` against `old` under `thresholds`.
pub fn diff(old: &ReportSummary, new: &ReportSummary, thresholds: &Thresholds) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    check(&mut out, "seed share", old.seed_centi, new.seed_centi, thresholds.share_regression_centi);
    check(&mut out, "filter share", old.filter_centi, new.filter_centi, thresholds.share_regression_centi);
    check(&mut out, "extend share", old.extend_centi, new.extend_centi, thresholds.share_regression_centi);
    for (name, old_d, new_d) in [
        ("bsw drift", old.bsw_drift_centi, new.bsw_drift_centi),
        ("gactx drift", old.gactx_drift_centi, new.gactx_drift_centi),
    ] {
        match (old_d, new_d) {
            (Some(o), Some(n)) => check(&mut out, name, o, n, thresholds.drift_regression_centi),
            (Some(o), None) => out.regressions.push(Regression {
                // Losing the signal entirely must fail the gate, not pass it.
                what: format!("{name} signal disappeared"),
                old_centi: o,
                new_centi: 0,
                limit_centi: 0,
            }),
            (None, Some(n)) => out.notes.push(format!("{name} signal appeared at {}", fmt_centi(n))),
            (None, None) => {}
        }
    }
    if new.discard_centi != old.discard_centi {
        out.notes.push(format!(
            "speculation discard {} -> {}",
            fmt_centi(old.discard_centi),
            fmt_centi(new.discard_centi)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ReportSummary {
        ReportSummary {
            profile_schema: 1,
            seed_centi: 1000,
            filter_centi: 6000,
            extend_centi: 3000,
            bsw_drift_centi: Some(0),
            gactx_drift_centi: Some(0),
            discard_centi: 0,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let d = diff(&base(), &base(), &Thresholds::default());
        assert!(d.is_pass());
        assert!(d.render().contains("diff: pass"));
    }

    #[test]
    fn share_regression_beyond_threshold_fails() {
        let mut new = base();
        new.filter_centi = 6000 + 501;
        let d = diff(&base(), &new, &Thresholds::default());
        assert!(!d.is_pass());
        assert_eq!(d.regressions[0].what, "filter share");
        // Exactly at the threshold still passes.
        new.filter_centi = 6000 + 500;
        assert!(diff(&base(), &new, &Thresholds::default()).is_pass());
    }

    #[test]
    fn drift_regression_fails() {
        let mut new = base();
        new.gactx_drift_centi = Some(101);
        let d = diff(&base(), &new, &Thresholds::default());
        assert!(!d.is_pass());
        assert_eq!(d.regressions[0].what, "gactx drift");
    }

    #[test]
    fn losing_the_drift_signal_fails() {
        let mut new = base();
        new.bsw_drift_centi = None;
        let d = diff(&base(), &new, &Thresholds::default());
        assert!(!d.is_pass());
        assert!(d.regressions[0].what.contains("disappeared"));
    }

    #[test]
    fn summary_round_trips_through_report_json() {
        let trace = concat!(
            "{\"schema\":2}\n",
            "{\"span\":\"seed\",\"pair\":0,\"strand\":0,\"seq\":0,\"start_us\":0,\"dur_us\":10,\"items\":3,\"cells\":100}\n",
        );
        let t = crate::trace::TraceFile::parse(trace).unwrap();
        let json = crate::report::ProfileReport::build(&t, 5).to_json();
        let s = ReportSummary::from_json(&json).expect("summary parses");
        assert_eq!(s.seed_centi, 10_000, "only stage present takes the whole share");
        assert_eq!(s.bsw_drift_centi, None);
        assert!(diff(&s, &s, &Thresholds::default()).is_pass());
    }

    #[test]
    fn wrong_profile_schema_is_rejected() {
        let err = ReportSummary::from_json("{\"profile_schema\":99}").unwrap_err();
        assert!(err.msg.contains("unsupported profile_schema"), "{err}");
    }
}
