//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose length is uniform in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
