//! Table IV (+ Table VI) — ASIC area/power breakdown and platform power.
//!
//! Prints the per-component breakdown of the Darwin-WGA ASIC at TSMC
//! 40 nm from the published per-unit constants, an ablation over array
//! provisioning (the paper sizes the chip so DRAM bandwidth is the
//! bottleneck, §VI-A), and the Table VI platform power summary.
//!
//! Run with: `cargo run --release -p wga-bench --bin table4_asic`

use hwsim::area::AsicProvisioning;
use hwsim::platform::{AcceleratorConfig, CpuConfig};

fn print_breakdown(p: &AsicProvisioning) {
    println!(
        "  {:<16} {:<28} {:>10} {:>9}",
        "Component", "Configuration", "Area(mm2)", "Power(W)"
    );
    for row in p.breakdown() {
        println!(
            "  {:<16} {:<28} {:>10.2} {:>9.2}",
            row.component, row.configuration, row.area_mm2, row.power_w
        );
    }
    println!(
        "  {:<16} {:<28} {:>10.2} {:>9.2}",
        "Total",
        "",
        p.total_area_mm2(),
        p.total_power_w()
    );
}

fn main() {
    println!("Table IV — Darwin-WGA ASIC breakdown (TSMC 40nm, 1 GHz)\n");
    let default = AsicProvisioning::darwin_wga();
    print_breakdown(&default);
    println!("\nPaper: 35.92 mm², 43.34 W. BSW logic dominates power (~59%),");
    println!("traceback SRAM is ~42% of the area.\n");

    // Ablation: provisioning vs the DRAM bandwidth wall.
    println!("Provisioning ablation (BSW arrays vs DRAM bottleneck):");
    println!(
        "  {:>10} {:>12} {:>12} {:>14} {:>12}",
        "BSW arrays", "area (mm2)", "power (W)", "tiles/s (M)", "DRAM-capped"
    );
    for arrays in [16usize, 32, 64, 128, 256] {
        let mut prov = AsicProvisioning::darwin_wga();
        prov.bsw_arrays = arrays;
        let mut acc = AcceleratorConfig::asic();
        acc.bsw.num_arrays = arrays;
        let uncapped = acc.bsw.tiles_per_second();
        let capped = acc.filter_tiles_per_second();
        println!(
            "  {:>10} {:>12.2} {:>12.2} {:>14.1} {:>12}",
            arrays,
            prov.total_area_mm2(),
            prov.total_power_w(),
            uncapped / 1e6,
            if capped < uncapped * 0.999 { "yes" } else { "no" }
        );
    }
    println!("\nThe paper provisions 64 arrays: close to the point where four");
    println!("DDR4-2400 channels become the bottleneck (§VI-A).\n");

    // Table VI.
    let cpu = CpuConfig::c4_8xlarge();
    let fpga = AcceleratorConfig::fpga();
    let asic = AcceleratorConfig::asic();
    println!("Table VI — platform power (W, including DRAM):");
    println!("  {:<28} {:>8}", "CPU (c4.8xlarge)", cpu.power_w);
    println!("  {:<28} {:>8}", "FPGA (Virtex UltraScale+)", fpga.power_w);
    println!("  {:<28} {:>8}", "ASIC (TSMC 40nm)", asic.power_w);
    println!("\nPaper: 215 / 65 / 43 W.");
}
