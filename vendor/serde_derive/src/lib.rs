//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives serde traits on its public types for downstream
//! consumers, but contains no serializer (the checkpoint journal uses its
//! own self-contained JSON codec in `wga_core::json`). In the offline build
//! the derives therefore expand to nothing; `#[serde(...)]` attributes are
//! accepted and ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
