//! Hardware model of the Darwin-WGA accelerator.
//!
//! The paper implements BSW filtering and GACT-X extension on linear
//! systolic arrays, deployed on an AWS F1 FPGA and (via synthesis +
//! place-and-route) a TSMC 40 nm ASIC. This crate substitutes a
//! cycle-level analytical model for the silicon:
//!
//! * [`systolic`] — stripe/wavefront timing shared by both arrays;
//! * [`bsw_array`] — the filter array (equations 4–5 band geometry);
//! * [`gactx_array`] — the extension array, driven by measured DP
//!   workloads;
//! * [`dram`] — DDR4 channel bandwidth and the min(compute, memory)
//!   arbitration the paper uses to provision the ASIC;
//! * [`platform`] — the three platforms of Table VI (CPU, FPGA, ASIC);
//! * [`area`] — the Table IV area/power breakdown from published
//!   constants;
//! * [`perf`] — Table V roll-ups: runtimes, performance/$ and
//!   performance/W.
//!
//! Throughput *ratios* between platforms are the quantity the paper
//! reports; the model reproduces those from first principles plus the
//! paper's published cost and power constants.
//!
//! # Quick start
//!
//! ```
//! use hwsim::platform::AcceleratorConfig;
//!
//! let fpga = AcceleratorConfig::fpga();
//! let tps = fpga.filter_tiles_per_second();
//! // Paper: ~6.25M filter tiles/s on the FPGA.
//! assert!((4.0e6..9.0e6).contains(&tps));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod bsw_array;
pub mod dram;
pub mod fpga_resources;
pub mod gactx_array;
pub mod perf;
pub mod platform;
pub mod rtl;
pub mod rtl_gactx;
pub mod schedule;
pub mod systolic;

pub use perf::{ModeledCycles, RuntimeBreakdown, SoftwareThroughput, Workload};
pub use platform::{AcceleratorConfig, CpuConfig};
