//! Generalized lock-and-queue discipline: interprocedural effect
//! summaries over the whole workspace (the PR 5 deadlock rule covered
//! only `core/src/dataflow`; this pass also sees `supervise`,
//! `faultsim` gates, `pangenome` orchestration and everything else in
//! `[scan]`).
//!
//! Invariants checked:
//!
//! 1. **The stage→queue graph is acyclic.** Every scope that pops one
//!    bounded queue and pushes another creates an edge `popped →
//!    pushed`; a cycle means a stage can block on a queue that only
//!    drains through itself. Queues are identified workspace-wide by
//!    binding name (`BoundedQueue` ascription or constructor).
//! 2. **No blocking effect under a held lock guard.** A bounded-queue
//!    `push`, a zero-arg `JoinHandle::join()`, or a call to any fn
//!    whose *effect summary* contains a push or join, while a
//!    `let`-bound lock guard is live, couples backpressure or thread
//!    exit with lock acquisition — the classic deadlock shape.
//!
//! Effect summaries propagate push/pop/join sets through direct calls
//! by callee name to a fixpoint, so a push three calls deep under a
//! guard is still flagged at the guarded call site.
//!
//! Scoping choice: closures are **separate** scopes here — `execute`
//! only spawns the stages, so merging their endpoints into it would
//! fabricate pop×push edges and false cycles. (The reachability and
//! taint passes make the opposite choice; see [`crate::callgraph`].)

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind, match_delim};
use crate::rules::{Directives, RawSite};

/// One scope: a named fn body or an anonymous closure body.
#[derive(Debug)]
struct Scope {
    /// Fn name, or None for a closure.
    name: Option<String>,
    file: usize,
    /// Line the scope starts on (for edge provenance).
    line: u32,
    /// Token range [start, end] in its file, body only.
    start: usize,
    end: usize,
    pushes: Vec<String>,
    pops: Vec<String>,
    joins: bool,
    calls: Vec<String>,
}

/// Interprocedural effect summary for one fn name.
#[derive(Debug, Default, Clone)]
struct Summary {
    pushes: Vec<String>,
    pops: Vec<String>,
    joins: bool,
}

/// Aggregate result of the effects rule over the scanned workspace.
#[derive(Debug, Default)]
pub struct EffectsReport {
    /// Queue names found (sorted, deduped).
    pub queues: Vec<String>,
    /// Stage edges popped→pushed with provenance — sorted, deduped.
    pub edges: Vec<Edge>,
    /// Human-readable cycle paths (empty when the graph is acyclic).
    pub cycles: Vec<String>,
    /// Violations/waived sites, as (file index, site).
    pub sites: Vec<(usize, RawSite)>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: usize,
    pub line: u32,
}

/// Runs the effects rule over every scanned file.
/// `files[i]` pairs each file's lex result with its directives.
pub fn analyze(files: &[(&Lexed<'_>, &Directives)]) -> EffectsReport {
    let mut report = EffectsReport::default();

    // Pass 1: queue names, workspace-wide.
    let mut queues: Vec<String> = Vec::new();
    for (lexed, _) in files {
        collect_queue_names(lexed, &mut queues);
    }
    queues.sort();
    queues.dedup();

    // Pass 2: scopes with direct push/pop/join/call sets.
    let mut scopes: Vec<Scope> = Vec::new();
    let mut fn_names: Vec<String> = Vec::new();
    for (fi, (lexed, _)) in files.iter().enumerate() {
        collect_scopes(lexed, fi, &mut scopes);
    }
    for s in &scopes {
        if let Some(n) = &s.name {
            if !fn_names.contains(n) {
                fn_names.push(n.clone());
            }
        }
    }
    for (fi, (lexed, _)) in files.iter().enumerate() {
        fill_endpoints(lexed, fi, &queues, &fn_names, &mut scopes);
    }

    // Pass 3: fixpoint fn summaries (effects through calls).
    let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
    for s in &scopes {
        if let Some(n) = &s.name {
            let entry = summaries.entry(n.clone()).or_default();
            merge(&mut entry.pushes, &s.pushes);
            merge(&mut entry.pops, &s.pops);
            entry.joins |= s.joins;
        }
    }
    loop {
        let mut changed = false;
        // Two-phase: read callee summaries from a snapshot, then merge.
        let snapshot = summaries.clone();
        for s in &scopes {
            let Some(n) = &s.name else { continue };
            let mut add = Summary::default();
            for callee in &s.calls {
                if let Some(cs) = snapshot.get(callee) {
                    merge(&mut add.pushes, &cs.pushes);
                    merge(&mut add.pops, &cs.pops);
                    add.joins |= cs.joins;
                }
            }
            if let Some(entry) = summaries.get_mut(n) {
                let before = (entry.pushes.len(), entry.pops.len(), entry.joins);
                merge(&mut entry.pushes, &add.pushes);
                merge(&mut entry.pops, &add.pops);
                entry.joins |= add.joins;
                if (entry.pushes.len(), entry.pops.len(), entry.joins) != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 4: edges. Each scope's effective endpoints are its direct
    // sets plus its callees' summaries; a scope that pops q_in and
    // pushes q_out is a stage moving work q_in → q_out.
    for s in &scopes {
        let mut pushes = s.pushes.clone();
        let mut pops = s.pops.clone();
        for callee in &s.calls {
            if let Some(cs) = summaries.get(callee) {
                merge(&mut pushes, &cs.pushes);
                merge(&mut pops, &cs.pops);
            }
        }
        // A pop/push pair on the *same* queue is kept as a self-loop:
        // re-enqueueing into your own input deadlocks when the queue
        // is full, and the cycle detector reports it as `q -> q`.
        for q_in in &pops {
            for q_out in &pushes {
                report.edges.push(Edge {
                    from: q_in.clone(),
                    to: q_out.clone(),
                    file: s.file,
                    line: s.line,
                });
            }
        }
    }
    report.edges.sort();
    report.edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);

    // Pass 5: cycle detection over queue nodes. Each cycle is
    // attributed to the scope that contributed its first edge, so the
    // violation lands in the offending file.
    report.cycles = find_cycles(&queues, &report.edges);
    for cyc in &report.cycles {
        let mut legs = cyc.split(" -> ");
        let (first, second) = (legs.next().unwrap_or(""), legs.next().unwrap_or(""));
        let (file, line, waived) = report
            .edges
            .iter()
            .find(|e| e.from == first && e.to == second)
            .or(report.edges.first())
            .map(|e| (e.file, e.line, files[e.file].1.waived("deadlock", e.line)))
            .unwrap_or((0, 0, false));
        report.sites.push((
            file,
            RawSite {
                line,
                msg: format!("queue graph cycle: {}", cyc),
                waived,
                tok: 0,
            },
        ));
    }

    // Pass 6: blocking effects under a held guard, per file. The
    // interprocedural arm only trusts names with exactly one defining
    // scope — `new`/`push`/`flush` are defined many times over and a
    // name-based match against the wrong one is worse than silence.
    let mut def_count: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &scopes {
        if let Some(n) = &s.name {
            *def_count.entry(n.as_str()).or_insert(0) += 1;
        }
    }
    for (fi, (lexed, dir)) in files.iter().enumerate() {
        for site in held_guard_effects(lexed, dir, &queues, &summaries, &def_count) {
            report.sites.push((fi, site));
        }
    }

    report.queues = queues;
    report
}

fn merge(into: &mut Vec<String>, from: &[String]) {
    for f in from {
        if !into.contains(f) {
            into.push(f.clone());
        }
    }
}

/// Names bound to `BoundedQueue` via ascription or constructor.
fn collect_queue_names(lexed: &Lexed<'_>, queues: &mut Vec<String>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "BoundedQueue" {
            continue;
        }
        let mut k = i;
        while k >= 3
            && toks[k - 1].text == ":"
            && toks[k - 2].text == ":"
            && toks[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        while k >= 1 && (toks[k - 1].text == "&" || toks[k - 1].text == "mut") {
            k -= 1;
        }
        let ascription =
            k >= 2 && toks[k - 1].text == ":" && toks[k - 2].kind == TokKind::Ident;
        let assignment = k >= 2
            && toks[k - 1].text == "="
            && toks[k - 2].kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(c) if c.text == ":");
        if ascription || assignment {
            let name = toks[k - 2].text.to_string();
            if !queues.contains(&name) {
                queues.push(name);
            }
        }
    }
}

/// Finds fn bodies and closure bodies as scopes (no endpoints yet).
fn collect_scopes(lexed: &Lexed<'_>, file: usize, scopes: &mut Vec<Scope>) {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.test[i] {
            i += 1;
            continue;
        }
        let t = &toks[i];
        // Named fn: `fn name … {body}`.
        if t.text == "fn"
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.to_string();
            if let Some(open) = body_open(toks, i + 2) {
                if let Some(close) = match_delim(toks, open, "{", "}") {
                    scopes.push(Scope {
                        name: Some(name),
                        file,
                        line: t.line,
                        start: open,
                        end: close,
                        pushes: Vec::new(),
                        pops: Vec::new(),
                        joins: false,
                        calls: Vec::new(),
                    });
                    i += 2;
                    continue;
                }
            }
        }
        // Closure: `|params| body` where the opening `|` follows a
        // token that can only precede a closure, never a binary or.
        if t.text == "|" && i > 0 && closure_prefix(toks[i - 1].text) {
            // Params end at the next `|`.
            let mut p = i + 1;
            while p < toks.len() && toks[p].text != "|" {
                p += 1;
            }
            if p < toks.len() {
                let (start, end) = closure_body(toks, p + 1);
                if start <= end {
                    scopes.push(Scope {
                        name: None,
                        file,
                        line: t.line,
                        start,
                        end,
                        pushes: Vec::new(),
                        pops: Vec::new(),
                        joins: false,
                        calls: Vec::new(),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Tokens after which a `|` must start a closure.
fn closure_prefix(prev: &str) -> bool {
    matches!(prev, "(" | "," | "=" | "move" | "{" | ";" | "return" | "=>")
}

/// First `{` at paren/bracket depth 0 from `i` — the fn body opener.
fn body_open(toks: &[crate::lexer::Tok<'_>], i: usize) -> Option<usize> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(j),
            ";" if paren == 0 && bracket == 0 => return None, // trait decl
            _ => {}
        }
        j += 1;
    }
    None
}

/// Closure body token range starting at `i` (just past the closing
/// `|`). A braced body is brace-matched; an expression body runs to
/// the first `,`/`)`/`;` at relative depth 0.
fn closure_body(toks: &[crate::lexer::Tok<'_>], i: usize) -> (usize, usize) {
    if matches!(toks.get(i), Some(t) if t.text == "{") {
        let close = match_delim(toks, i, "{", "}").unwrap_or(toks.len().saturating_sub(1));
        return (i, close);
    }
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return (i, j.saturating_sub(1));
                }
                depth -= 1;
            }
            "," | ";" if depth == 0 => return (i, j.saturating_sub(1)),
            _ => {}
        }
        j += 1;
    }
    (i, toks.len().saturating_sub(1))
}

/// Whether token `i` starts a zero-arg `.join()` — a thread join, not
/// `slice.join(sep)` which always takes an argument.
fn is_thread_join(toks: &[crate::lexer::Tok<'_>], i: usize) -> bool {
    toks[i].text == "."
        && matches!(toks.get(i + 1), Some(m) if m.text == "join")
        && matches!(toks.get(i + 2), Some(p) if p.text == "(")
        && matches!(toks.get(i + 3), Some(p) if p.text == ")")
}

/// Fills push/pop/join/call sets, attributing each token to its
/// innermost scope in the same file.
fn fill_endpoints(
    lexed: &Lexed<'_>,
    file: usize,
    queues: &[String],
    fn_names: &[String],
    scopes: &mut [Scope],
) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        // .join() — attribute to the innermost scope.
        if is_thread_join(toks, i) {
            if let Some(scope) = innermost_scope(scopes, file, i) {
                scope.joins = true;
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        // q.push( / q.pop(
        let is_queue = queues.iter().any(|q| q == t.text);
        let endpoint = if is_queue
            && matches!(toks.get(i + 1), Some(d) if d.text == ".")
            && matches!(toks.get(i + 3), Some(p) if p.text == "(")
        {
            match toks.get(i + 2).map(|m| m.text) {
                Some("push") => Some(true),
                Some("pop") => Some(false),
                _ => None,
            }
        } else {
            None
        };
        // name( or .name( for a known fn, excluding the definition.
        // `drop(x)` is the std destructor invocation, never a direct
        // call to a workspace `Drop::drop` impl — matching it would
        // smear that impl's effects over every explicit drop.
        let is_call = t.text != "drop"
            && fn_names.iter().any(|f| f == t.text)
            && matches!(toks.get(i + 1), Some(p) if p.text == "(")
            && (i == 0 || toks[i - 1].text != "fn");
        if endpoint.is_none() && !is_call {
            continue;
        }
        let Some(scope) = innermost_scope(scopes, file, i) else {
            continue;
        };
        match endpoint {
            Some(true) => push_unique(&mut scope.pushes, t.text),
            Some(false) => push_unique(&mut scope.pops, t.text),
            None => {}
        }
        if is_call {
            push_unique(&mut scope.calls, t.text);
        }
    }
}

fn push_unique(v: &mut Vec<String>, name: &str) {
    if !v.iter().any(|x| x == name) {
        v.push(name.to_string());
    }
}

/// The smallest scope in `file` containing token index `i`.
fn innermost_scope(scopes: &mut [Scope], file: usize, i: usize) -> Option<&mut Scope> {
    let mut best: Option<usize> = None;
    for (k, s) in scopes.iter().enumerate() {
        if s.file == file && s.start <= i && i <= s.end {
            let better = match best {
                Some(b) => s.end - s.start < scopes[b].end - scopes[b].start,
                None => true,
            };
            if better {
                best = Some(k);
            }
        }
    }
    best.map(|k| &mut scopes[k])
}

/// DFS three-color cycle search; returns one description per cycle
/// entry point found.
fn find_cycles(queues: &[String], edges: &[Edge]) -> Vec<String> {
    let idx = |name: &str| queues.iter().position(|q| q == name);
    let n = queues.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        if let (Some(a), Some(b)) = (idx(&e.from), idx(&e.to)) {
            adj[a].push(b);
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut cycles = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
        queues: &[String],
        cycles: &mut Vec<String>,
    ) {
        color[u] = 1;
        stack.push(u);
        for &v in &adj[u] {
            if color[v] == 1 {
                let from = stack.iter().position(|&x| x == v).unwrap_or(0);
                let mut path: Vec<&str> =
                    stack[from..].iter().map(|&x| queues[x].as_str()).collect();
                path.push(queues[v].as_str());
                cycles.push(path.join(" -> "));
            } else if color[v] == 0 {
                dfs(v, adj, color, stack, queues, cycles);
            }
        }
        stack.pop();
        color[u] = 2;
    }

    for u in 0..n {
        if color[u] == 0 {
            dfs(u, &adj, &mut color, &mut stack, queues, &mut cycles);
        }
    }
    cycles
}

/// Blocking effects while a `let`-bound lock guard is live: a direct
/// bounded-queue push, a direct zero-arg `.join()`, or a plain call to
/// a uniquely-named fn whose summary contains either. Method-style
/// calls (`x.flush()`, `map.insert(..)`) are never matched against
/// summaries — std trait names collide with workspace fns constantly.
fn held_guard_effects(
    lexed: &Lexed<'_>,
    dir: &Directives,
    queues: &[String],
    summaries: &BTreeMap<String, Summary>,
    def_count: &BTreeMap<&str, usize>,
) -> Vec<RawSite> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut depth = 0i64;
    // (guard name, brace depth at binding)
    let mut locks: Vec<(String, i64)> = Vec::new();
    // A lock binding activates once its statement ends.
    let mut pending: Option<(String, usize)> = None;

    for i in 0..toks.len() {
        if lexed.test[i] {
            continue;
        }
        let t = &toks[i];
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                locks.retain(|(_, d)| *d <= depth);
            }
            _ => {}
        }
        if let Some((name, end)) = &pending {
            if i >= *end {
                locks.push((name.clone(), depth));
                pending = None;
            }
        }
        // `let [mut] g = …lock()…;`
        if t.text == "let" && pending.is_none() {
            if let Some((name, end)) = lock_binding(toks, i) {
                pending = Some((name, end));
            }
        }
        // drop(g) releases.
        if t.text == "drop"
            && matches!(toks.get(i + 1), Some(p) if p.text == "(")
            && matches!(toks.get(i + 3), Some(p) if p.text == ")")
        {
            if let Some(g) = toks.get(i + 2) {
                locks.retain(|(name, _)| name != g.text);
            }
        }
        if locks.is_empty() {
            continue;
        }
        let guards = || {
            locks
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join("`, `")
        };
        // q.push( while a guard is live.
        if t.kind == TokKind::Ident
            && queues.iter().any(|q| q == t.text)
            && matches!(toks.get(i + 1), Some(d) if d.text == ".")
            && matches!(toks.get(i + 2), Some(m) if m.text == "push")
            && matches!(toks.get(i + 3), Some(p) if p.text == "(")
        {
            out.push(RawSite {
                line: t.line,
                msg: format!(
                    "bounded-queue {}.push() while lock guard `{}` is held",
                    t.text,
                    guards()
                ),
                waived: dir.waived("deadlock", t.line),
                tok: i,
            });
        }
        // .join() while a guard is live.
        if is_thread_join(toks, i) {
            let line = toks[i + 1].line;
            out.push(RawSite {
                line,
                msg: format!(
                    "thread .join() while lock guard `{}` is held",
                    guards()
                ),
                waived: dir.waived("deadlock", line),
                tok: i + 1,
            });
        }
        // Plain name( where name's summary pushes or joins — and the
        // name has exactly one definition, so the match is meaningful.
        if t.kind == TokKind::Ident
            && t.text != "drop"
            && matches!(toks.get(i + 1), Some(p) if p.text == "(")
            && !(i >= 1 && (toks[i - 1].text == "fn" || toks[i - 1].text == "."))
            && def_count.get(t.text).copied().unwrap_or(0) == 1
        {
            if let Some(s) = summaries.get(t.text) {
                if !s.pushes.is_empty() || s.joins {
                    let effect = if !s.pushes.is_empty() {
                        format!("pushes bounded queue `{}`", s.pushes.join("`, `"))
                    } else {
                        "joins a thread".to_string()
                    };
                    out.push(RawSite {
                        line: t.line,
                        msg: format!(
                            "call to {}() which {} while lock guard `{}` is held",
                            t.text,
                            effect,
                            guards()
                        ),
                        waived: dir.waived("deadlock", t.line),
                        tok: i,
                    });
                }
            }
        }
    }
    out
}

/// If the `let` at `i` binds a lock guard (`let [mut] g = … .lock( …;`),
/// returns (guard name, token index of the terminating `;`).
fn lock_binding(toks: &[crate::lexer::Tok<'_>], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if matches!(toks.get(j), Some(t) if t.text == "mut") {
        j += 1;
    }
    let name = match toks.get(j) {
        // `let _ = x.lock()…;` drops the guard at the end of the
        // statement — the wildcard never holds anything.
        Some(t) if t.kind == TokKind::Ident && t.text != "_" => t.text.to_string(),
        _ => return None,
    };
    if !matches!(toks.get(j + 1), Some(t) if t.text == "=") {
        return None;
    }
    let mut depth = 0i64;
    let mut has_lock = false;
    let mut k = j + 2;
    while k < toks.len() {
        match toks[k].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return None; // ran out of the statement
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                return if has_lock { Some((name, k)) } else { None };
            }
            "." if matches!(toks.get(k + 1), Some(m) if m.text == "lock")
                && matches!(toks.get(k + 2), Some(p) if p.text == "(") =>
            {
                has_lock = true;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::scan_directives;

    fn run(srcs: &[&str]) -> EffectsReport {
        let lexed: Vec<_> = srcs.iter().map(|s| lex(s)).collect();
        let dirs: Vec<_> = lexed.iter().map(scan_directives).collect();
        let files: Vec<_> = lexed.iter().zip(dirs.iter()).collect();
        analyze(&files)
    }

    const CHAIN: &str = "
fn execute() {
    let a_q: BoundedQueue<u32> = BoundedQueue::new(4);
    let b_q: BoundedQueue<u32> = BoundedQueue::new(4);
    scope(|s| {
        s.spawn(move || produce(&a_q));
        s.spawn(move || worker(&a_q, &b_q));
        s.spawn(move || collect(&b_q));
    });
}
fn produce(a_q: &BoundedQueue<u32>) { a_q.push(1); }
fn worker(a_q: &BoundedQueue<u32>, b_q: &BoundedQueue<u32>) {
    while let Some(x) = a_q.pop() { deposit(b_q, x) }
}
fn deposit(b_q: &BoundedQueue<u32>, x: u32) { let _ = b_q.push(x); }
fn collect(b_q: &BoundedQueue<u32>) { while b_q.pop().is_some() {} }
";

    #[test]
    fn chain_is_acyclic_with_one_edge() {
        let r = run(&[CHAIN]);
        assert_eq!(r.queues, vec!["a_q".to_string(), "b_q".to_string()]);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!((r.edges[0].from.as_str(), r.edges[0].to.as_str()), ("a_q", "b_q"));
        assert!(r.cycles.is_empty());
        assert!(r.sites.is_empty());
    }

    #[test]
    fn closure_scopes_keep_execute_out_of_the_graph() {
        // If the spawning fn merged all its closures' endpoints, the
        // collector's pop of b_q plus the producer's push of a_q would
        // fabricate a b_q -> a_q edge and a false cycle.
        let r = run(&[CHAIN]);
        assert!(!r.edges.iter().any(|e| e.from == "b_q"));
    }

    #[test]
    fn cycle_detected_through_call_chain() {
        let src = "
fn setup() {
    let a_q: BoundedQueue<u32> = BoundedQueue::new(4);
    let b_q: BoundedQueue<u32> = BoundedQueue::new(4);
    run(move || forward(&a_q, &b_q));
    run(move || backward(&a_q, &b_q));
}
fn forward(a_q: &BoundedQueue<u32>, b_q: &BoundedQueue<u32>) {
    while let Some(x) = a_q.pop() { b_q.push(x); }
}
fn backward(a_q: &BoundedQueue<u32>, b_q: &BoundedQueue<u32>) {
    while let Some(x) = b_q.pop() { requeue(a_q, x) }
}
fn requeue(a_q: &BoundedQueue<u32>, x: u32) { a_q.push(x); }
";
        let r = run(&[src]);
        assert_eq!(r.cycles.len(), 1, "{:?}", r.cycles);
        assert!(r.cycles[0].contains("a_q"));
        assert!(r.sites.iter().any(|(_, s)| s.msg.contains("cycle")));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let src = "
fn retry(work_q: &BoundedQueue<u32>) {
    let work_q: &BoundedQueue<u32> = work_q;
    while let Some(x) = work_q.pop() { work_q.push(x); }
}
";
        let r = run(&[src]);
        assert_eq!(r.cycles.len(), 1);
    }

    #[test]
    fn push_under_held_lock_flagged_and_drop_releases() {
        let src = "
fn deposit(cells: &M, out_q: &BoundedQueue<u32>) {
    let out_q: &BoundedQueue<u32> = out_q;
    let mut slot = cells.lock();
    *slot = 1;
    out_q.push(1);
}
fn deposit_ok(cells: &M, out_q: &BoundedQueue<u32>) {
    let mut slot = cells.lock();
    *slot = 1;
    drop(slot);
    out_q.push(1);
}
fn scoped_ok(cells: &M, out_q: &BoundedQueue<u32>) {
    { let g = cells.lock(); }
    out_q.push(1);
}
";
        let r = run(&[src]);
        let held: Vec<_> = r
            .sites
            .iter()
            .filter(|(_, s)| s.msg.contains("lock guard"))
            .collect();
        assert_eq!(held.len(), 1, "{:?}", r.sites);
        assert!(held[0].1.msg.contains("slot"));
    }

    #[test]
    fn temporary_lock_is_not_a_guard() {
        // `*cells.lock() = x;` releases at the end of the statement —
        // the executor's producer does exactly this before pushing.
        let src = "
fn produce(cells: &M, q: &BoundedQueue<u32>) {
    let q: &BoundedQueue<u32> = q;
    *cells.lock() = 1;
    q.push(1);
}
";
        let r = run(&[src]);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }

    #[test]
    fn join_under_held_lock_flagged() {
        let src = "
fn shutdown(state: &M, handle: H) {
    let g = state.lock();
    let _ = handle.join();
}
fn shutdown_ok(state: &M, handle: H) {
    { let g = state.lock(); }
    let _ = handle.join();
}
fn join_with_arg_is_not_a_thread(parts: &[String], state: &M) {
    let g = state.lock();
    let s = parts.join(\", \");
}
";
        let r = run(&[src]);
        let held: Vec<_> = r
            .sites
            .iter()
            .filter(|(_, s)| s.msg.contains(".join()"))
            .collect();
        assert_eq!(held.len(), 1, "{:?}", r.sites);
        assert!(held[0].1.msg.contains("`g`"));
    }

    #[test]
    fn call_to_pushing_fn_under_guard_flagged_interprocedurally() {
        let src = "
fn outer(cells: &M, out_q: &BoundedQueue<u32>) {
    let out_q: &BoundedQueue<u32> = out_q;
    let g = cells.lock();
    relay(out_q);
}
fn relay(out_q: &BoundedQueue<u32>) { via(out_q); }
fn via(out_q: &BoundedQueue<u32>) { let _ = out_q.push(1); }
";
        let r = run(&[src]);
        let held: Vec<_> = r
            .sites
            .iter()
            .filter(|(_, s)| s.msg.contains("call to relay"))
            .collect();
        assert_eq!(held.len(), 1, "{:?}", r.sites);
        assert!(held[0].1.msg.contains("out_q"));
    }

    #[test]
    fn ambiguous_fn_name_is_not_matched_under_guard() {
        // Two fns named `new`, one of which joins: a bare `new(...)`
        // call under a guard cannot be attributed and must not flag.
        let src = "
fn outer(cells: &M) {
    let g = cells.lock();
    let x = new();
}
fn new() -> u32 { 1 }
";
        let joins_elsewhere = "
fn new(h: H) { let _ = h.join(); }
";
        let r = run(&[src, joins_elsewhere]);
        assert!(
            r.sites.iter().all(|(_, s)| !s.msg.contains("call to")),
            "{:?}",
            r.sites
        );
    }

    #[test]
    fn method_call_is_not_matched_against_summaries() {
        // `err.flush()` is std Write::flush; a workspace fn named
        // `flush` that joins must not taint the method call.
        let src = "
fn print_line(out: &O) {
    let mut err = out.lock();
    let _ = err.flush();
}
fn flush(h: H) { let _ = h.join(); }
";
        let r = run(&[src]);
        assert!(
            r.sites.iter().all(|(_, s)| !s.msg.contains("call to")),
            "{:?}",
            r.sites
        );
    }

    #[test]
    fn wildcard_let_is_not_a_guard() {
        let src = "
fn poke(cells: &M, q: &BoundedQueue<u32>) {
    let q: &BoundedQueue<u32> = q;
    let _ = cells.lock();
    q.push(1);
}
";
        let r = run(&[src]);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }
}
