//! The X-drop tile kernel underlying GACT-X (§III-D, §IV).
//!
//! One tile aligns a target window (columns) against a query window (rows)
//! with Needleman-Wunsch scoring (negative scores allowed), affine gaps,
//! and X-drop row clipping: row `i` starts at the first column where the
//! previous row's score exceeded `Vmax − Y` and stops once every further
//! cell falls below it. Direction pointers (4 bits per cell in hardware)
//! are stored only for computed cells, which is what gives GACT-X its
//! constant, small traceback memory.
//!
//! Setting `y` very large disables clipping, which turns the kernel into a
//! full-tile Needleman-Wunsch — exactly the GACT tile (Darwin, ASPLOS
//! 2018) that Fig. 10 compares against.

use crate::cigar::{AlignOp, Cigar};
use genome::{Base, GapPenalties, SubstitutionMatrix};

const NEG_INF: i64 = i64::MIN / 4;

/// Direction-pointer encoding: 2 bits of direction plus the two affine
/// "came from gap-open" flags, as in the hardware's 4-bit pointers.
mod ptr {
    pub const STOP: u8 = 0;
    pub const DIAG: u8 = 1;
    pub const LEFT: u8 = 2; // from E: gap in query, consumes target
    pub const UP: u8 = 3; // from F: gap in target, consumes query
    pub const DIR_MASK: u8 = 0b0011;
    pub const E_OPEN: u8 = 0b0100;
    pub const F_OPEN: u8 = 0b1000;
}

/// One stored row of the ragged DP matrix.
#[derive(Debug, Clone)]
struct Row {
    /// First stored column (inclusive, 0-based including the boundary
    /// column 0).
    jstart: usize,
    /// V scores for stored columns.
    v: Vec<i64>,
    /// F scores (gap-in-target, moving top→down) for stored columns; E is
    /// consumed within its own row and never stored across rows.
    f: Vec<i64>,
    /// 4-bit pointers for stored columns.
    ptrs: Vec<u8>,
}

impl Row {
    fn jend(&self) -> usize {
        self.jstart + self.v.len()
    }

    fn v_at(&self, j: usize) -> i64 {
        if j >= self.jstart && j < self.jend() {
            self.v[j - self.jstart]
        } else {
            NEG_INF
        }
    }

    fn f_at(&self, j: usize) -> i64 {
        if j >= self.jstart && j < self.jend() {
            self.f[j - self.jstart]
        } else {
            NEG_INF
        }
    }

    fn ptr_at(&self, j: usize) -> u8 {
        if j >= self.jstart && j < self.jend() {
            self.ptrs[j - self.jstart]
        } else {
            ptr::STOP
        }
    }
}

/// Result of one X-drop tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileResult {
    /// Maximum cell score in the tile (`Vmax`). May be ≤ 0 when the window
    /// contains no alignment; extension terminates on such tiles.
    pub max_score: i64,
    /// Target bases consumed by the path from the tile origin to the
    /// maximum cell.
    pub max_target: usize,
    /// Query bases consumed by the path to the maximum cell.
    pub max_query: usize,
    /// Alignment path from the tile origin `(0,0)` to the maximum cell.
    pub cigar: Cigar,
    /// DP cells computed.
    pub cells: u64,
    /// Bytes of traceback memory the tile needed at 4 bits/cell — the
    /// hardware BRAM requirement this tile would impose.
    pub traceback_bytes: u64,
    /// Number of rows that had at least one live cell.
    pub rows: usize,
    /// Widest stored row (columns).
    pub max_row_width: usize,
}

/// Runs one GACT-X tile: global-start X-drop DP from the tile origin.
///
/// `target` are the columns, `query` the rows. The path is anchored at
/// `(0, 0)` — leading gaps are charged and retained, which is what lets
/// neighbouring tiles be stitched (§III-D).
///
/// # Examples
///
/// ```
/// use genome::{GapPenalties, Sequence, SubstitutionMatrix};
///
/// let t: Sequence = "ACGTACGTACGT".parse()?;
/// let q: Sequence = "ACGTACGGACGT".parse()?;
/// let r = align::xdrop::xdrop_tile(
///     t.as_slice(),
///     q.as_slice(),
///     &SubstitutionMatrix::darwin_wga(),
///     &GapPenalties::darwin_wga(),
///     9_430,
/// );
/// assert!(r.max_score > 900);
/// assert_eq!(r.max_target, 12);
/// assert_eq!(r.max_query, 12);
/// # Ok::<(), genome::ParseBaseError>(())
/// ```
pub fn xdrop_tile(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    y: i64,
) -> TileResult {
    xdrop_tile_with_mode(target, query, w, gaps, y, false)
}

/// Like [`xdrop_tile`], with a choice of traceback origin.
///
/// With `edge_traceback` the path is traced from the best cell on the
/// tile's far edge (last computed row, or final column) instead of the
/// global maximum — the GACT tile behaviour (every tile makes
/// edge-to-edge progress). The returned `max_score`/`max_target`/
/// `max_query` then describe the chosen edge cell.
pub fn xdrop_tile_with_mode(
    target: &[Base],
    query: &[Base],
    w: &SubstitutionMatrix,
    gaps: &GapPenalties,
    y: i64,
    edge_traceback: bool,
) -> TileResult {
    let (n, m) = (target.len(), query.len());
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);

    let mut rows: Vec<Row> = Vec::with_capacity(m + 1);
    let mut vmax = 0i64;
    let (mut max_i, mut max_j) = (0usize, 0usize);
    let mut cells = 0u64;

    // Row 0: origin plus leading deletions while above the drop threshold.
    {
        let mut v = vec![0i64];
        let mut f = vec![NEG_INF];
        let mut ptrs = vec![ptr::STOP];
        let mut j = 1usize;
        while j <= n {
            let score = -(open + extend * j as i64);
            if score < vmax - y {
                break;
            }
            v.push(score);
            f.push(NEG_INF);
            ptrs.push(ptr::LEFT | if j == 1 { ptr::E_OPEN } else { 0 });
            j += 1;
        }
        cells += v.len() as u64;
        rows.push(Row {
            jstart: 0,
            v,
            f,
            ptrs,
        });
    }

    for i in 1..=m {
        let prev = &rows[i - 1];
        // First live column of the previous row (pruned cells were stored
        // as NEG_INF, so "live" ⇔ score survived the drop test).
        let prev_first_live = (prev.jstart..prev.jend()).find(|&j| prev.v_at(j) > NEG_INF / 2);
        // Column 0 (left boundary: a pure leading insertion) is live while
        // its score is above the drop threshold.
        let col0 = -(open + extend * i as i64);
        let col0_live = col0 >= vmax - y;
        let jstart = match (col0_live, prev_first_live) {
            (true, _) => 0,
            (false, Some(first)) => first.max(1),
            (false, None) => break, // nothing can feed this row
        };
        if jstart > n {
            break;
        }

        let mut v: Vec<i64> = Vec::new();
        let mut e: Vec<i64> = Vec::new();
        let mut f: Vec<i64> = Vec::new();
        let mut ptrs: Vec<u8> = Vec::new();
        let row_jstart = jstart;
        let prev_jend = prev.jend();
        let mut any_live = false;

        let mut j = jstart;
        while j <= n {
            let (val, e_val, f_val, p);
            if j == 0 {
                val = col0;
                e_val = NEG_INF;
                f_val = col0;
                p = ptr::UP | if i == 1 { ptr::F_OPEN } else { 0 };
            } else {
                // E: from the left neighbour in this row.
                let (left_v, left_e) = if j > row_jstart {
                    let k = j - 1 - row_jstart;
                    (v[k], e[k])
                } else {
                    (NEG_INF, NEG_INF)
                };
                let e_from_open = left_v.saturating_sub(open + extend);
                let e_from_ext = left_e.saturating_sub(extend);
                let (e_best, e_open_flag) = if e_from_open >= e_from_ext {
                    (e_from_open, true)
                } else {
                    (e_from_ext, false)
                };
                // F: from above.
                let f_from_open = prev.v_at(j).saturating_sub(open + extend);
                let f_from_ext = prev.f_at(j).saturating_sub(extend);
                let (f_best, f_open_flag) = if f_from_open >= f_from_ext {
                    (f_from_open, true)
                } else {
                    (f_from_ext, false)
                };
                // Diagonal.
                let diag = prev.v_at(j - 1);
                let sub = if diag > NEG_INF / 2 {
                    diag + w.score(target[j - 1], query[i - 1]) as i64
                } else {
                    NEG_INF
                };

                let mut best = sub;
                let mut dir = ptr::DIAG;
                if e_best > best {
                    best = e_best;
                    dir = ptr::LEFT;
                }
                if f_best > best {
                    best = f_best;
                    dir = ptr::UP;
                }
                val = best;
                e_val = e_best;
                f_val = f_best;
                p = dir
                    | if e_open_flag { ptr::E_OPEN } else { 0 }
                    | if f_open_flag { ptr::F_OPEN } else { 0 };
            }

            cells += 1;
            if val > vmax {
                vmax = val;
                max_i = i;
                max_j = j;
            }
            // V dominates E and F, so a pruned V implies dead gap chains
            // too; storing NEG_INF everywhere keeps the invariant simple.
            let live = val >= vmax - y && val > NEG_INF / 2;
            if live {
                any_live = true;
                v.push(val);
                e.push(e_val);
                f.push(f_val);
                ptrs.push(p);
            } else {
                v.push(NEG_INF);
                e.push(NEG_INF);
                f.push(NEG_INF);
                ptrs.push(ptr::STOP);
            }

            // Beyond the previous row's reach (no up/diag inputs), only the
            // in-row E chain can keep cells alive; once it dies, stop.
            let next_has_prev_input = j < prev_jend;
            j += 1;
            if !next_has_prev_input && !live {
                break;
            }
        }

        if !any_live {
            break;
        }
        // Trim trailing dead cells (nothing below can use them).
        while v.len() > 1 && matches!(v.last(), Some(&x) if x <= NEG_INF / 2) {
            v.pop();
            f.pop();
            ptrs.pop();
        }
        rows.push(Row {
            jstart: row_jstart,
            v,
            f,
            ptrs,
        });
    }

    // Traceback: from the global maximum (GACT-X), or from the best cell
    // on the tile's far edge (GACT — the hardware tracebacks from the
    // last row/column so tiles always make edge-to-edge progress, which
    // is exactly what lets a wandering path terminate an alignment early,
    // §VI-D).
    if edge_traceback {
        if let Some((ei, ej, escore)) = best_edge_cell(&rows, n) {
            max_i = ei;
            max_j = ej;
            vmax = escore;
        }
    }
    let cigar = traceback(&rows, max_i, max_j, target, query);
    let stored_cells: u64 = rows.iter().map(|r| r.v.len() as u64).sum();
    let max_row_width = rows.iter().map(|r| r.v.len()).max().unwrap_or(0);

    TileResult {
        max_score: vmax,
        max_target: max_j,
        max_query: max_i,
        cigar,
        cells,
        traceback_bytes: stored_cells.div_ceil(2),
        rows: rows.len(),
        max_row_width,
    }
}

/// The best live cell on the far edge of the computed region: the last
/// computed row, plus every row's cell in the final column `n`.
fn best_edge_cell(rows: &[Row], n: usize) -> Option<(usize, usize, i64)> {
    let mut best: Option<(usize, usize, i64)> = None;
    let mut consider = |i: usize, j: usize, score: i64| {
        if score > NEG_INF / 2 && best.is_none_or(|(_, _, s)| score > s) {
            best = Some((i, j, score));
        }
    };
    if let Some(last) = rows.last() {
        let i = rows.len() - 1;
        for j in last.jstart..last.jend() {
            consider(i, j, last.v_at(j));
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if row.jend() == n + 1 {
            consider(i, n, row.v_at(n));
        }
    }
    best
}

fn traceback(rows: &[Row], max_i: usize, max_j: usize, target: &[Base], query: &[Base]) -> Cigar {
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    let (mut i, mut j) = (max_i, max_j);
    let mut state = 0u8; // 0 = V, 2 = E, 3 = F
    while i > 0 || j > 0 {
        let p = rows[i].ptr_at(j);
        match state {
            0 => match p & ptr::DIR_MASK {
                ptr::STOP => break,
                ptr::DIAG => {
                    let op = if target[j - 1] == query[i - 1] && target[j - 1] != Base::N {
                        AlignOp::Match
                    } else {
                        AlignOp::Subst
                    };
                    ops_rev.push(op);
                    i -= 1;
                    j -= 1;
                }
                ptr::LEFT => state = 2,
                ptr::UP => state = 3,
                // DIR_MASK is two bits; STOP/DIAG/LEFT/UP cover all four
                // values, so any other pattern means a corrupt pointer
                // table — stop the traceback rather than crash.
                _ => break,
            },
            2 => {
                ops_rev.push(AlignOp::Delete);
                let was_open = p & ptr::E_OPEN != 0;
                j -= 1;
                if was_open {
                    state = 0;
                }
            }
            3 => {
                ops_rev.push(AlignOp::Insert);
                let was_open = p & ptr::F_OPEN != 0;
                i -= 1;
                if was_open {
                    state = 0;
                }
            }
            // `state` is only ever assigned 0, 2 or 3 above; treat any
            // other value as a finished traceback.
            _ => break,
        }
    }
    let mut cigar = Cigar::new();
    for op in ops_rev.into_iter().rev() {
        cigar.push(op, 1);
    }
    cigar
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::needleman_wunsch;
    use genome::Sequence;

    fn dw() -> (SubstitutionMatrix, GapPenalties) {
        (SubstitutionMatrix::darwin_wga(), GapPenalties::darwin_wga())
    }

    fn tile(t: &str, q: &str, y: i64) -> TileResult {
        let t: Sequence = t.parse().unwrap();
        let q: Sequence = q.parse().unwrap();
        xdrop_tile(t.as_slice(), q.as_slice(), &dw().0, &dw().1, y)
    }

    #[test]
    fn perfect_match_reaches_corner() {
        let r = tile("ACGTACGTACGT", "ACGTACGTACGT", 9430);
        assert_eq!(r.max_target, 12);
        assert_eq!(r.max_query, 12);
        assert_eq!(r.cigar.to_string(), "12=");
        assert_eq!(r.max_score, 3 * (91 + 100 + 100 + 91));
    }

    #[test]
    fn path_is_valid_and_scores_consistently() {
        let (w, g) = dw();
        let t: Sequence = "ACGGTCAGTCGATTGCAGTCAGCTAGCTAGGATCGGA".parse().unwrap();
        let q: Sequence = "ACGGTCAGTTTCGATTGCAGTCTGCTAGCTAGGGA".parse().unwrap();
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, 9430);
        let a = crate::alignment::Alignment::new(0, 0, r.cigar.clone(), r.max_score);
        a.validate(&t, &q).unwrap();
        assert_eq!(r.max_score, a.rescore(&t, &q, &w, &g));
    }

    #[test]
    fn huge_y_matches_full_needleman_wunsch_to_max() {
        // With an effectively infinite Y the kernel computes the full
        // matrix; its Vmax must dominate the (m,n)-constrained NW score.
        let (w, g) = dw();
        let t: Sequence = "ACGGTCAGTCGATTGCAGTC".parse().unwrap();
        let q: Sequence = "ACGGTCAGTCGATTGCAGTC".parse().unwrap();
        let full = needleman_wunsch(t.as_slice(), q.as_slice(), &w, &g);
        let r = xdrop_tile(t.as_slice(), q.as_slice(), &w, &g, 1 << 40);
        assert_eq!(r.max_score, full.score);
        assert_eq!(r.cells, 21 * 21); // the full (n+1)×(m+1) matrix
    }

    #[test]
    fn xdrop_prunes_cells() {
        let t = "ACGT".repeat(64);
        let q = "ACGT".repeat(64);
        let tight = tile(&t, &q, 1000);
        let loose = tile(&t, &q, 1 << 40);
        assert!(tight.cells < loose.cells / 2, "{} vs {}", tight.cells, loose.cells);
        // Same optimal path found regardless.
        assert_eq!(tight.max_score, loose.max_score);
        assert_eq!(tight.cigar, loose.cigar);
    }

    #[test]
    fn crosses_moderate_gap_when_y_allows() {
        // 20-base deletion in the query: gap cost 430 + 20*30 = 1030 < Y.
        let arm = "ACGGTCAGTCGATTGCAGTC";
        let t = format!("{arm}{}{arm}", "ACGTACGTACGTACGTACGT");
        let q = format!("{arm}{arm}");
        let r = tile(&t, &q, 9430);
        assert_eq!(r.cigar.count(AlignOp::Delete), 20);
        assert_eq!(r.max_target, 60);
        assert_eq!(r.max_query, 40);
    }

    #[test]
    fn tight_y_cannot_cross_long_gap() {
        // 60-base gap costs 430 + 60·30 = 2230; the 60-base second arm
        // gains ~5700, so crossing pays off — but only when Y ≥ the drop.
        let arm = "ACGGTCAGTCGATTGCAGTC".repeat(3);
        let gap = "C".repeat(60);
        let t = format!("{arm}{gap}{arm}");
        let q = format!("{arm}{arm}");
        let crossing = tile(&t, &q, 9430);
        let stuck = tile(&t, &q, 1000);
        assert_eq!(crossing.max_target, 180);
        assert_eq!(crossing.max_query, 120);
        // With a tight Y the drop test kills the extension inside the gap;
        // a handful of spurious C matches may stretch it slightly past the
        // arm but never across.
        assert!(stuck.max_target < arm.len() + 30, "{}", stuck.max_target);
        assert!(crossing.max_score > stuck.max_score);
    }

    #[test]
    fn leading_gap_is_kept() {
        // Query = target minus its first 3 bases: optimal path opens with a
        // deletion at the tile origin, which must survive in the CIGAR.
        let r = tile("ACGTGCAGTCAGTCAA", "TGCAGTCAGTCAA", 9430);
        let runs = r.cigar.runs();
        assert_eq!(runs[0].0, AlignOp::Delete);
        assert_eq!(runs[0].1, 3);
    }

    #[test]
    fn empty_inputs() {
        let r = tile("", "", 9430);
        assert_eq!(r.max_score, 0);
        assert!(r.cigar.is_empty());
        let r = tile("ACGT", "", 9430);
        assert_eq!(r.max_score, 0);
        assert_eq!(r.max_target, 0);
    }

    #[test]
    fn traceback_memory_smaller_with_tight_y() {
        let t = "ACGT".repeat(128);
        let q = "ACGT".repeat(128);
        let tight = tile(&t, &q, 2000);
        let loose = tile(&t, &q, 1 << 40);
        assert!(tight.traceback_bytes < loose.traceback_bytes / 2);
    }
}
