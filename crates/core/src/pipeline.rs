//! The seed–filter–extend pipeline (Fig. 4, Fig. 6).
//!
//! [`WgaPipeline`] runs all three stages over a target/query pair. The
//! filtering and extension stages are swappable via [`crate::config`], so
//! the same driver is both Darwin-WGA (D-SOFT → BSW gapped filter →
//! GACT-X) and the LASTZ-like baseline (D-SOFT → ungapped filter →
//! Y-drop), matching the paper's design where only the middle stage
//! changes between the compared systems.

use crate::absorb::{merge_into_kept, AbsorptionGrid};
use crate::config::WgaParams;
use crate::report::{FunnelCounters, Strand, WgaAlignment, WgaReport};
use crate::stages::{run_extension, run_filter};
use genome::Sequence;
use hwsim::Workload;
use seed::{dsoft_seeds, Anchor, SeedTable};
use std::time::Instant;

/// A configured whole-genome-alignment pipeline.
///
/// # Examples
///
/// ```
/// use genome::evolve::{EvolutionParams, SyntheticPair};
/// use rand::SeedableRng;
/// use wga_core::{config::WgaParams, pipeline::WgaPipeline};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let pair = SyntheticPair::generate(20_000, &EvolutionParams::at_distance(0.15), &mut rng);
///
/// let pipeline = WgaPipeline::new(WgaParams::darwin_wga());
/// let report = pipeline.run(&pair.target.sequence, &pair.query.sequence);
/// assert!(report.total_matches() > 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct WgaPipeline {
    params: WgaParams,
}

impl WgaPipeline {
    /// Creates a pipeline with the given parameters.
    pub fn new(params: WgaParams) -> WgaPipeline {
        WgaPipeline { params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &WgaParams {
        &self.params
    }

    /// Runs the full pipeline on one target/query pair.
    pub fn run(&self, target: &Sequence, query: &Sequence) -> WgaReport {
        let seed_start = Instant::now();
        let table = SeedTable::build(
            target,
            &self.params.seed_pattern,
            self.params.max_seed_occurrences,
        );
        let mut report = self.run_with_table(&table, target, query);
        report.timings.seeding += seed_start.elapsed();
        report
    }

    /// Runs the pipeline against a pre-built seed table of `target`
    /// (table construction amortises across many query chromosomes).
    pub fn run_with_table(
        &self,
        table: &SeedTable,
        target: &Sequence,
        query: &Sequence,
    ) -> WgaReport {
        let mut report = WgaReport::default();
        self.run_strand(table, target, query, Strand::Forward, &mut report);
        if self.params.both_strands {
            let rc = query.reverse_complement();
            self.run_strand(table, target, &rc, Strand::Reverse, &mut report);
        }
        report
            .alignments
            .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
        report
    }

    /// Runs seeding/filtering/extension for one query strand, appending
    /// into `report`.
    fn run_strand(
        &self,
        table: &SeedTable,
        target: &Sequence,
        query: &Sequence,
        strand: Strand,
        report: &mut WgaReport,
    ) {
        let params = &self.params;

        // --- Seeding ---------------------------------------------------
        let seed_start = Instant::now();
        let seeding = dsoft_seeds(table, query, &params.dsoft);
        report.timings.seeding += seed_start.elapsed();
        report.workload.seeds += seeding.seeds_queried;
        report.counters.raw_seed_hits += seeding.raw_hits;

        // --- Filtering ---------------------------------------------------
        let filter_start = Instant::now();
        let mut anchors: Vec<Anchor> = Vec::new();
        for &hit in &seeding.hits {
            let outcome = run_filter(params, target, query, hit);
            report.workload.filter_tiles += 1;
            report.counters.hits_filtered += 1;
            if let Some(anchor) = outcome.anchor {
                anchors.push(anchor);
            }
        }
        report.timings.filtering += filter_start.elapsed();
        report.counters.anchors_passed += anchors.len() as u64;

        // --- Extension ---------------------------------------------------
        let ext_start = Instant::now();
        // Extend best-scoring anchors first so absorption favours strong
        // alignments.
        anchors.sort_by_key(|a| std::cmp::Reverse(a.filter_score));
        let mut grid = AbsorptionGrid::new();
        let mut counters = FunnelCounters::default();
        let mut workload = Workload::default();
        let mut kept: Vec<align::Alignment> = Vec::new();
        for anchor in anchors {
            if grid.covers(anchor.target_pos, anchor.query_pos) {
                counters.anchors_absorbed += 1;
                continue;
            }
            let Some(ext) = run_extension(params, target, query, anchor) else {
                continue;
            };
            workload.extension_tiles += ext.stats.tiles;
            workload.extension_cells += ext.stats.cells;
            workload.extension_rows += ext.stats.rows;
            if ext.alignment.score >= params.extension_threshold {
                grid.insert_alignment(&ext.alignment);
                // Resolve staggered re-extensions (an anchor just past an
                // X-drop stopping point re-aligns the same region).
                if !merge_into_kept(&mut kept, ext.alignment) {
                    counters.anchors_absorbed += 1;
                }
            }
        }
        report.timings.extension += ext_start.elapsed();
        counters.alignments_kept = kept.len() as u64;
        // `counters` only carries the extension-stage fields; the earlier
        // stages were added to the report directly.
        report.counters.merge(&counters);
        report.workload.merge(&workload);
        report
            .alignments
            .extend(kept.into_iter().map(|alignment| WgaAlignment { alignment, strand }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WgaParams;
    use genome::evolve::{EvolutionParams, SyntheticPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic(distance: f64, len: usize, seed: u64) -> SyntheticPair {
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticPair::generate(len, &EvolutionParams::at_distance(distance), &mut rng)
    }

    #[test]
    fn darwin_pipeline_aligns_close_pair() {
        let pair = synthetic(0.1, 30_000, 1);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        // Ground truth has ~30K orthologous pairs at ~95% identity; the
        // pipeline must recover the bulk of them.
        let truth = pair.orthologous_pairs().len() as f64;
        let found = report.total_matches() as f64;
        assert!(found > 0.6 * truth, "found {found} of {truth}");
        // Funnel consistency.
        assert!(report.counters.hits_filtered > 0);
        assert!(report.counters.anchors_passed <= report.counters.hits_filtered);
        assert!(report.counters.alignments_kept <= report.counters.anchors_passed);
        assert_eq!(report.workload.filter_tiles, report.counters.hits_filtered);
    }

    #[test]
    fn alignments_validate_against_sequences() {
        let pair = synthetic(0.25, 20_000, 2);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        assert!(!report.alignments.is_empty());
        for wa in &report.alignments {
            wa.alignment
                .validate(&pair.target.sequence, &pair.query.sequence)
                .unwrap();
            assert!(wa.alignment.score >= 4000);
        }
    }

    #[test]
    fn darwin_beats_lastz_baseline_on_distant_pair() {
        // The paper's headline: gapped filtering recovers more matched
        // bases, increasingly so with phylogenetic distance.
        let pair = synthetic(0.55, 40_000, 3);
        let darwin = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        let lastz = WgaPipeline::new(WgaParams::lastz_baseline())
            .run(&pair.target.sequence, &pair.query.sequence);
        assert!(
            darwin.total_matches() > lastz.total_matches(),
            "darwin {} vs lastz {}",
            darwin.total_matches(),
            lastz.total_matches()
        );
    }

    #[test]
    fn unrelated_sequences_produce_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = genome::markov::MarkovModel::genome_like().generate(20_000, &mut rng);
        let b = genome::markov::MarkovModel::genome_like().generate(20_000, &mut rng);
        let report = WgaPipeline::new(WgaParams::darwin_wga()).run(&a, &b);
        assert_eq!(report.alignments.len(), 0);
    }

    #[test]
    fn reverse_strand_is_found_when_enabled() {
        let pair = synthetic(0.1, 15_000, 5);
        let rc_query = pair.query.sequence.reverse_complement();
        let mut params = WgaParams::darwin_wga();
        params.both_strands = true;
        let report =
            WgaPipeline::new(params).run(&pair.target.sequence, &rc_query);
        let reverse_matches: u64 = report
            .alignments
            .iter()
            .filter(|a| a.strand == Strand::Reverse)
            .map(|a| a.alignment.matches())
            .sum();
        assert!(reverse_matches > 8_000, "{reverse_matches}");

        // Forward-only run on the reverse-complemented query finds ~nothing.
        let fwd_only = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &rc_query);
        assert!(fwd_only.total_matches() < reverse_matches / 4);
    }

    #[test]
    fn absorption_limits_duplicate_alignments() {
        let pair = synthetic(0.1, 20_000, 6);
        let report = WgaPipeline::new(WgaParams::darwin_wga())
            .run(&pair.target.sequence, &pair.query.sequence);
        // With one long homologous region, most anchors are absorbed into
        // the first few alignments instead of re-extending.
        assert!(report.counters.anchors_absorbed > 0);
        assert!(report.counters.alignments_kept < report.counters.anchors_passed / 2);
    }
}
