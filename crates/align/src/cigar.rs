//! Alignment operations and CIGAR strings.

use genome::{GapPenalties, SubstitutionMatrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One class of alignment column.
///
/// `Match`/`Subst` both consume one base of target and query; `Insert`
/// consumes a query base only (gap in the target); `Delete` consumes a
/// target base only (gap in the query). This follows the convention of
/// §IV's equations 1–2, where *insertion* advances along the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlignOp {
    /// Aligned pair of identical bases.
    Match,
    /// Aligned pair of different bases.
    Subst,
    /// Base present only in the query.
    Insert,
    /// Base present only in the target.
    Delete,
}

impl AlignOp {
    /// Single-letter code (`=`, `X`, `I`, `D` — extended CIGAR).
    pub fn code(self) -> char {
        match self {
            AlignOp::Match => '=',
            AlignOp::Subst => 'X',
            AlignOp::Insert => 'I',
            AlignOp::Delete => 'D',
        }
    }

    /// Whether the op consumes a target base.
    pub fn consumes_target(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Subst | AlignOp::Delete)
    }

    /// Whether the op consumes a query base.
    pub fn consumes_query(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Subst | AlignOp::Insert)
    }
}

/// A run-length-encoded sequence of alignment operations.
///
/// # Examples
///
/// ```
/// use align::cigar::{AlignOp, Cigar};
///
/// let mut c = Cigar::new();
/// c.push(AlignOp::Match, 5);
/// c.push(AlignOp::Insert, 2);
/// c.push(AlignOp::Match, 3);
/// assert_eq!(c.to_string(), "5=2I3=");
/// assert_eq!(c.matches(), 8);
/// assert_eq!(c.target_len(), 8);
/// assert_eq!(c.query_len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Cigar {
    runs: Vec<(AlignOp, u32)>,
}

impl Cigar {
    /// An empty CIGAR.
    pub fn new() -> Cigar {
        Cigar { runs: Vec::new() }
    }

    /// Appends `count` copies of `op`, merging with the trailing run.
    pub fn push(&mut self, op: AlignOp, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 == op {
                last.1 += count;
                return;
            }
        }
        self.runs.push((op, count));
    }

    /// Appends all runs of `other`.
    pub fn extend_cigar(&mut self, other: &Cigar) {
        for &(op, count) in &other.runs {
            self.push(op, count);
        }
    }

    /// The run-length-encoded ops.
    pub fn runs(&self) -> &[(AlignOp, u32)] {
        &self.runs
    }

    /// Iterator over individual (expanded) operations.
    pub fn iter_ops(&self) -> impl Iterator<Item = AlignOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(op, count)| std::iter::repeat_n(op, count as usize))
    }

    /// Whether the CIGAR has no operations.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of alignment columns.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(_, c)| c as usize).sum()
    }

    /// Number of exactly matching base pairs.
    pub fn matches(&self) -> u64 {
        self.count(AlignOp::Match)
    }

    /// Number of substituted (aligned but different) base pairs.
    pub fn substitutions(&self) -> u64 {
        self.count(AlignOp::Subst)
    }

    /// Number of aligned pairs (matches + substitutions).
    pub fn aligned_pairs(&self) -> u64 {
        self.matches() + self.substitutions()
    }

    /// Total count of one op.
    pub fn count(&self, op: AlignOp) -> u64 {
        self.runs
            .iter()
            .filter(|&&(o, _)| o == op)
            .map(|&(_, c)| c as u64)
            .sum()
    }

    /// Number of gap-open events (maximal runs of `Insert` or `Delete`).
    pub fn gap_opens(&self) -> u64 {
        self.runs
            .iter()
            .filter(|&&(op, _)| matches!(op, AlignOp::Insert | AlignOp::Delete))
            .count() as u64
    }

    /// Target bases consumed.
    pub fn target_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|&&(op, _)| op.consumes_target())
            .map(|&(_, c)| c as usize)
            .sum()
    }

    /// Query bases consumed.
    pub fn query_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|&&(op, _)| op.consumes_query())
            .map(|&(_, c)| c as usize)
            .sum()
    }

    /// Fraction of aligned pairs that match (0 when nothing is aligned).
    // lint: allow(determinism): display-only fraction; canonical_text carries score + CIGAR, never this value
    pub fn identity(&self) -> f64 {
        let aligned = self.aligned_pairs();
        if aligned == 0 {
            0.0
        } else {
            self.matches() as f64 / aligned as f64
        }
    }

    /// Reverses the operation order in place (used when a left extension,
    /// produced back-to-front, is joined with a right extension).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }

    /// Lengths of maximal gap-free (aligned) blocks, in order.
    ///
    /// This is the statistic of the paper's Fig. 2: the distribution of
    /// ungapped block lengths before an indel interrupts the alignment.
    pub fn ungapped_blocks(&self) -> Vec<u64> {
        let mut blocks = Vec::new();
        let mut current = 0u64;
        for &(op, count) in &self.runs {
            match op {
                AlignOp::Match | AlignOp::Subst => current += count as u64,
                AlignOp::Insert | AlignOp::Delete => {
                    if current > 0 {
                        blocks.push(current);
                        current = 0;
                    }
                }
            }
        }
        if current > 0 {
            blocks.push(current);
        }
        blocks
    }

    /// Recomputes the alignment score under `w`/`gaps`, counting `Match`
    /// runs at the matrix's maximum score and `Subst` at a representative
    /// mismatch. Prefer [`crate::alignment::Alignment::rescore`] when the
    /// sequences are available.
    pub fn approximate_score(&self, w: &SubstitutionMatrix, gaps: &GapPenalties) -> i64 {
        let mut score = 0i64;
        for &(op, count) in &self.runs {
            match op {
                AlignOp::Match => score += w.max_score() as i64 * count as i64,
                AlignOp::Subst => score += -90i64 * count as i64,
                AlignOp::Insert | AlignOp::Delete => score -= gaps.cost(count as usize),
            }
        }
        score
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "*");
        }
        for &(op, count) in &self.runs {
            write!(f, "{}{}", count, op.code())?;
        }
        Ok(())
    }
}

impl FromIterator<(AlignOp, u32)> for Cigar {
    fn from_iter<I: IntoIterator<Item = (AlignOp, u32)>>(iter: I) -> Cigar {
        let mut c = Cigar::new();
        for (op, count) in iter {
            c.push(op, count);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cigar {
        [
            (AlignOp::Match, 10),
            (AlignOp::Subst, 2),
            (AlignOp::Insert, 3),
            (AlignOp::Match, 5),
            (AlignOp::Delete, 1),
            (AlignOp::Match, 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_merges_adjacent_runs() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 3);
        c.push(AlignOp::Match, 4);
        c.push(AlignOp::Insert, 0);
        assert_eq!(c.runs().len(), 1);
        assert_eq!(c.to_string(), "7=");
    }

    #[test]
    fn lengths_and_counts() {
        let c = sample();
        assert_eq!(c.matches(), 19);
        assert_eq!(c.substitutions(), 2);
        assert_eq!(c.aligned_pairs(), 21);
        assert_eq!(c.target_len(), 22);
        assert_eq!(c.query_len(), 24);
        assert_eq!(c.gap_opens(), 2);
        assert!((c.identity() - 19.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn ungapped_blocks_split_at_indels() {
        let c = sample();
        assert_eq!(c.ungapped_blocks(), vec![12, 5, 4]);
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(Cigar::new().to_string(), "*");
        assert_eq!(sample().to_string(), "10=2X3I5=1D4=");
        assert!(Cigar::new().is_empty());
        assert_eq!(Cigar::new().identity(), 0.0);
    }

    #[test]
    fn reverse_reverses_runs() {
        let mut c = sample();
        c.reverse();
        assert_eq!(c.to_string(), "4=1D5=3I2X10=");
    }

    #[test]
    fn extend_cigar_merges_boundary() {
        let mut a = Cigar::new();
        a.push(AlignOp::Match, 3);
        let mut b = Cigar::new();
        b.push(AlignOp::Match, 2);
        b.push(AlignOp::Delete, 1);
        a.extend_cigar(&b);
        assert_eq!(a.to_string(), "5=1D");
    }

    #[test]
    fn iter_ops_expands() {
        let c: Cigar = [(AlignOp::Match, 2), (AlignOp::Insert, 1)].into_iter().collect();
        let ops: Vec<_> = c.iter_ops().collect();
        assert_eq!(ops, vec![AlignOp::Match, AlignOp::Match, AlignOp::Insert]);
    }
}
