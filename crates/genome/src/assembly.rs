//! Multi-chromosome genome assemblies.
//!
//! Whole-genome alignment is genome-vs-genome: the paper's inputs are
//! assemblies of nuclear chromosomes ("we only use nuclear chromosomes,
//! and remove mitochondrial DNA and unmapped and unlocalized contigs",
//! §V-A). An [`Assembly`] is an ordered set of named chromosomes.

use crate::fasta::{self, FastaError, Record};
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One chromosome of an assembly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chromosome {
    /// Chromosome name (e.g. `chrX`).
    pub name: String,
    /// The sequence.
    pub sequence: Sequence,
}

/// A named, ordered collection of chromosomes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assembly {
    /// Assembly name (e.g. `ce11`).
    pub name: String,
    chromosomes: Vec<Chromosome>,
}

impl Assembly {
    /// Creates an empty assembly.
    pub fn new(name: impl Into<String>) -> Assembly {
        Assembly {
            name: name.into(),
            chromosomes: Vec::new(),
        }
    }

    /// Adds a chromosome.
    ///
    /// # Panics
    ///
    /// Panics if a chromosome with the same name already exists.
    pub fn push(&mut self, name: impl Into<String>, sequence: Sequence) {
        let name = name.into();
        assert!(
            self.chromosome(&name).is_none(),
            "duplicate chromosome {name}"
        );
        self.chromosomes.push(Chromosome { name, sequence });
    }

    /// The chromosomes, in order.
    pub fn chromosomes(&self) -> &[Chromosome] {
        &self.chromosomes
    }

    /// Looks a chromosome up by name.
    pub fn chromosome(&self, name: &str) -> Option<&Chromosome> {
        self.chromosomes.iter().find(|c| c.name == name)
    }

    /// Number of chromosomes.
    pub fn len(&self) -> usize {
        self.chromosomes.len()
    }

    /// Whether the assembly has no chromosomes.
    pub fn is_empty(&self) -> bool {
        self.chromosomes.is_empty()
    }

    /// Total bases across chromosomes.
    pub fn total_bases(&self) -> usize {
        self.chromosomes.iter().map(|c| c.sequence.len()).sum()
    }

    /// Reads an assembly from FASTA (one record per chromosome).
    ///
    /// # Errors
    ///
    /// Propagates [`FastaError`] from the reader; returns
    /// [`FastaError::DuplicateName`] when two records share a name, so
    /// malformed user input surfaces as an error rather than a panic.
    pub fn from_fasta<R: BufRead>(name: impl Into<String>, reader: R) -> Result<Assembly, FastaError> {
        let records = fasta::read(reader)?;
        let mut assembly = Assembly::new(name);
        for rec in records {
            if assembly.chromosome(&rec.name).is_some() {
                return Err(FastaError::DuplicateName { name: rec.name });
            }
            assembly.push(rec.name, rec.sequence);
        }
        Ok(assembly)
    }

    /// Writes the assembly as FASTA.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn to_fasta<W: Write>(&self, writer: W) -> std::io::Result<()> {
        let records: Vec<Record> = self
            .chromosomes
            .iter()
            .map(|c| Record {
                name: c.name.clone(),
                description: format!("{} {}", c.name, self.name),
                sequence: c.sequence.clone(),
            })
            .collect();
        fasta::write(writer, &records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Assembly {
        let mut a = Assembly::new("test1");
        a.push("chrI", "ACGTACGT".parse().unwrap());
        a.push("chrII", "GGGGCCCC".parse().unwrap());
        a
    }

    #[test]
    fn basic_accessors() {
        let a = sample();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.total_bases(), 16);
        assert_eq!(a.chromosome("chrII").unwrap().sequence.len(), 8);
        assert!(a.chromosome("chrX").is_none());
        assert_eq!(a.chromosomes()[0].name, "chrI");
    }

    #[test]
    #[should_panic(expected = "duplicate chromosome")]
    fn rejects_duplicate_names() {
        let mut a = sample();
        a.push("chrI", "AC".parse().unwrap());
    }

    #[test]
    fn from_fasta_rejects_duplicate_records() {
        let input = b">chrI\nACGT\n>chrI\nTTTT\n";
        let err = Assembly::from_fasta("dup", &input[..]).unwrap_err();
        assert!(matches!(err, FastaError::DuplicateName { ref name } if name == "chrI"), "{err}");
    }

    #[test]
    fn fasta_round_trip() {
        let a = sample();
        let mut buf = Vec::new();
        a.to_fasta(&mut buf).unwrap();
        let b = Assembly::from_fasta("test1", &buf[..]).unwrap();
        assert_eq!(a, b);
    }
}
