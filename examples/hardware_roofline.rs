//! Hardware model walk-through: platforms, throughputs and the Table V
//! roll-up for one measured workload.
//!
//! Runs a small Darwin-WGA alignment in software to obtain a real
//! workload (seeds, filter tiles, extension cells), then asks the `hwsim`
//! models what the FPGA and ASIC of the paper would do with it, printing
//! runtimes, performance/$, performance/W, and the ASIC area/power
//! breakdown of Table IV.
//!
//! Run with: `cargo run --release --example hardware_roofline`

use darwin_wga::core::{config::WgaParams, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use darwin_wga::hwsim::area::AsicProvisioning;
use darwin_wga::hwsim::perf::{
    accelerated_runtime, perf_per_dollar_improvement, perf_per_watt_improvement,
    software_runtime, SoftwareThroughput,
};
use darwin_wga::hwsim::platform::{AcceleratorConfig, CpuConfig};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // --- Measure a real workload in software ---------------------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let pair = SyntheticPair::generate(80_000, &EvolutionParams::at_distance(0.3), &mut rng);
    println!("Measuring the software pipeline on an 80-kbp pair...");
    let t0 = Instant::now();
    let report = WgaPipeline::new(WgaParams::darwin_wga())
        .run(&pair.target.sequence, &pair.query.sequence);
    let wall = t0.elapsed();
    let w = report.workload;
    println!(
        "  workload: {} seeds, {} filter tiles, {} extension tiles ({} cells)",
        w.seeds, w.filter_tiles, w.extension_tiles, w.extension_cells
    );
    println!("  software wall time: {wall:?}\n");

    // Software throughputs measured from this run.
    let sw = SoftwareThroughput {
        seeds_per_second: w.seeds as f64 / report.timings.seeding.as_secs_f64().max(1e-9),
        filter_tiles_per_second: w.filter_tiles as f64
            / report.timings.filtering.as_secs_f64().max(1e-9),
        ungapped_filters_per_second: 0.0,
        extension_tiles_per_second: w.extension_tiles as f64
            / report.timings.extension.as_secs_f64().max(1e-9),
    };
    println!("Measured software throughputs (this machine, single thread):");
    println!("  filter: {:.0} tiles/s (the Parasail role)", sw.filter_tiles_per_second);
    println!("  extension: {:.0} tiles/s\n", sw.extension_tiles_per_second);

    // --- Platform throughputs -------------------------------------------
    let fpga = AcceleratorConfig::fpga();
    let asic = AcceleratorConfig::asic();
    println!("Accelerator filter throughput (memory-capped):");
    println!("  FPGA (50 × 32-PE arrays @150 MHz): {:.2}M tiles/s", fpga.filter_tiles_per_second() / 1e6);
    println!("  ASIC (64 × 64-PE arrays @1 GHz):   {:.1}M tiles/s", asic.filter_tiles_per_second() / 1e6);
    println!("  (paper: 6.25M and 70M respectively)\n");

    // --- Table V roll-up --------------------------------------------------
    let cpu = CpuConfig::c4_8xlarge();
    let sw_rt = software_runtime(&w, &sw);
    let fpga_rt = accelerated_runtime(&w, &sw, &fpga);
    let asic_rt = accelerated_runtime(&w, &sw, &asic);
    println!("Runtime roll-up for this workload:");
    println!("  iso-sensitive software: {:8.3} s", sw_rt.total_s());
    println!("  Darwin-WGA FPGA:        {:8.3} s", fpga_rt.total_s());
    println!("  Darwin-WGA ASIC:        {:8.3} s", asic_rt.total_s());
    println!(
        "  FPGA perf/$ improvement: {:.1}x   ASIC perf/W improvement: {:.0}x\n",
        perf_per_dollar_improvement(sw_rt.total_s(), &cpu, fpga_rt.total_s(), &fpga),
        perf_per_watt_improvement(sw_rt.total_s(), &cpu, asic_rt.total_s(), &asic),
    );

    // --- Table IV ---------------------------------------------------------
    println!("ASIC breakdown (Table IV, TSMC 40 nm @1 GHz):");
    println!("  {:<16} {:<28} {:>10} {:>9}", "Component", "Configuration", "Area(mm2)", "Power(W)");
    let prov = AsicProvisioning::darwin_wga();
    for row in prov.breakdown() {
        println!(
            "  {:<16} {:<28} {:>10.2} {:>9.2}",
            row.component, row.configuration, row.area_mm2, row.power_w
        );
    }
    println!(
        "  {:<16} {:<28} {:>10.2} {:>9.2}",
        "Total", "", prov.total_area_mm2(), prov.total_power_w()
    );
}
