//! Report rendering: a human summary for the terminal and the
//! schema-2 `lint_report.json` CI consumes.
//!
//! The JSON is **byte-stable**: same tree + same manifest ⇒ identical
//! bytes, so CI can diff it against a committed expectations file.
//! That is why per-rule wall times live only in the human output —
//! they would make every run unique. Every finding is serialized
//! (violations, waived, baselined) with its call chain when the rule
//! produced one, so waiver and baseline drift shows up in the diff
//! too, not just hard failures.

use crate::{Analysis, SiteStatus};

/// Human-readable report. Violations are listed `file:line [rule]`,
/// one per line, so terminals and editors can jump to them; findings
/// with a call chain print it indented underneath.
pub fn human(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wga-lint: {} files scanned, rules: {}\n",
        a.files_scanned,
        a.enabled.join(", ")
    ));
    out.push_str(&format!(
        "  call graph  {} fns, {} edges, {} unknown edges, {} reachable from {} entry fns\n",
        a.fns, a.call_edges, a.unknown_edges, a.reachable_fns, a.entry_fns
    ));
    for rule in &a.enabled {
        let s = a.stats(rule);
        match *rule {
            "panics" => {
                out.push_str(&format!(
                    "  panics      {} found, {} waived, {} baselined, {} violations\n",
                    s.found, s.waived, s.baselined, s.violations
                ));
                for (dir, found, allowed) in &a.baseline_dirs {
                    out.push_str(&format!(
                        "              baseline {}: {} found / {} allowed\n",
                        dir, found, allowed
                    ));
                }
            }
            "deadlock" => {
                out.push_str(&format!(
                    "  deadlock    {} queues, {} edges, {} cycles, {} found, {} waived, {} violations\n",
                    a.queues, a.edges, a.cycles, s.found, s.waived, s.violations
                ));
            }
            "hot-loop" => {
                out.push_str(&format!(
                    "  hot-loop    {} tagged files, {} found, {} waived, {} violations\n",
                    a.hot_files, s.found, s.waived, s.violations
                ));
            }
            _ => {
                out.push_str(&format!(
                    "  {:<11} {} found, {} waived, {} violations\n",
                    rule, s.found, s.waived, s.violations
                ));
            }
        }
    }
    if !a.timings.is_empty() {
        out.push_str("  timing     ");
        for (i, (name, micros)) in a.timings.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            out.push_str(&format!("{}{} {}.{:01}ms", sep, name, micros / 1000, (micros % 1000) / 100));
        }
        out.push('\n');
    }
    let violations: Vec<_> = a
        .sites
        .iter()
        .filter(|s| s.status == SiteStatus::Violation)
        .collect();
    if violations.is_empty() {
        out.push_str("OK: no non-waived violations\n");
    } else {
        out.push_str(&format!("VIOLATIONS ({}):\n", violations.len()));
        for v in violations {
            out.push_str(&format!("  {}:{} [{}] {}\n", v.file, v.line, v.rule, v.msg));
            if !v.chain.is_empty() {
                out.push_str(&format!("      chain: {}\n", v.chain.join(" -> ")));
            }
        }
    }
    out
}

/// Minimal JSON string escaping — the messages only ever need quote
/// and backslash handling, but control characters are covered anyway.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `lint_report.json` body, schema 2. Deterministic byte-for-byte:
/// no timestamps, no timings, sites already sorted by (file, line,
/// rule) upstream.
pub fn json(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"wga-lint\",\n");
    out.push_str("  \"lint_schema\": 2,\n");
    out.push_str(&format!("  \"files\": {},\n", a.files_scanned));
    let mut total_waived = 0usize;
    let mut total_baselined = 0usize;
    for s in &a.sites {
        match s.status {
            SiteStatus::Waived => total_waived += 1,
            SiteStatus::Baselined => total_baselined += 1,
            SiteStatus::Violation => {}
        }
    }
    out.push_str(&format!("  \"violations\": {},\n", a.total_violations()));
    out.push_str(&format!("  \"waived\": {},\n", total_waived));
    out.push_str(&format!("  \"baselined\": {},\n", total_baselined));
    out.push_str(&format!(
        "  \"graph\": {{\"fns\": {}, \"call_edges\": {}, \"unknown_edges\": {}, \"entry_fns\": {}, \"reachable_fns\": {}}},\n",
        a.fns, a.call_edges, a.unknown_edges, a.entry_fns, a.reachable_fns
    ));
    out.push_str("  \"rules\": {\n");
    for (i, rule) in a.enabled.iter().enumerate() {
        let s = a.stats(rule);
        let comma = if i + 1 == a.enabled.len() { "" } else { "," };
        match *rule {
            "panics" => out.push_str(&format!(
                "    \"panics\": {{\"found\": {}, \"waived\": {}, \"baselined\": {}, \"violations\": {}}}{}\n",
                s.found, s.waived, s.baselined, s.violations, comma
            )),
            "deadlock" => out.push_str(&format!(
                "    \"deadlock\": {{\"queues\": {}, \"edges\": {}, \"cycles\": {}, \"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                a.queues, a.edges, a.cycles, s.found, s.waived, s.violations, comma
            )),
            "hot-loop" => out.push_str(&format!(
                "    \"hot-loop\": {{\"files\": {}, \"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                a.hot_files, s.found, s.waived, s.violations, comma
            )),
            other => out.push_str(&format!(
                "    \"{}\": {{\"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                other, s.found, s.waived, s.violations, comma
            )),
        }
    }
    out.push_str("  },\n");
    out.push_str("  \"baselines\": [\n");
    for (i, (dir, found, allowed)) in a.baseline_dirs.iter().enumerate() {
        let comma = if i + 1 == a.baseline_dirs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"dir\": \"{}\", \"found\": {}, \"allowed\": {}}}{}\n",
            esc(dir), found, allowed, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"findings\": [\n");
    for (i, s) in a.sites.iter().enumerate() {
        let comma = if i + 1 == a.sites.len() { "" } else { "," };
        let status = match s.status {
            SiteStatus::Violation => "violation",
            SiteStatus::Waived => "waived",
            SiteStatus::Baselined => "baselined",
        };
        let chain = s
            .chain
            .iter()
            .map(|c| format!("\"{}\"", esc(c)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"status\": \"{}\", \"msg\": \"{}\", \"chain\": [{}]}}{}\n",
            s.rule,
            esc(&s.file),
            s.line,
            status,
            esc(&s.msg),
            chain,
            comma
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analysis, Site, SiteStatus};

    fn sample() -> Analysis {
        Analysis {
            files_scanned: 2,
            sites: vec![
                Site {
                    rule: "panics",
                    file: "src/a.rs".into(),
                    line: 3,
                    msg: ".unwrap()".into(),
                    status: SiteStatus::Baselined,
                    chain: Vec::new(),
                },
                Site {
                    rule: "panics",
                    file: "src/a.rs".into(),
                    line: 7,
                    msg: ".expect( — reachable from pipeline entry points via execute -> step".into(),
                    status: SiteStatus::Violation,
                    chain: vec!["execute".into(), "step".into()],
                },
                Site {
                    rule: "unsafe",
                    file: "src/b.rs".into(),
                    line: 9,
                    msg: "unsafe without a // SAFETY: comment".into(),
                    status: SiteStatus::Violation,
                    chain: Vec::new(),
                },
            ],
            baseline_dirs: vec![("src".into(), 1, 1)],
            fns: 12,
            call_edges: 18,
            unknown_edges: 4,
            entry_fns: 2,
            reachable_fns: 9,
            queues: 3,
            edges: 2,
            cycles: 0,
            hot_files: 1,
            enabled: vec!["panics", "determinism", "taint", "deadlock", "hot-loop", "unsafe"],
            timings: vec![("callgraph", 1234), ("panics", 567)],
        }
    }

    #[test]
    fn json_is_schema_2_with_graph_and_chains() {
        let j = json(&sample());
        assert!(j.contains("\"lint_schema\": 2"));
        assert!(j.contains("\"violations\": 2"));
        assert!(j.contains(
            "\"graph\": {\"fns\": 12, \"call_edges\": 18, \"unknown_edges\": 4, \"entry_fns\": 2, \"reachable_fns\": 9}"
        ));
        assert!(j.contains("\"chain\": [\"execute\", \"step\"]"));
        assert!(j.contains("\"status\": \"baselined\""));
    }

    #[test]
    fn json_is_byte_stable_and_timing_free() {
        let a = sample();
        // Timings differ run to run; the diffable report must not
        // carry them.
        assert!(!json(&a).contains("timing"));
        assert_eq!(json(&a), json(&a));
    }

    #[test]
    fn json_escapes_quotes_in_messages() {
        let mut a = sample();
        a.sites[0].msg = "panic!(\"{e}\")".into();
        let j = json(&a);
        assert!(j.contains("panic!(\\\"{e}\\\")"));
    }

    #[test]
    fn human_lists_violation_with_location_and_chain() {
        let h = human(&sample());
        assert!(h.contains("src/b.rs:9 [unsafe]"));
        assert!(h.contains("baseline src: 1 found / 1 allowed"));
        assert!(h.contains("VIOLATIONS (2):"));
        assert!(h.contains("chain: execute -> step"));
        assert!(h.contains("call graph  12 fns"));
        assert!(h.contains("timing"));
    }
}
