//! `wga-lint` — project-invariant static analyzer for the Darwin-WGA
//! workspace.
//!
//! Since v2 the linter is *interprocedural*: a symbol table
//! ([`symbols`]) and a workspace call graph ([`callgraph`]) sit on the
//! hand-rolled lexer ([`lexer`]), and three of the rules run fixpoint
//! passes over that graph instead of flat token scans:
//!
//! * **panics** — `.unwrap()`/`.expect(`/`panic!`-family in non-test
//!   library code. Sites whose enclosing fn is reachable from a
//!   pipeline entry point (`[entry-points]`) are hard violations that
//!   carry the full entry→site call chain; unreachable sites fall back
//!   to the per-directory baselines, and `[panics-forbidden]` dirs
//!   tolerate nothing either way. `self.unwrap()`/`self.expect(..)`
//!   calls that resolve to a method the enclosing impl defines are
//!   *calls*, not panic sites.
//! * **determinism** — hash-map/set iteration, wall-clock reads and
//!   float use in the manifest's `[determinism]` module set (the code
//!   that feeds `canonical_text`).
//! * **taint** — (a) every file reachable from an entry point must be
//!   classified in `[determinism]` or `[determinism-exempt]`;
//!   (b) nondeterminism sources taint callee→caller, and a canonical
//!   sink (`[determinism-sinks]`) that transitively reaches an
//!   unwaived source is a violation with the sink→source chain.
//! * **deadlock** — workspace-wide: the stage→queue graph over every
//!   `BoundedQueue` must be acyclic, and no queue push, zero-arg
//!   `.join()`, or call to a fn whose effect summary pushes/joins may
//!   happen under a held lock guard ([`effects`]).
//! * **hot-loop** — no allocation/formatting in loop bodies of files
//!   tagged `// lint: hot`.
//! * **unsafe** — every `unsafe` needs a `// SAFETY:` comment.
//!
//! Any rule can be waived per site with
//! `// lint: allow(<rule>): <why>` — the *why* is mandatory.
//!
//! **Soundness caveats**: call resolution is name-based (no types), so
//! trait calls fan out to every in-workspace implementor, same-named
//! free fns in other crates can alias, and calls into external crates
//! are explicit *unknown edges* that confer no reachability. The
//! passes over-approximate reachability and taint rather than prove
//! their absence.

pub mod callgraph;
pub mod config;
pub mod effects;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod taint;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use config::{Config, LintError};

/// All rule names, in reporting order.
pub const RULES: &[&str] = &[
    "panics",
    "determinism",
    "taint",
    "deadlock",
    "hot-loop",
    "unsafe",
];

/// What became of one rule hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteStatus {
    /// Counts against the exit code.
    Violation,
    /// Covered by a `// lint: allow(...)` waiver.
    Waived,
    /// Absorbed by a per-directory panic baseline.
    Baselined,
}

/// One rule hit, resolved.
#[derive(Debug)]
pub struct Site {
    pub rule: &'static str,
    /// Root-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub msg: String,
    pub status: SiteStatus,
    /// Call path witnessing the finding (`entry -> … -> site` for
    /// reachability findings, `sink -> … -> source` for taint). Empty
    /// for flat-token findings.
    pub chain: Vec<String>,
}

/// Per-rule counters for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleStats {
    pub found: usize,
    pub waived: usize,
    pub baselined: usize,
    pub violations: usize,
}

/// Full analysis result.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    pub sites: Vec<Site>,
    /// Panic accounting per baseline directory:
    /// (dir, non-waived *unreachable* sites found, allowed).
    pub baseline_dirs: Vec<(String, usize, usize)>,
    /// Call-graph shape.
    pub fns: usize,
    pub call_edges: usize,
    pub unknown_edges: usize,
    /// Entry-point fns matched / fns reachable from them.
    pub entry_fns: usize,
    pub reachable_fns: usize,
    /// Deadlock-rule queue-graph shape.
    pub queues: usize,
    pub edges: usize,
    pub cycles: usize,
    /// Files carrying `// lint: hot`.
    pub hot_files: usize,
    /// Rules that actually ran, in [`RULES`] order.
    pub enabled: Vec<&'static str>,
    /// Per-rule wall time in microseconds, in [`RULES`] order for the
    /// rules that ran. Shown in human output only — never serialized,
    /// so reports stay byte-stable across runs.
    pub timings: Vec<(&'static str, u128)>,
}

impl Analysis {
    /// Counters for one rule.
    pub fn stats(&self, rule: &str) -> RuleStats {
        let mut s = RuleStats::default();
        for site in self.sites.iter().filter(|s| s.rule == rule) {
            s.found += 1;
            match site.status {
                SiteStatus::Violation => s.violations += 1,
                SiteStatus::Waived => s.waived += 1,
                SiteStatus::Baselined => s.baselined += 1,
            }
        }
        s
    }

    /// Non-waived, non-baselined site count — the exit-code driver.
    pub fn total_violations(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.status == SiteStatus::Violation)
            .count()
    }
}

/// Recursively collects `.rs` files under `root/rel`, sorted by name
/// so every run visits files in the same order.
fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let abs = root.join(rel);
    let rd = fs::read_dir(&abs).map_err(|e| LintError::Io {
        path: abs.clone(),
        msg: e.to_string(),
    })?;
    let mut names: Vec<(bool, String)> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io {
            path: abs.clone(),
            msg: e.to_string(),
        })?;
        let is_dir = entry
            .file_type()
            .map_err(|e| LintError::Io {
                path: entry.path(),
                msg: e.to_string(),
            })?
            .is_dir();
        if let Some(name) = entry.file_name().to_str() {
            names.push((is_dir, name.to_string()));
        }
    }
    names.sort();
    for (is_dir, name) in names {
        let child = rel.join(&name);
        if is_dir {
            walk(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Runs the enabled rules over every file the manifest scans.
pub fn run(cfg: &Config, enabled: &[&'static str]) -> Result<Analysis, LintError> {
    let mut analysis = Analysis {
        enabled: RULES
            .iter()
            .filter(|r| enabled.contains(r))
            .copied()
            .collect(),
        ..Analysis::default()
    };
    let on = |rule: &str| analysis.enabled.contains(&rule);

    // Collect and read every scanned file first; lexes borrow sources.
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.scan_dirs {
        walk(&cfg.root, dir, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut sources: Vec<String> = Vec::with_capacity(files.len());
    for rel in &files {
        let abs = cfg.root.join(rel);
        let src = fs::read_to_string(&abs).map_err(|e| LintError::Io {
            path: abs,
            msg: e.to_string(),
        })?;
        sources.push(src);
    }
    let lexed: Vec<lexer::Lexed<'_>> = sources.iter().map(|s| lex_source(s)).collect();
    let dirs: Vec<rules::Directives> = lexed.iter().map(rules::scan_directives).collect();
    analysis.files_scanned = files.len();
    analysis.hot_files = dirs.iter().filter(|d| d.hot).count();

    let rel_str = |p: &Path| -> String { p.to_string_lossy().replace('\\', "/") };
    let rel_names: Vec<String> = files.iter().map(|p| rel_str(p)).collect();

    // --- symbol table + workspace call graph ------------------------
    let t0 = Instant::now();
    let syms: Vec<symbols::FileSymbols> = lexed
        .iter()
        .enumerate()
        .map(|(i, lx)| symbols::extract(lx, i))
        .collect();
    let graph = callgraph::build(&rel_names, &lexed, &syms);
    let roots = graph.nodes_named(&cfg.entry_points);
    let (entry_parent, entry_seen) = graph.reach(&roots);
    analysis.fns = graph.fns.len();
    analysis.call_edges = graph.edge_count();
    analysis.unknown_edges = graph.unknown_count();
    analysis.entry_fns = roots.len();
    analysis.reachable_fns = entry_seen.iter().filter(|&&s| s).count();
    analysis.timings.push(("callgraph", t0.elapsed().as_micros()));

    // A `self.unwrap()` / `self.expect(..)` whose enclosing impl
    // defines that method is a resolved call, not a panic site (the
    // journal JSON parser has such methods).
    let is_self_method = |fi: usize, tok: usize| -> bool {
        let toks = &lexed[fi].toks;
        if tok < 2 || tok >= toks.len() {
            return false;
        }
        let name = toks[tok].text;
        if (name != "unwrap" && name != "expect")
            || toks[tok - 1].text != "."
            || toks[tok - 2].text != "self"
        {
            return false;
        }
        let Some(node) = graph.enclosing_fn(fi, tok) else {
            return false;
        };
        let Some(owner) = &graph.fns[node].impl_type else {
            return false;
        };
        graph
            .fns
            .iter()
            .any(|f| f.name == name && f.impl_type.as_deref() == Some(owner.as_str()))
    };

    // --- panics: reachability split, then baseline aggregation ------
    if on("panics") {
        let t = Instant::now();
        // Non-waived *unreachable* site indexes grouped by baseline dir.
        let mut groups: BTreeMap<PathBuf, (usize, Vec<usize>)> = BTreeMap::new();
        for (fi, rel) in files.iter().enumerate() {
            if Config::under_any(rel, &cfg.panics_exempt) {
                continue;
            }
            let forbidden = Config::under_any(rel, &cfg.panics_forbidden);
            for raw in rules::panics(&lexed[fi], &dirs[fi]) {
                if is_self_method(fi, raw.tok) {
                    continue;
                }
                let enclosing = graph.enclosing_fn(fi, raw.tok);
                let reachable = enclosing.map(|n| entry_seen[n]).unwrap_or(false);
                if raw.waived {
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: raw.msg,
                        status: SiteStatus::Waived,
                        chain: Vec::new(),
                    });
                } else if forbidden {
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: format!("{} — in a panic-forbidden directory", raw.msg),
                        status: SiteStatus::Violation,
                        chain: Vec::new(),
                    });
                } else if reachable {
                    let node = enclosing.unwrap_or(0);
                    let chain = graph.chain(&entry_parent, &entry_seen, node);
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: format!(
                            "{} — reachable from pipeline entry points via {}",
                            raw.msg,
                            chain.join(" -> ")
                        ),
                        status: SiteStatus::Violation,
                        chain,
                    });
                } else {
                    let (bdir, allowed) = cfg.baseline_for(rel);
                    let idx = analysis.sites.len();
                    analysis.sites.push(Site {
                        rule: "panics",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: raw.msg,
                        status: SiteStatus::Violation, // resolved below
                        chain: Vec::new(),
                    });
                    let entry = groups.entry(bdir).or_insert((allowed, Vec::new()));
                    entry.1.push(idx);
                }
            }
        }
        // Dirs with a manifest baseline but no sites still show up in
        // the accounting, so headroom drift is visible.
        for (bdir, allowed) in &cfg.panic_baselines {
            groups.entry(bdir.clone()).or_insert((*allowed, Vec::new()));
        }
        for (bdir, (allowed, idxs)) in groups {
            let found = idxs.len();
            if found > allowed {
                for i in idxs {
                    analysis.sites[i].msg = format!(
                        "{} — {}: {} found > {} allowed",
                        analysis.sites[i].msg,
                        rel_str(&bdir),
                        found,
                        allowed
                    );
                }
            } else {
                for i in idxs {
                    analysis.sites[i].status = SiteStatus::Baselined;
                }
            }
            analysis
                .baseline_dirs
                .push((rel_str(&bdir), found, allowed));
        }
        analysis.timings.push(("panics", t.elapsed().as_micros()));
    }

    // --- determinism: manifest module set only ----------------------
    if on("determinism") {
        let t = Instant::now();
        for (fi, rel) in files.iter().enumerate() {
            if !cfg.determinism_files.iter().any(|f| f == rel) {
                continue;
            }
            for raw in rules::determinism(&lexed[fi], &dirs[fi]) {
                analysis.sites.push(Site {
                    rule: "determinism",
                    file: rel_names[fi].clone(),
                    line: raw.line,
                    msg: raw.msg,
                    status: if raw.waived {
                        SiteStatus::Waived
                    } else {
                        SiteStatus::Violation
                    },
                    chain: Vec::new(),
                });
            }
        }
        analysis
            .timings
            .push(("determinism", t.elapsed().as_micros()));
    }

    // --- taint: surface superset + tainted sinks --------------------
    if on("taint") {
        let t = Instant::now();
        let tr = taint::analyze(cfg, &files, &lexed, &dirs, &graph, &entry_parent, &entry_seen);
        for site in tr.sites {
            analysis.sites.push(Site {
                rule: "taint",
                file: rel_names[site.file].clone(),
                line: site.line,
                msg: site.msg,
                status: if site.waived {
                    SiteStatus::Waived
                } else {
                    SiteStatus::Violation
                },
                chain: site.chain,
            });
        }
        analysis.timings.push(("taint", t.elapsed().as_micros()));
    }

    // --- deadlock: workspace-wide queue/lock/join discipline --------
    if on("deadlock") {
        let t = Instant::now();
        let pairs: Vec<(&lexer::Lexed<'_>, &rules::Directives)> =
            lexed.iter().zip(dirs.iter()).collect();
        let dl = effects::analyze(&pairs);
        analysis.queues = dl.queues.len();
        analysis.edges = dl.edges.len();
        analysis.cycles = dl.cycles.len();
        for (fi, raw) in dl.sites {
            analysis.sites.push(Site {
                rule: "deadlock",
                file: rel_names[fi].clone(),
                line: raw.line,
                msg: raw.msg,
                status: if raw.waived {
                    SiteStatus::Waived
                } else {
                    SiteStatus::Violation
                },
                chain: Vec::new(),
            });
        }
        analysis.timings.push(("deadlock", t.elapsed().as_micros()));
    }

    // --- hot-loop + unsafe: every scanned file ----------------------
    if on("hot-loop") || on("unsafe") {
        let t = Instant::now();
        for (fi, _) in files.iter().enumerate() {
            if on("hot-loop") {
                for raw in rules::hot_loop(&lexed[fi], &dirs[fi]) {
                    analysis.sites.push(Site {
                        rule: "hot-loop",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: raw.msg,
                        status: if raw.waived {
                            SiteStatus::Waived
                        } else {
                            SiteStatus::Violation
                        },
                        chain: Vec::new(),
                    });
                }
            }
            if on("unsafe") {
                for raw in rules::unsafe_audit(&lexed[fi], &dirs[fi]) {
                    analysis.sites.push(Site {
                        rule: "unsafe",
                        file: rel_names[fi].clone(),
                        line: raw.line,
                        msg: raw.msg,
                        status: if raw.waived {
                            SiteStatus::Waived
                        } else {
                            SiteStatus::Violation
                        },
                        chain: Vec::new(),
                    });
                }
            }
        }
        analysis
            .timings
            .push(("hot-loop+unsafe", t.elapsed().as_micros()));
    }

    analysis
        .sites
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(analysis)
}

/// Thin wrapper so `sources.iter().map(...)` gets a fn pointer with
/// the right lifetime relationship.
fn lex_source(src: &str) -> lexer::Lexed<'_> {
    lexer::lex(src)
}
