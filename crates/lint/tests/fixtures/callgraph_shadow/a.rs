//! Shadowed-name fixture, file 1 of 2: `normalize` is defined here and
//! in `b.rs`. Name-based resolution fans the call out to both — the
//! documented over-approximation.

pub fn execute() {
    normalize();
}

pub fn normalize() {
    step();
}

fn step() {}
