//! Seed sensitivity estimation.
//!
//! D-SOFT's parameters (§III-B) trade sensitivity against computation;
//! the paper tunes them "to various points, including the one which
//! recovers every alignment in LASTZ". This module quantifies the seeding
//! side of that trade-off: the probability that a homologous region
//! yields at least one seed hit, analytically per position and by Monte
//! Carlo per region.

use crate::pattern::SeedPattern;
use genome::Base;
use rand::Rng;

/// Probability that a single position produces a seed hit, given the
/// per-base match probability `identity` and, among mismatches, the
/// fraction `transition_fraction` that are transitions.
///
/// With `allow_transition` the seed tolerates one transition at any
/// sampled position (Fig. 5b).
///
/// # Examples
///
/// ```
/// use seed::{pattern::SeedPattern, sensitivity::hit_probability};
///
/// let p = SeedPattern::lastz_default();
/// let exact = hit_probability(&p, 0.8, 2.0 / 3.0, false);
/// let with_tr = hit_probability(&p, 0.8, 2.0 / 3.0, true);
/// assert!(with_tr > 2.0 * exact); // transition tolerance buys a lot
/// ```
pub fn hit_probability(
    pattern: &SeedPattern,
    identity: f64,
    transition_fraction: f64,
    allow_transition: bool,
) -> f64 {
    assert!((0.0..=1.0).contains(&identity), "identity out of range");
    let w = pattern.weight() as f64;
    let p_match = identity;
    let p_transition = (1.0 - identity) * transition_fraction;
    let all_match = p_match.powf(w);
    if !allow_transition {
        return all_match;
    }
    all_match + w * p_match.powf(w - 1.0) * p_transition
}

/// Monte Carlo estimate of the probability that a homologous region of
/// `region_len` bases (uniform per-base identity, geometric indel spacing
/// of mean `indel_every`) produces at least one seed hit.
///
/// An indel terminates the current gap-free run; seeds cannot span runs.
#[allow(clippy::too_many_arguments)] // mirrors the model's parameter list
pub fn region_sensitivity<R: Rng + ?Sized>(
    pattern: &SeedPattern,
    identity: f64,
    transition_fraction: f64,
    allow_transition: bool,
    region_len: usize,
    indel_every: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let span = pattern.span();
    let mut hits = 0usize;
    for _ in 0..trials {
        // Lay out the region as a sequence of per-base events:
        // match / transition / transversion, with indel breakpoints.
        let mut run: Vec<u8> = Vec::with_capacity(region_len); // 0=match,1=ts,2=tv
        let mut found = false;
        let p_indel = if indel_every > 0.0 { 1.0 / indel_every } else { 0.0 };
        for _ in 0..region_len {
            if p_indel > 0.0 && rng.gen::<f64>() < p_indel {
                found |= run_has_hit(pattern, &run, allow_transition);
                run.clear();
                if found {
                    break;
                }
                continue;
            }
            let x: f64 = rng.gen();
            let event = if x < identity {
                0
            } else if x < identity + (1.0 - identity) * transition_fraction {
                1
            } else {
                2
            };
            run.push(event);
            // Early exit: check the window ending here.
            if run.len() >= span {
                let start = run.len() - span;
                if window_hits(pattern, &run[start..], allow_transition) {
                    found = true;
                    break;
                }
            }
        }
        if found {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn run_has_hit(pattern: &SeedPattern, run: &[u8], allow_transition: bool) -> bool {
    let span = pattern.span();
    if run.len() < span {
        return false;
    }
    (0..=run.len() - span).any(|s| window_hits(pattern, &run[s..s + span], allow_transition))
}

fn window_hits(pattern: &SeedPattern, window: &[u8], allow_transition: bool) -> bool {
    let mut transitions = 0;
    for &off in pattern.sampled_offsets() {
        match window[off] {
            0 => {}
            1 if allow_transition => {
                transitions += 1;
                if transitions > 1 {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Empirical per-position hit check on real sequences, for validating the
/// model: whether the windows at `pos` of `a` and `b` seed-match.
pub fn sequences_hit(
    pattern: &SeedPattern,
    a: &[Base],
    b: &[Base],
    pos: usize,
    allow_transition: bool,
) -> bool {
    if allow_transition {
        let words = pattern.extract_with_transitions(a, pos);
        match pattern.extract(b, pos) {
            Some(bw) => words.contains(&bw),
            None => false,
        }
    } else {
        match (pattern.extract(a, pos), pattern.extract(b, pos)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn analytic_matches_intuition() {
        let p = SeedPattern::lastz_default();
        // Perfect identity: always hits.
        assert!((hit_probability(&p, 1.0, 0.67, false) - 1.0).abs() < 1e-12);
        assert!((hit_probability(&p, 1.0, 0.67, true) - 1.0).abs() < 1e-9);
        // Monotone in identity.
        let lo = hit_probability(&p, 0.6, 0.67, true);
        let hi = hit_probability(&p, 0.9, 0.67, true);
        assert!(hi > lo);
        // 0.8^12 ≈ 0.0687.
        let exact = hit_probability(&p, 0.8, 0.67, false);
        assert!((exact - 0.8f64.powi(12)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_per_position() {
        // A region of exactly one span with no indels is one Bernoulli
        // trial of the per-position probability.
        let p = SeedPattern::exact(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mc = region_sensitivity(&p, 0.85, 0.67, false, 8, 0.0, 20_000, &mut rng);
        let analytic = hit_probability(&p, 0.85, 0.67, false);
        assert!((mc - analytic).abs() < 0.02, "mc {mc} vs analytic {analytic}");
    }

    #[test]
    fn longer_regions_are_more_sensitive() {
        let p = SeedPattern::lastz_default();
        let mut rng = StdRng::seed_from_u64(2);
        let short = region_sensitivity(&p, 0.75, 0.67, true, 40, 50.0, 4_000, &mut rng);
        let long = region_sensitivity(&p, 0.75, 0.67, true, 400, 50.0, 4_000, &mut rng);
        assert!(long > short + 0.1, "short {short} long {long}");
    }

    #[test]
    fn dense_indels_reduce_sensitivity() {
        let p = SeedPattern::lastz_default();
        let mut rng = StdRng::seed_from_u64(3);
        // With indels every ~8 bp no 19-span window survives intact; with
        // indels every ~100 bp most regions seed. This is the Fig. 2
        // mechanism at the seeding stage.
        let sparse = region_sensitivity(&p, 0.7, 0.67, true, 150, 100.0, 4_000, &mut rng);
        let dense = region_sensitivity(&p, 0.7, 0.67, true, 150, 8.0, 4_000, &mut rng);
        assert!(sparse > dense + 0.3, "sparse {sparse} dense {dense}");
    }

    #[test]
    fn transition_tolerance_helps() {
        let p = SeedPattern::lastz_default();
        let mut rng = StdRng::seed_from_u64(4);
        let without = region_sensitivity(&p, 0.7, 0.67, false, 100, 60.0, 4_000, &mut rng);
        let with = region_sensitivity(&p, 0.7, 0.67, true, 100, 60.0, 4_000, &mut rng);
        assert!(with > without, "with {with} without {without}");
    }

    #[test]
    fn sequences_hit_validates_model_semantics() {
        let p = SeedPattern::exact(6);
        let a: genome::Sequence = "ACGTAC".parse().unwrap();
        let exact: genome::Sequence = "ACGTAC".parse().unwrap();
        let ts: genome::Sequence = "GCGTAC".parse().unwrap(); // A→G transition
        let tv: genome::Sequence = "CCGTAC".parse().unwrap(); // A→C transversion
        assert!(sequences_hit(&p, a.as_slice(), exact.as_slice(), 0, false));
        assert!(!sequences_hit(&p, a.as_slice(), ts.as_slice(), 0, false));
        assert!(sequences_hit(&p, a.as_slice(), ts.as_slice(), 0, true));
        assert!(!sequences_hit(&p, a.as_slice(), tv.as_slice(), 0, true));
    }
}
