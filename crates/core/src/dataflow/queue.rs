//! Bounded MPMC queue with backpressure — the software analogue of the
//! fixed-depth hardware FIFOs between Darwin-WGA's D-SOFT, BSW and
//! GACT-X arrays.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! shim has no condvar). Lock poisoning is deliberately ignored
//! (`into_inner` on a poisoned guard): a worker panic is already
//! contained by the executor's `catch_unwind` layers, and the queue's
//! state — a `VecDeque` plus two flags — is valid after any interleaving
//! of pushes and pops.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A blocking bounded FIFO shared by producers and consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the queue closes (wakes `pop`).
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes (wakes `push`).
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark, for [`super::StageMetrics`] occupancy telemetry.
    max_occupancy: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity rendezvous channel
    /// is not supported — the CLI validates `--queue-depth >= 1`).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                max_occupancy: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes an item, blocking while the queue is full (backpressure).
    ///
    /// Returns `Err(item)` when the queue has been closed — the caller
    /// is racing a shutdown and should drop the work.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.max_occupancy = state.max_occupancy.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops the oldest item, blocking while the queue is empty.
    ///
    /// Returns `None` once the queue is closed *and* drained — consumers
    /// use this as their termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: blocked pushers fail, and poppers drain the
    /// remaining items before seeing `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Highest number of items the queue ever held at once.
    pub fn max_occupancy(&self) -> usize {
        self.lock().max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        // Idempotent close, and pushes after close are refused.
        q.close();
        assert_eq!(q.push(3), Err(3));
    }

    #[test]
    fn push_blocks_at_capacity_until_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(10).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(20));
        // The pusher must be blocked: the queue is at capacity.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push should block while full");
        assert_eq!(q.pop(), Some(10));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.max_occupancy(), 1);
    }

    #[test]
    fn close_unblocks_waiting_pusher_and_popper() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let qp = Arc::clone(&q);
        let pusher = std::thread::spawn(move || qp.push(2));
        let qc = Arc::clone(&q);
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            qc.close();
        });
        assert_eq!(pusher.join().unwrap(), Err(2));
        closer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        const PER_PRODUCER: usize = 500;
        let q = Arc::new(BoundedQueue::new(4));
        let mut handles = Vec::new();
        for p in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..3 * PER_PRODUCER).collect::<Vec<_>>());
        assert!(q.max_occupancy() <= 4);
    }
}
