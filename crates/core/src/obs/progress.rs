//! Throttled live progress reporting (`--progress`).
//!
//! A [`ProgressMeter`] owns a background thread that periodically reads
//! the [`TraceRecorder`]'s counters and rewrites one stderr line:
//!
//! ```text
//! [wga] pairs 3/4 | 182.4 Mcells/s | filter survival 1.2% | ETA 0:07
//! ```
//!
//! The worker threads never block on progress — the meter only reads
//! relaxed atomics at its own cadence.

use super::TraceRecorder;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Point-in-time view of the recorder's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Pairs finished so far.
    pub pairs_done: u64,
    /// Total pairs the run will process (0 when unannounced).
    pub pairs_total: u64,
    /// Gapped filter tiles executed so far.
    pub filter_tiles: u64,
    /// Anchors that survived the filter so far.
    pub anchors_passed: u64,
    /// DP cells spent so far (filter + extension).
    pub cells: u64,
    /// Microseconds since the recorder was created.
    pub elapsed_us: u64,
}

/// Renders one progress line from a snapshot (no carriage control).
pub fn render_progress_line(s: &ProgressSnapshot) -> String {
    let mcells_s = if s.elapsed_us > 0 {
        s.cells as f64 / s.elapsed_us as f64 // cells/us == Mcells/s
    } else {
        0.0
    };
    let survival = if s.filter_tiles > 0 {
        100.0 * s.anchors_passed as f64 / s.filter_tiles as f64
    } else {
        0.0
    };
    let eta = match (s.pairs_done, s.pairs_total) {
        (done, total) if done > 0 && total > done => {
            let remaining_us = s.elapsed_us * (total - done) / done;
            let secs = remaining_us / 1_000_000;
            format!("{}:{:02}", secs / 60, secs % 60)
        }
        (done, total) if total > 0 && done >= total => "0:00".to_string(),
        _ => "?".to_string(),
    };
    format!(
        "[wga] pairs {}/{} | {:.1} Mcells/s | filter survival {:.1}% | ETA {}",
        s.pairs_done,
        if s.pairs_total > 0 {
            s.pairs_total.to_string()
        } else {
            "?".to_string()
        },
        mcells_s,
        survival,
        eta
    )
}

/// Background progress printer. Create with [`ProgressMeter::start`],
/// stop with [`ProgressMeter::finish`] (or drop — the thread is always
/// joined).
#[derive(Debug)]
pub struct ProgressMeter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressMeter {
    /// Spawns the printer thread, refreshing every `interval`.
    pub fn start(recorder: Arc<TraceRecorder>, interval: Duration) -> ProgressMeter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut width = 0usize;
            while !stop_flag.load(Ordering::Relaxed) {
                print_line(&recorder, &mut width, false);
                std::thread::sleep(interval);
            }
            // Final refresh, then move off the live line.
            print_line(&recorder, &mut width, true);
        });
        ProgressMeter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the printer and waits for its final line.
    pub fn finish(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressMeter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn print_line(recorder: &TraceRecorder, width: &mut usize, last: bool) {
    let line = render_progress_line(&recorder.progress());
    // Pad with spaces so a shrinking line fully overwrites its
    // predecessor on the same terminal row.
    let pad = width.saturating_sub(line.len());
    *width = line.len();
    let mut err = std::io::stderr().lock();
    let terminator = if last { "\n" } else { "" };
    let _ = write!(err, "\r{line}{}{terminator}", " ".repeat(pad));
    let _ = err.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Counter, Recorder};

    #[test]
    fn progress_line_formats() {
        let s = ProgressSnapshot {
            pairs_done: 3,
            pairs_total: 4,
            filter_tiles: 1_000,
            anchors_passed: 12,
            cells: 200_000_000,
            elapsed_us: 1_000_000,
        };
        let line = render_progress_line(&s);
        assert!(line.contains("pairs 3/4"), "{line}");
        assert!(line.contains("200.0 Mcells/s"), "{line}");
        assert!(line.contains("filter survival 1.2%"), "{line}");
        // 1s elapsed for 3 pairs -> ~0.33s remaining for the last one.
        assert!(line.contains("ETA 0:00"), "{line}");
    }

    #[test]
    fn progress_line_handles_unknowns() {
        let s = ProgressSnapshot {
            pairs_done: 0,
            pairs_total: 0,
            filter_tiles: 0,
            anchors_passed: 0,
            cells: 0,
            elapsed_us: 0,
        };
        let line = render_progress_line(&s);
        assert!(line.contains("pairs 0/?"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
    }

    #[test]
    fn meter_starts_and_stops() {
        let rec = Arc::new(TraceRecorder::new());
        rec.set_total_pairs(2);
        rec.add(Counter::PairsDone, 1);
        let meter = ProgressMeter::start(Arc::clone(&rec), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        meter.finish(); // must join cleanly without hanging
    }
}
