//! The streaming executor: seeding producer → filter pool → extension
//! pool over bounded queues.
//!
//! # Topology
//!
//! ```text
//! producer ──filter_q──▶ filter workers ──extend_q──▶ extension workers ──done_q──▶ collector
//! (1 thread)  (bounded)   (N threads)     (bounded)    (N threads)        (bounded)  (main thread)
//! ```
//!
//! The producer walks chromosome pairs in canonical (target × query)
//! order, builds each target row's seed table once, runs D-SOFT per
//! strand, applies the shared budget clamp ([`crate::budget`]) and cuts
//! the clamped hit list into fixed-size tile batches pushed into
//! `filter_q`. Filter workers run batches through the pair's shared
//! [`FilterContext`] and deposit results into the pair's cell; the
//! worker that deposits a pair's last batch promotes the whole pair into
//! `extend_q`. Extension workers run the sequential anchor-absorption
//! stage per pair — a pair is one *stream*, so absorption state never
//! crosses threads — and emit the finished [`WgaReport`] into `done_q`,
//! where the collector journals it (the pair is the checkpoint unit,
//! exactly as in the barrier executor).
//!
//! # Determinism
//!
//! Batches execute in arbitrary order but deposit into index-addressed
//! slots; the extension stage reads them back in batch order, so anchors
//! reach [`extend_anchors`] in hit order — the same order the barrier
//! executor produces. The collector stores per-pair results by pair id
//! and the final report is assembled in canonical pair order, making the
//! output byte-identical to the barrier executor at any thread count
//! (`tests/golden_report.rs` pins this).
//!
//! # Shutdown protocol (deadlock freedom)
//!
//! Queues form an acyclic chain, and each stage closes its *downstream*
//! queue when it finishes: the producer closes `filter_q` when all pairs
//! are planned; the last filter worker to exit closes `extend_q`; the
//! last extension worker closes `done_q`, which ends the collector loop.
//! The close-on-exit is a `Drop` guard, so even a worker panicking
//! outside its `catch_unwind` layers still releases the downstream
//! stages instead of deadlocking the scope.
//!
//! # Known divergence from the barrier executor
//!
//! The producer applies the filter-tile budget *statically* (the reverse
//! strand's clamp assumes every planned forward tile executes). Absent a
//! deadline or a double-panicked batch, planned == executed and the
//! clamp is identical to the barrier's; under a mid-pair deadline or a
//! failed batch with `max_filter_tiles` set on a both-strand run, the
//! reverse strand may be clamped slightly tighter than the barrier
//! executor would. Deadline runs are inherently timing-dependent, so no
//! golden test covers that combination.

use crate::budget::{clamp_hit_count, deadline_event};
use crate::config::WgaParams;
use crate::dataflow::metrics::{ExecutorMetrics, StageMeter};
use crate::dataflow::ExecutorKind;
use crate::obs::{strand_code, Counter, Obs, SpanName, STRAND_NA};

/// `seq` codes on `queue.wait` spans, naming the queue the worker
/// blocked on (see `SpanName::QueueWait`).
pub const QUEUE_SEED_PUSH: u64 = 0;
/// Filter worker blocked popping `filter_q`.
pub const QUEUE_FILTER_POP: u64 = 1;
/// Extension worker blocked popping `extend_q`.
pub const QUEUE_EXTEND_POP: u64 = 2;
/// Collector blocked popping `done_q`.
pub const QUEUE_DONE_POP: u64 = 3;
use crate::dataflow::queue::BoundedQueue;
use crate::error::{WgaError, WgaResult};
use crate::faultsim::{FaultInjector, Hook};
use crate::filter_engine::FilterContext;
use crate::genome_pipeline::{
    append_supervised, AlignOptions, AssemblyReport, LocatedAlignment, SeedTableFn,
};
use crate::journal::{Journal, PairRecord};
use crate::parallel::panic_message;
use crate::report::{PairOutcome, RunEvent, RunOutcome, StageKind, Strand, WgaReport};
use crate::shard::{extend_anchors_sharded, sharded_dsoft, sharded_seed_table, ThreadGrant};
use crate::supervise::{self, RetryPolicy};
use genome::assembly::Assembly;
use genome::Sequence;
use parking_lot::Mutex;
use seed::{Anchor, SeedHit, SeedTable};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed hits per filter task. Small enough that a pair's tiles spread
/// across the pool, large enough to amortise queue traffic and engine
/// scratch reuse (the hardware streams tiles through its arrays in
/// batches for the same reason).
const FILTER_BATCH_TILES: usize = 64;

/// A query strand's sequence: the forward strand borrows the assembly,
/// the reverse strand owns its reverse complement behind an `Arc` shared
/// by every task of the lane.
#[derive(Clone)]
enum StrandSeq<'a> {
    Forward(&'a Sequence),
    Reverse(Arc<Sequence>),
}

impl StrandSeq<'_> {
    fn seq(&self) -> &Sequence {
        match self {
            StrandSeq::Forward(s) => s,
            StrandSeq::Reverse(s) => s,
        }
    }
}

/// One (pair, strand) stream planned by the producer.
struct Lane<'a> {
    strand: Strand,
    query: StrandSeq<'a>,
    seeds_queried: u64,
    raw_hits: u64,
    /// D-SOFT wall-clock for this strand.
    seed_time: Duration,
    /// [`FilterContext`] build wall-clock (counted as filtering time,
    /// matching the barrier executor's accounting).
    ctx_time: Duration,
    clamp_events: Vec<RunEvent>,
    /// Filter results, index-addressed by batch; `deposited` counts how
    /// many are in.
    batches: Vec<Option<BatchResult>>,
    deposited: usize,
}

/// All filter-stage state of one chromosome pair in flight.
struct PairJob<'a> {
    pair_id: usize,
    pair_start: Instant,
    target: &'a Sequence,
    lanes: Vec<Lane<'a>>,
}

/// One batch of seed hits for the filter pool.
struct FilterTask<'a> {
    pair_id: usize,
    lane_idx: usize,
    batch_idx: usize,
    hits: Vec<SeedHit>,
    ctx: Arc<FilterContext>,
    target: &'a Sequence,
    query: StrandSeq<'a>,
    pair_start: Instant,
}

/// What the filter pool reports for one batch.
struct BatchResult {
    /// Anchors in hit order within the batch.
    anchors: Vec<Anchor>,
    /// Hits actually filtered (< `items` when the deadline stopped the
    /// batch early).
    processed: u64,
    /// Hits the batch carried.
    items: u64,
    /// Panic message when the batch failed twice (worker + serial retry).
    failed: Option<String>,
    /// Filter wall-clock of the batch.
    busy: Duration,
    /// DP cells evaluated.
    cells: u64,
}

/// Terminal result of one pair, headed for the collector.
struct PairDone {
    pair_id: usize,
    result: Result<WgaReport, String>,
}

/// Decrements the pool's live-worker count on drop and closes the
/// downstream queue when this was the last worker — the stage-shutdown
/// cascade survives even a panic that escapes a worker's `catch_unwind`.
struct PoolGuard<'q, T> {
    alive: &'q AtomicUsize,
    downstream: &'q BoundedQueue<T>,
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if self.alive.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.downstream.close();
        }
    }
}

/// Runs the full assembly-vs-assembly alignment through the streaming
/// executor. Called by [`crate::genome_pipeline::align_assemblies_with`]
/// once parameters are validated and the journal (if any) is open.
pub(crate) fn execute(
    params: &WgaParams,
    target: &Assembly,
    query: &Assembly,
    options: &AlignOptions,
    mut journal: Option<Journal>,
    obs: Obs<'_>,
    tables: Option<&SeedTableFn<'_>>,
) -> WgaResult<AssemblyReport> {
    let threads = options.threads;
    let queue_depth = options.queue_depth;
    let tchroms = target.chromosomes();
    let qchroms = query.chromosomes();
    let qn = qchroms.len();
    let npairs = tchroms.len() * qn;

    // Replay journaled pairs up front; the producer skips them entirely.
    let mut resumed: Vec<Option<PairRecord>> = Vec::with_capacity(npairs);
    for tchrom in tchroms {
        for qchrom in qchroms {
            resumed.push(
                journal
                    .as_mut()
                    .and_then(|j| j.take(&tchrom.name, &qchrom.name)),
            );
        }
    }
    let resumed_flags: Vec<bool> = resumed.iter().map(Option::is_some).collect();
    obs.set_total_pairs(npairs as u64);
    obs.add(
        Counter::PairsDone,
        resumed_flags.iter().filter(|f| **f).count() as u64,
    );

    let filter_q: BoundedQueue<FilterTask<'_>> = BoundedQueue::new(queue_depth);
    let extend_q: BoundedQueue<PairJob<'_>> = BoundedQueue::new(queue_depth);
    let done_q: BoundedQueue<PairDone> = BoundedQueue::new(queue_depth);
    let mut cells: Vec<Mutex<Option<PairJob<'_>>>> = Vec::with_capacity(npairs);
    cells.resize_with(npairs, || Mutex::new(None));
    let cells = &cells[..];

    let seed_meter = StageMeter::default();
    let filter_meter = StageMeter::default();
    let ext_meter = StageMeter::default();
    let table_build_ns = AtomicU64::new(0);
    let filter_alive = AtomicUsize::new(threads);
    let ext_alive = AtomicUsize::new(threads);

    // Supervision state: the fault injector rides in on `obs` (built by
    // `align_assemblies_observed`), every stage bumps the heartbeat on
    // each unit of progress, and — when `--stall-timeout-ms` is set — a
    // watchdog thread escalates a flat heartbeat by closing every queue,
    // so a wedged run drains into `Failed` pairs instead of hanging.
    let injector = obs.fault();
    let retry_policy = injector.map_or(
        RetryPolicy {
            max_retries: options.max_retries,
            ..RetryPolicy::default()
        },
        FaultInjector::policy,
    );
    let heartbeat = AtomicU64::new(0);
    let watchdog_stop = AtomicBool::new(false);
    let stalls = AtomicU64::new(0);
    // Spare permits extension workers borrow so a lone big pair at the
    // tail of a run fans its anchor extensions across idle capacity.
    let thread_grant = ThreadGrant::new(threads.saturating_sub(1));

    let scope_out = crossbeam::thread::scope(|scope| {
        // --- Stall watchdog --------------------------------------------
        if options.stall_timeout_ms > 0 {
            let (filter_q, extend_q, done_q) = (&filter_q, &extend_q, &done_q);
            let (watchdog_stop, heartbeat, stalls) = (&watchdog_stop, &heartbeat, &stalls);
            let timeout_ms = options.stall_timeout_ms;
            scope.spawn(move |_| {
                supervise::watch_heartbeat(watchdog_stop, heartbeat, timeout_ms, || {
                    stalls.fetch_add(1, Ordering::Relaxed);
                    if let Some(inj) = injector {
                        inj.request_abort();
                    }
                    filter_q.close();
                    extend_q.close();
                    done_q.close();
                });
            });
        }
        // --- Seeding producer ------------------------------------------
        {
            let (filter_q, extend_q, done_q) = (&filter_q, &extend_q, &done_q);
            let (seed_meter, table_build_ns) = (&seed_meter, &table_build_ns);
            let (resumed_flags, heartbeat) = (&resumed_flags, &heartbeat);
            scope.spawn(move |_| {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    produce(
                        params,
                        tchroms,
                        qchroms,
                        resumed_flags,
                        cells,
                        filter_q,
                        extend_q,
                        done_q,
                        seed_meter,
                        table_build_ns,
                        heartbeat,
                        &retry_policy,
                        threads,
                        obs,
                        tables,
                    )
                }));
                // Whatever happened, release the filter pool.
                filter_q.close();
            });
        }

        // --- Filter worker pool ----------------------------------------
        for _ in 0..threads {
            let (filter_q, extend_q) = (&filter_q, &extend_q);
            let (filter_meter, filter_alive) = (&filter_meter, &filter_alive);
            let heartbeat = &heartbeat;
            scope.spawn(move |_| {
                let _guard = PoolGuard {
                    alive: filter_alive,
                    downstream: extend_q,
                };
                let mut wait_buf = obs.buffer();
                loop {
                    let wait_timer = wait_buf.start();
                    let wait = Instant::now();
                    let Some(task) = filter_q.pop() else { break };
                    filter_meter.add_idle(wait.elapsed());
                    wait_buf.finish_for_pair(
                        wait_timer,
                        SpanName::QueueWait,
                        task.pair_id as u64,
                        STRAND_NA,
                        QUEUE_FILTER_POP,
                        0,
                        0,
                    );
                    let pair_obs = obs.with_pair(task.pair_id as u64);
                    let result = match gate_queue(
                        injector,
                        &retry_policy,
                        Hook::QueuePop,
                        task.pair_id as u64,
                        &pair_obs,
                    ) {
                        Ok(()) => {
                            let busy = Instant::now();
                            let result = run_filter_batch(params, &task, pair_obs);
                            filter_meter.add_busy(busy.elapsed());
                            result
                        }
                        // A queue fault that survives its retry budget
                        // fails the batch (and, downstream, the pair).
                        Err(error) => BatchResult {
                            anchors: Vec::new(),
                            processed: 0,
                            items: task.hits.len() as u64,
                            failed: Some(format!("queue.pop fault: {error}")),
                            busy: Duration::ZERO,
                            cells: 0,
                        },
                    };
                    filter_meter.add_items(result.processed);
                    filter_meter.add_cells(result.cells);
                    deposit(cells, extend_q, &task, result);
                    heartbeat.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // --- Extension worker pool -------------------------------------
        for _ in 0..threads {
            let (extend_q, done_q) = (&extend_q, &done_q);
            let (ext_meter, ext_alive) = (&ext_meter, &ext_alive);
            let (heartbeat, thread_grant) = (&heartbeat, &thread_grant);
            scope.spawn(move |_| {
                let _guard = PoolGuard {
                    alive: ext_alive,
                    downstream: done_q,
                };
                let mut wait_buf = obs.buffer();
                loop {
                    let wait_timer = wait_buf.start();
                    let wait = Instant::now();
                    let Some(job) = extend_q.pop() else { break };
                    ext_meter.add_idle(wait.elapsed());
                    wait_buf.finish_for_pair(
                        wait_timer,
                        SpanName::QueueWait,
                        job.pair_id as u64,
                        STRAND_NA,
                        QUEUE_EXTEND_POP,
                        0,
                        0,
                    );
                    let pair_id = job.pair_id;
                    let pair_obs = obs.with_pair(pair_id as u64);
                    let gate = gate_queue(
                        injector,
                        &retry_policy,
                        Hook::QueuePop,
                        pair_id as u64,
                        &pair_obs,
                    );
                    // A pair whose retry budget an earlier stage already
                    // exhausted fails here instead of burning extension
                    // work — the same `Failed` the other executors reach
                    // through their pair-level panic containment.
                    let result = match gate {
                        Err(error) => Err(format!("queue.pop fault: {error}")),
                        Ok(()) if injector.is_some_and(|inj| inj.is_poisoned(pair_id as u64)) => {
                            Err(format!("injected fault: pair {pair_id}: retries exhausted"))
                        }
                        Ok(()) => {
                            let busy = Instant::now();
                            // Borrow idle capacity for this pair's anchor
                            // extensions; released win or lose, so a
                            // panicking pair never leaks permits.
                            let extra = thread_grant.acquire(threads.saturating_sub(1));
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                extend_pair(params, job, 1 + extra, pair_obs)
                            }));
                            thread_grant.release(extra);
                            ext_meter.add_busy(busy.elapsed());
                            result.map_err(|payload| panic_message(payload.as_ref()))
                        }
                    };
                    let done = match result {
                        Ok(report) => {
                            ext_meter.add_items(report.counters.anchors_passed);
                            ext_meter.add_cells(report.workload.extension_cells);
                            PairDone {
                                pair_id,
                                result: Ok(report),
                            }
                        }
                        Err(error) => PairDone {
                            pair_id,
                            result: Err(error),
                        },
                    };
                    heartbeat.fetch_add(1, Ordering::Relaxed);
                    if done_q.push(done).is_err() {
                        break;
                    }
                }
            });
        }

        // --- Collector (this thread): journal + gather -----------------
        let mut slots: Vec<Option<Result<WgaReport, String>>> = vec![None; npairs];
        let mut journal_err: Option<WgaError> = None;
        let mut collector_buf = obs.buffer();
        loop {
            let wait_timer = collector_buf.start();
            let Some(mut done) = done_q.pop() else { break };
            collector_buf.finish_for_pair(
                wait_timer,
                SpanName::QueueWait,
                done.pair_id as u64,
                STRAND_NA,
                QUEUE_DONE_POP,
                0,
                0,
            );
            heartbeat.fetch_add(1, Ordering::Relaxed);
            obs.add(Counter::PairsDone, 1);
            match &mut done.result {
                Ok(report) => {
                    // Fold the pair's fault accounting into its counters
                    // before the record is journaled — the same freeze
                    // point the barrier executor uses, so a resumed run
                    // replays the same numbers.
                    if let Some(inj) = injector {
                        let faults = inj.take_pair(done.pair_id as u64);
                        report.counters.faults_injected += faults.injected;
                        report.counters.retries += faults.retries;
                    }
                    if journal_err.is_none() {
                        if let Some(j) = journal.as_mut() {
                            let (ti, qi) = (done.pair_id / qn, done.pair_id % qn);
                            let pair_obs = obs.with_pair(done.pair_id as u64);
                            let ckpt_timer = collector_buf.start();
                            let append = append_supervised(
                                j,
                                &PairRecord {
                                    target_chrom: tchroms[ti].name.clone(),
                                    query_chrom: qchroms[qi].name.clone(),
                                    outcome: report.outcome(),
                                    workload: report.workload,
                                    timings: report.timings,
                                    counters: report.counters,
                                    alignments: report.alignments.clone(),
                                },
                                &retry_policy,
                                injector,
                                &pair_obs,
                            );
                            collector_buf.finish_for_pair(
                                ckpt_timer,
                                SpanName::Checkpoint,
                                done.pair_id as u64,
                                STRAND_NA,
                                0,
                                1,
                                0,
                            );
                            if let Err(e) = append {
                                // The journal is broken: stop feeding the
                                // pipeline, drain what's in flight, and
                                // surface the error after the scope ends.
                                journal_err = Some(e);
                                filter_q.close();
                                extend_q.close();
                            }
                        }
                    }
                }
                Err(_) => {
                    // Failed pairs are not journaled; drop their per-pair
                    // fault accounting (run totals keep it).
                    if let Some(inj) = injector {
                        let _ = inj.take_pair(done.pair_id as u64);
                    }
                }
            }
            slots[done.pair_id] = Some(done.result);
        }
        collector_buf.flush();
        watchdog_stop.store(true, Ordering::Relaxed);
        (slots, journal_err)
    });
    let (mut slots, journal_err) = match scope_out {
        Ok(v) => v,
        // A panic escaped every containment layer — an executor bug, not
        // a pair failure; surface it like the barrier executor would.
        Err(payload) => std::panic::resume_unwind(payload),
    };

    if let Some(e) = journal_err {
        return Err(e);
    }

    // --- Deterministic assembly in canonical pair order -----------------
    let mut out = AssemblyReport::default();
    out.timings.seeding += Duration::from_nanos(table_build_ns.load(Ordering::Relaxed));
    for (pair_id, record) in resumed.iter_mut().enumerate() {
        let (ti, qi) = (pair_id / qn, pair_id % qn);
        let (tname, qname) = (&tchroms[ti].name, &qchroms[qi].name);
        let outcome = if let Some(record) = record.take() {
            out.resumed_pairs += 1;
            out.workload.merge(&record.workload);
            out.timings.merge(&record.timings);
            out.counters.merge(&record.counters);
            out.alignments
                .extend(record.alignments.into_iter().map(|aligned| LocatedAlignment {
                    target_chrom: tname.clone(),
                    query_chrom: qname.clone(),
                    aligned,
                }));
            record.outcome
        } else {
            match slots[pair_id].take() {
                Some(Ok(report)) => {
                    let outcome = report.outcome();
                    out.workload.merge(&report.workload);
                    out.timings.merge(&report.timings);
                    out.counters.merge(&report.counters);
                    out.alignments
                        .extend(report.alignments.into_iter().map(|aligned| LocatedAlignment {
                            target_chrom: tname.clone(),
                            query_chrom: qname.clone(),
                            aligned,
                        }));
                    outcome
                }
                Some(Err(error)) => RunOutcome::Failed { error },
                None => RunOutcome::Failed {
                    error: if stalls.load(Ordering::Relaxed) > 0 {
                        format!(
                            "pair stalled: no progress for {}ms; aborted by watchdog",
                            options.stall_timeout_ms
                        )
                    } else {
                        "pair dropped: dataflow run aborted".to_string()
                    },
                },
            }
        };
        out.pairs.push(PairOutcome {
            target_chrom: tname.clone(),
            query_chrom: qname.clone(),
            outcome,
        });
    }
    out.alignments
        .sort_by_key(|a| std::cmp::Reverse(a.aligned.alignment.score));
    let stalls_detected = stalls.load(Ordering::Relaxed);
    let (faults_injected, retries) = injector.map_or((0, 0), FaultInjector::totals);
    out.counters.stalls_detected += stalls_detected;
    out.stage_metrics = Some(ExecutorMetrics {
        executor: ExecutorKind::Dataflow,
        threads,
        queue_depth,
        // The producer thread drives seeding, but since intra-pair
        // sharding the table build and D-SOFT walk fan out over the
        // whole pool.
        seeding: seed_meter.snapshot(threads, 0),
        filtering: filter_meter.snapshot(threads, filter_q.max_occupancy()),
        extension: ext_meter.snapshot(threads, extend_q.max_occupancy()),
        faults_injected,
        retries,
        stalls_detected,
        spec_discard: out.counters.spec_discard,
    });
    Ok(out)
}

/// The seeding producer: dispatches pairs smallest-remaining-work-first
/// (ties broken by pair id, so uniform matrices keep the old FIFO
/// walk), plans both strands of each non-resumed pair under panic
/// isolation, registers the pair's cell and feeds tile batches into
/// `filter_q` (blocking on backpressure). Dispatch order never reaches
/// canonical output: the collector assembles results in pair-id order,
/// and fault occurrences are counted per `(hook, pair)`.
#[allow(clippy::too_many_arguments)]
fn produce<'a>(
    params: &WgaParams,
    tchroms: &'a [genome::assembly::Chromosome],
    qchroms: &'a [genome::assembly::Chromosome],
    resumed_flags: &[bool],
    cells: &[Mutex<Option<PairJob<'a>>>],
    filter_q: &BoundedQueue<FilterTask<'a>>,
    extend_q: &BoundedQueue<PairJob<'a>>,
    done_q: &BoundedQueue<PairDone>,
    seed_meter: &StageMeter,
    table_build_ns: &AtomicU64,
    heartbeat: &AtomicU64,
    retry_policy: &RetryPolicy,
    threads: usize,
    obs: Obs<'_>,
    tables: Option<&SeedTableFn<'_>>,
) {
    let qn = qchroms.len();
    let injector = obs.fault();

    // Smallest pairs drain first so the long tail of one big pair
    // overlaps the rest of the matrix instead of serialising ahead of
    // it (the work estimate is the bases on both sides — every pipeline
    // stage scales with it).
    let mut order: Vec<usize> = (0..tchroms.len() * qn)
        .filter(|&pair_id| !resumed_flags[pair_id])
        .collect();
    order.sort_by_key(|&pair_id| {
        let estimate =
            tchroms[pair_id / qn].sequence.len() + qchroms[pair_id % qn].sequence.len();
        (estimate, pair_id)
    });

    // A target row's seed table lives from the row's first dispatched
    // pair to its last, then drops — built lazily (a fully-journaled
    // row never builds), at most once per run.
    let mut row_remaining: Vec<usize> = vec![0; tchroms.len()];
    for &pair_id in &order {
        row_remaining[pair_id / qn] += 1;
    }
    let mut row_tables: Vec<Option<Arc<SeedTable>>> = vec![None; tchroms.len()];
    let mut row_failed: Vec<Option<String>> = vec![None; tchroms.len()];

    for pair_id in order {
        let ti = pair_id / qn;
        let qi = pair_id % qn;
        let tchrom = &tchroms[ti];
        let qchrom = &qchroms[qi];
        row_remaining[ti] -= 1;
        let row_done = row_remaining[ti] == 0;

        'pair: {
            if row_tables[ti].is_none() && row_failed[ti].is_none() {
                let busy = Instant::now();
                if let Some(provider) = tables {
                    // Shared-index mode: the provider owns build timing
                    // and span accounting (a hit here may be a cache
                    // lookup, not a build).
                    match catch_unwind(AssertUnwindSafe(|| provider(ti))) {
                        Ok(built) => {
                            row_tables[ti] = Some(built);
                            seed_meter.add_busy(busy.elapsed());
                        }
                        Err(payload) => {
                            row_failed[ti] = Some(panic_message(payload.as_ref()));
                        }
                    }
                } else {
                    let mut buf = obs.with_pair(pair_id as u64).buffer();
                    let table_timer = buf.start();
                    match catch_unwind(AssertUnwindSafe(|| {
                        sharded_seed_table(params, &tchrom.sequence, threads)
                    })) {
                        Ok((built, build_time)) => {
                            row_tables[ti] = Some(Arc::new(built));
                            table_build_ns
                                .fetch_add(build_time.as_nanos() as u64, Ordering::Relaxed);
                            seed_meter.add_busy(busy.elapsed());
                            buf.finish(
                                table_timer,
                                SpanName::SeedTable,
                                STRAND_NA,
                                ti as u64,
                                1,
                                tchrom.sequence.len() as u64,
                            );
                        }
                        Err(payload) => {
                            row_failed[ti] = Some(panic_message(payload.as_ref()));
                        }
                    }
                }
            }

            if let Some(message) = &row_failed[ti] {
                let done = PairDone {
                    pair_id,
                    result: Err(format!("seed table build panicked: {message}")),
                };
                if done_q.push(done).is_err() {
                    return;
                }
                break 'pair;
            }
            let Some(table) = row_tables[ti].as_ref() else {
                let done = PairDone {
                    pair_id,
                    result: Err("seed table missing after build".into()),
                };
                if done_q.push(done).is_err() {
                    return;
                }
                break 'pair;
            };

            let pair_start = Instant::now();
            let busy = Instant::now();
            let planned = catch_unwind(AssertUnwindSafe(|| {
                plan_pair(
                    params,
                    table,
                    &tchrom.sequence,
                    &qchrom.sequence,
                    seed_meter,
                    threads,
                    obs.with_pair(pair_id as u64),
                )
            }));
            seed_meter.add_busy(busy.elapsed());
            heartbeat.fetch_add(1, Ordering::Relaxed);
            let lanes = match planned {
                Ok(lanes) => lanes,
                Err(payload) => {
                    let done = PairDone {
                        pair_id,
                        result: Err(panic_message(payload.as_ref())),
                    };
                    if done_q.push(done).is_err() {
                        return;
                    }
                    break 'pair;
                }
            };

            // Materialise the job and its tasks *before* registration, so
            // a worker depositing the last batch always finds complete
            // batch counts.
            let mut tasks: Vec<FilterTask<'a>> = Vec::new();
            let mut job_lanes: Vec<Lane<'a>> = Vec::with_capacity(lanes.len());
            for (lane_idx, lane) in lanes.into_iter().enumerate() {
                let batch_count = lane.hits.len().div_ceil(FILTER_BATCH_TILES);
                for (batch_idx, chunk) in lane.hits.chunks(FILTER_BATCH_TILES).enumerate() {
                    tasks.push(FilterTask {
                        pair_id,
                        lane_idx,
                        batch_idx,
                        hits: chunk.to_vec(),
                        ctx: Arc::clone(&lane.ctx),
                        target: &tchrom.sequence,
                        query: lane.query.clone(),
                        pair_start,
                    });
                }
                let mut batches = Vec::new();
                batches.resize_with(batch_count, || None);
                job_lanes.push(Lane {
                    strand: lane.strand,
                    query: lane.query,
                    seeds_queried: lane.seeds_queried,
                    raw_hits: lane.raw_hits,
                    seed_time: lane.seed_time,
                    ctx_time: lane.ctx_time,
                    clamp_events: lane.clamp_events,
                    batches,
                    deposited: 0,
                });
            }
            let job = PairJob {
                pair_id,
                pair_start,
                target: &tchrom.sequence,
                lanes: job_lanes,
            };
            if tasks.is_empty() {
                // No hits anywhere: nothing for the filter pool, hand the
                // pair straight to extension (it still carries seeding
                // counters and clamp events).
                if extend_q.push(job).is_err() {
                    return;
                }
                break 'pair;
            }
            *cells[pair_id].lock() = Some(job);
            for task in tasks {
                if let Err(error) = gate_queue(
                    injector,
                    retry_policy,
                    Hook::QueuePush,
                    pair_id as u64,
                    &obs.with_pair(pair_id as u64),
                ) {
                    // The push fault survived its retry budget: cancel
                    // the pair (workers find its cell empty and drop
                    // their deposits) and fail it through `done_q`.
                    *cells[pair_id].lock() = None;
                    let done = PairDone {
                        pair_id,
                        result: Err(format!("queue.push fault: {error}")),
                    };
                    if done_q.push(done).is_err() {
                        return;
                    }
                    break;
                }
                let mut wait_buf = obs.buffer();
                let wait_timer = wait_buf.start();
                let wait = Instant::now();
                if filter_q.push(task).is_err() {
                    return; // shutdown in progress (journal failure)
                }
                seed_meter.add_idle(wait.elapsed());
                wait_buf.finish_for_pair(
                    wait_timer,
                    SpanName::QueueWait,
                    pair_id as u64,
                    STRAND_NA,
                    QUEUE_SEED_PUSH,
                    0,
                    0,
                );
                heartbeat.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Row finished: release its table before moving to the next
        // dispatched pair, bounding live tables by the number of
        // in-progress rows (one, since dispatch is sequential).
        if row_done {
            row_tables[ti] = None;
        }
    }
}

/// Supervised chaos gate on a queue operation: injected errors are
/// retried with the run's backoff policy (counted into the injector's
/// totals), injected panics are contained to an error, and the failure
/// that survives the budget is returned for the caller to escalate.
fn gate_queue(
    injector: Option<&FaultInjector>,
    policy: &RetryPolicy,
    hook: Hook,
    pair: u64,
    obs: &Obs<'_>,
) -> Result<(), String> {
    let Some(inj) = injector else {
        return Ok(());
    };
    let site = (hook.code() << 32) | (pair & 0xFFFF_FFFF);
    supervise::retry_io(
        policy,
        site,
        |_| inj.count_retry(pair),
        || match catch_unwind(AssertUnwindSafe(|| inj.gate_io(hook, pair, Some(obs)))) {
            Ok(result) => result,
            Err(payload) => Err(WgaError::io(
                hook.as_str(),
                std::io::Error::other(panic_message(payload.as_ref())),
            )),
        },
    )
    .map_err(|e| e.to_string())
}

/// A planned (pair, strand) stream before task slicing.
struct PlannedLane<'a> {
    strand: Strand,
    query: StrandSeq<'a>,
    ctx: Arc<FilterContext>,
    hits: Vec<SeedHit>,
    seeds_queried: u64,
    raw_hits: u64,
    seed_time: Duration,
    ctx_time: Duration,
    clamp_events: Vec<RunEvent>,
}

/// Seeds and clamps both strands of one pair. The reverse strand's tile
/// clamp charges the forward strand's *planned* tiles (see module docs
/// for the single divergence this implies).
fn plan_pair<'a>(
    params: &WgaParams,
    table: &SeedTable,
    target: &'a Sequence,
    query: &'a Sequence,
    seed_meter: &StageMeter,
    threads: usize,
    obs: Obs<'_>,
) -> Vec<PlannedLane<'a>> {
    let mut lanes = Vec::with_capacity(if params.both_strands { 2 } else { 1 });
    let fwd = plan_lane(
        params,
        table,
        target,
        StrandSeq::Forward(query),
        Strand::Forward,
        0,
        seed_meter,
        threads,
        obs,
    );
    let fwd_tiles = fwd.hits.len() as u64;
    lanes.push(fwd);
    if params.both_strands {
        let rc = Arc::new(query.reverse_complement());
        lanes.push(plan_lane(
            params,
            table,
            target,
            StrandSeq::Reverse(rc),
            Strand::Reverse,
            fwd_tiles,
            seed_meter,
            threads,
            obs,
        ));
    }
    lanes
}

#[allow(clippy::too_many_arguments)]
fn plan_lane<'a>(
    params: &WgaParams,
    table: &SeedTable,
    target: &'a Sequence,
    query: StrandSeq<'a>,
    strand: Strand,
    tiles_planned: u64,
    seed_meter: &StageMeter,
    threads: usize,
    obs: Obs<'_>,
) -> PlannedLane<'a> {
    let mut buf = obs.buffer();
    // Chaos hook: one `filter.batch` gate per (pair, strand) stream,
    // planned in strand order — the same occurrence indices the serial
    // and barrier drivers consume, so a plan hits every executor at the
    // same logical point. The producer's `catch_unwind` contains the
    // escalation panic, failing just this pair.
    obs.fault_gate(Hook::FilterBatch);
    let seed_timer = buf.start();
    let seed_start = Instant::now();
    let seeding = sharded_dsoft(table, query.seq(), &params.dsoft, params.shard_bases, threads);
    let seed_time = seed_start.elapsed();
    let clamp = clamp_hit_count(params, seeding.hits.len(), tiles_planned);
    let mut hits = seeding.hits;
    hits.truncate(clamp.take);
    buf.finish(
        seed_timer,
        SpanName::Seed,
        strand_code(strand),
        0,
        hits.len() as u64,
        seeding.seeds_queried,
    );
    buf.flush();
    seed_meter.add_items(hits.len() as u64);
    seed_meter.add_cells(seeding.seeds_queried);
    let ctx_start = Instant::now();
    let ctx = Arc::new(FilterContext::new(params, target, query.seq()));
    PlannedLane {
        strand,
        query,
        ctx,
        hits,
        seeds_queried: seeding.seeds_queried,
        raw_hits: seeding.raw_hits,
        seed_time,
        ctx_time: ctx_start.elapsed(),
        clamp_events: clamp.events,
    }
}

/// Runs one batch with the same containment as the barrier driver: the
/// batch executes under `catch_unwind`, a panicked batch gets one serial
/// retry, and a second panic yields a failed result (recorded later as
/// [`RunEvent::BatchFailed`]) instead of killing the pair.
fn run_filter_batch(params: &WgaParams, task: &FilterTask<'_>, obs: Obs<'_>) -> BatchResult {
    match try_filter_batch(params, task, obs) {
        Ok(result) => result,
        Err(_first) => match try_filter_batch(params, task, obs) {
            Ok(result) => result,
            Err(message) => BatchResult {
                anchors: Vec::new(),
                processed: 0,
                items: task.hits.len() as u64,
                failed: Some(message),
                busy: Duration::ZERO,
                cells: 0,
            },
        },
    }
}

fn try_filter_batch(
    params: &WgaParams,
    task: &FilterTask<'_>,
    obs: Obs<'_>,
) -> Result<BatchResult, String> {
    let start = Instant::now();
    catch_unwind(AssertUnwindSafe(|| {
        let mut buf = obs.buffer();
        let batch_timer = buf.start();
        let mut engine = task.ctx.engine();
        let mut anchors = Vec::new();
        let mut processed = 0u64;
        let mut cells = 0u64;
        for &hit in &task.hits {
            if params.budget.deadline_exceeded(task.pair_start) {
                break;
            }
            #[cfg(test)]
            poison_check(hit);
            let tile_timer = obs.timer();
            let outcome = engine.filter_hit(params, task.target, task.query.seq(), hit);
            obs.filter_tile(&tile_timer, outcome.cells);
            cells += outcome.cells;
            if let Some(anchor) = outcome.anchor {
                anchors.push(anchor);
            }
            processed += 1;
        }
        buf.finish(
            batch_timer,
            SpanName::FilterBatch,
            if task.lane_idx == 0 {
                crate::obs::STRAND_FWD
            } else {
                crate::obs::STRAND_REV
            },
            task.batch_idx as u64,
            processed,
            cells,
        );
        BatchResult {
            anchors,
            processed,
            items: task.hits.len() as u64,
            failed: None,
            busy: start.elapsed(),
            cells,
        }
    }))
    .map_err(|payload| panic_message(payload.as_ref()))
}

/// Test-only fault injection, mirroring the barrier driver's: a hit at
/// `usize::MAX` (unreachable from real seeding) panics in the worker.
#[cfg(test)]
fn poison_check(hit: SeedHit) {
    if hit.target_pos == usize::MAX {
        panic!("poisoned filter hit");
    }
}

/// Files one batch result into its pair's cell; the worker that
/// completes the pair's last outstanding batch promotes the job to the
/// extension queue.
fn deposit<'a>(
    cells: &[Mutex<Option<PairJob<'a>>>],
    extend_q: &BoundedQueue<PairJob<'a>>,
    task: &FilterTask<'a>,
    result: BatchResult,
) {
    let mut slot = cells[task.pair_id].lock();
    let Some(job) = slot.as_mut() else {
        return; // pair was cancelled by a shutdown
    };
    let lane = &mut job.lanes[task.lane_idx];
    lane.batches[task.batch_idx] = Some(result);
    lane.deposited += 1;
    let complete = job.lanes.iter().all(|l| l.deposited == l.batches.len());
    if complete {
        // The slot is still `Some`: we just deposited into it above.
        if let Some(job) = slot.take() {
            drop(slot);
            // Err only while a shutdown is racing us; the pair is then
            // reported as dropped by the final assembly.
            let _ = extend_q.push(job);
        }
    }
}

/// The extension stage of one pair: reassembles each lane's anchors in
/// hit order from the deposited batches, replays the barrier executor's
/// event/counter accounting, and runs the anchor-absorption extension
/// per lane — with `lane_threads - 1` speculative helpers when the
/// worker borrowed spare permits (the commit order stays serial, so
/// output is invariant to the grant).
fn extend_pair(
    params: &WgaParams,
    mut job: PairJob<'_>,
    lane_threads: usize,
    obs: Obs<'_>,
) -> WgaReport {
    let mut report = WgaReport::default();
    let target = job.target;
    for lane in &mut job.lanes {
        report.timings.seeding += lane.seed_time;
        report.workload.seeds += lane.seeds_queried;
        report.counters.raw_seed_hits += lane.raw_hits;
        report.events.append(&mut lane.clamp_events);

        let mut anchors: Vec<Anchor> = Vec::new();
        let mut deadline_hit = false;
        let mut filter_time = lane.ctx_time;
        for (idx, slot) in lane.batches.iter_mut().enumerate() {
            let Some(batch) = slot.take() else {
                // Every batch is deposited before a job is dispatched;
                // an empty slot means accounting went wrong, so surface
                // it as a failed batch instead of crashing the worker.
                report.events.push(RunEvent::BatchFailed {
                    stage: StageKind::Filtering,
                    batch: idx,
                    items: 0,
                    message: "batch missing at extension".into(),
                });
                continue;
            };
            match batch.failed {
                Some(message) => report.events.push(RunEvent::BatchFailed {
                    stage: StageKind::Filtering,
                    batch: idx,
                    items: batch.items,
                    message,
                }),
                None => {
                    report.workload.filter_tiles += batch.processed;
                    report.counters.hits_filtered += batch.processed;
                    report.counters.filter_cells += batch.cells;
                    if batch.processed < batch.items {
                        deadline_hit = true;
                    }
                    filter_time += batch.busy;
                    anchors.extend(batch.anchors);
                }
            }
        }
        if deadline_hit {
            report
                .events
                .push(deadline_event(&params.budget, StageKind::Filtering, job.pair_start));
        }
        report.timings.filtering += filter_time;
        report.counters.anchors_passed += anchors.len() as u64;
        extend_anchors_sharded(
            params,
            target,
            lane.query.seq(),
            lane.strand,
            anchors,
            job.pair_start,
            &mut report,
            obs,
            lane_threads,
        );
    }
    report
        .alignments
        .sort_by_key(|a| std::cmp::Reverse(a.alignment.score));
    report
}
