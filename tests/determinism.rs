//! Determinism and parallel-equivalence integration tests.

use darwin_wga::core::{config::WgaParams, parallel::run_parallel, pipeline::WgaPipeline};
use darwin_wga::genome::evolve::{EvolutionParams, SyntheticPair};
use rand::SeedableRng;

fn pair(seed: u64) -> SyntheticPair {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SyntheticPair::generate(30_000, &EvolutionParams::at_distance(0.25), &mut rng)
}

#[test]
fn pipeline_is_deterministic() {
    let pair = pair(5);
    let a = WgaPipeline::new(WgaParams::darwin_wga())
        .run(&pair.target.sequence, &pair.query.sequence);
    let b = WgaPipeline::new(WgaParams::darwin_wga())
        .run(&pair.target.sequence, &pair.query.sequence);
    assert_eq!(a.alignments, b.alignments);
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn parallel_filtering_matches_serial_exactly() {
    let pair = pair(6);
    let params = WgaParams::darwin_wga();
    let serial = WgaPipeline::new(params.clone()).run(&pair.target.sequence, &pair.query.sequence);
    for threads in [2usize, 3, 8] {
        let par = run_parallel(&params, &pair.target.sequence, &pair.query.sequence, threads);
        assert_eq!(serial.alignments, par.alignments, "threads={threads}");
        assert_eq!(serial.workload, par.workload);
    }
}

#[test]
fn generation_is_seed_stable_across_calls() {
    let a = pair(7);
    let b = pair(7);
    assert_eq!(a.target.sequence, b.target.sequence);
    assert_eq!(a.query.sequence, b.query.sequence);
    assert_eq!(a.ancestral_conserved, b.ancestral_conserved);
}
