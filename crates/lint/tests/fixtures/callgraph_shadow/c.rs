//! Shadowed-name fixture, file 3 of 3: `dispatch` has no same-file
//! `normalize`, so its call fans out to both definitions.

pub fn dispatch() {
    normalize();
}
