//! Report rendering: a human summary for the terminal and the
//! integer-only `lint_report.json` CI consumes (same idiom as the
//! `BENCH_*.json` files — string names, integer counters, nothing
//! floating).

use crate::{Analysis, SiteStatus};

/// Human-readable report. Violations are listed `file:line [rule]`,
/// one per line, so terminals and editors can jump to them.
pub fn human(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wga-lint: {} files scanned, rules: {}\n",
        a.files_scanned,
        a.enabled.join(", ")
    ));
    for rule in &a.enabled {
        let s = a.stats(rule);
        match *rule {
            "panics" => {
                out.push_str(&format!(
                    "  panics      {} found, {} waived, {} baselined, {} violations\n",
                    s.found, s.waived, s.baselined, s.violations
                ));
                for (dir, found, allowed) in &a.baseline_dirs {
                    out.push_str(&format!(
                        "              baseline {}: {} found / {} allowed\n",
                        dir, found, allowed
                    ));
                }
            }
            "deadlock" => {
                out.push_str(&format!(
                    "  deadlock    {} queues, {} edges, {} cycles, {} found, {} waived, {} violations\n",
                    a.queues, a.edges, a.cycles, s.found, s.waived, s.violations
                ));
            }
            "hot-loop" => {
                out.push_str(&format!(
                    "  hot-loop    {} tagged files, {} found, {} waived, {} violations\n",
                    a.hot_files, s.found, s.waived, s.violations
                ));
            }
            _ => {
                out.push_str(&format!(
                    "  {:<11} {} found, {} waived, {} violations\n",
                    rule, s.found, s.waived, s.violations
                ));
            }
        }
    }
    let violations: Vec<_> = a
        .sites
        .iter()
        .filter(|s| s.status == SiteStatus::Violation)
        .collect();
    if violations.is_empty() {
        out.push_str("OK: no non-waived violations\n");
    } else {
        out.push_str(&format!("VIOLATIONS ({}):\n", violations.len()));
        for v in violations {
            out.push_str(&format!("  {}:{} [{}] {}\n", v.file, v.line, v.rule, v.msg));
        }
    }
    out
}

/// `lint_report.json` body: string names, integer counters only.
pub fn json(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"wga-lint\",\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", a.files_scanned));
    let mut total_waived = 0usize;
    let mut total_baselined = 0usize;
    for s in &a.sites {
        match s.status {
            SiteStatus::Waived => total_waived += 1,
            SiteStatus::Baselined => total_baselined += 1,
            SiteStatus::Violation => {}
        }
    }
    out.push_str(&format!("  \"violations\": {},\n", a.total_violations()));
    out.push_str(&format!("  \"waived\": {},\n", total_waived));
    out.push_str(&format!("  \"baselined\": {},\n", total_baselined));
    out.push_str("  \"rules\": {\n");
    for (i, rule) in a.enabled.iter().enumerate() {
        let s = a.stats(rule);
        let comma = if i + 1 == a.enabled.len() { "" } else { "," };
        match *rule {
            "panics" => out.push_str(&format!(
                "    \"panics\": {{\"found\": {}, \"waived\": {}, \"baselined\": {}, \"violations\": {}}}{}\n",
                s.found, s.waived, s.baselined, s.violations, comma
            )),
            "deadlock" => out.push_str(&format!(
                "    \"deadlock\": {{\"queues\": {}, \"edges\": {}, \"cycles\": {}, \"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                a.queues, a.edges, a.cycles, s.found, s.waived, s.violations, comma
            )),
            "hot-loop" => out.push_str(&format!(
                "    \"hot-loop\": {{\"files\": {}, \"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                a.hot_files, s.found, s.waived, s.violations, comma
            )),
            other => out.push_str(&format!(
                "    \"{}\": {{\"found\": {}, \"waived\": {}, \"violations\": {}}}{}\n",
                other, s.found, s.waived, s.violations, comma
            )),
        }
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analysis, Site, SiteStatus};

    fn sample() -> Analysis {
        Analysis {
            files_scanned: 2,
            sites: vec![
                Site {
                    rule: "panics",
                    file: "src/a.rs".into(),
                    line: 3,
                    msg: ".unwrap()".into(),
                    status: SiteStatus::Baselined,
                },
                Site {
                    rule: "unsafe",
                    file: "src/b.rs".into(),
                    line: 9,
                    msg: "unsafe without a // SAFETY: comment".into(),
                    status: SiteStatus::Violation,
                },
            ],
            baseline_dirs: vec![("src".into(), 1, 1)],
            queues: 3,
            edges: 2,
            cycles: 0,
            hot_files: 1,
            enabled: vec!["panics", "determinism", "deadlock", "hot-loop", "unsafe"],
        }
    }

    #[test]
    fn json_is_integer_only() {
        let j = json(&sample());
        assert!(j.contains("\"tool\": \"wga-lint\""));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"queues\": 3"));
        // No float ever sneaks into the report (its own determinism
        // rule would be ashamed).
        assert!(!j.contains('.'), "{}", j.replace("wga-lint", ""));
    }

    #[test]
    fn human_lists_violation_with_location() {
        let h = human(&sample());
        assert!(h.contains("src/b.rs:9 [unsafe]"));
        assert!(h.contains("baseline src: 1 found / 1 allowed"));
        assert!(h.contains("VIOLATIONS (1):"));
    }
}
