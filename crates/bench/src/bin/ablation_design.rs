//! Ablations over Darwin-WGA's design choices (Table II parameters).
//!
//! The paper fixes its parameters (§V-B, Table II) after design-space
//! exploration it does not show. This harness regenerates the trade-off
//! curves behind each choice on one synthetic pair:
//!
//! 1. **BSW band width `B`** — sensitivity vs filter-tile cost;
//! 2. **filter threshold `H_f`** — sensitivity vs anchors passed
//!    (the FPR trade-off of §VI-B);
//! 3. **GACT-X tile size `T_e`** — sensitivity vs extension cells and
//!    traceback memory;
//! 4. **D-SOFT seeding** — transition seeds and band threshold `h` vs
//!    seeds queried and filter workload;
//! 5. **seed pattern** — spaced 12-of-19 vs contiguous 12-mer.
//!
//! Run with: `cargo run --release -p wga-bench --bin ablation_design`
//! Optional args: `[genome_len]` (default 50000).

use align::gactx::TilingParams;
use genome::evolve::SpeciesPair;
use seed::SeedPattern;
use wga_bench::{paper_pair, run_and_measure};
use wga_core::config::{ExtensionStage, FilterStage, WgaParams};

fn main() {
    let genome_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);

    // The dm6-dp4 stand-in: distant enough that filtering choices matter.
    let sp = &SpeciesPair::paper_pairs()[1];
    let pair = paper_pair(sp, genome_len, 4242);
    println!(
        "Design ablations on the {} stand-in ({genome_len} bp, distance {})\n",
        sp.name(),
        sp.distance
    );

    // ------------------------------------------------------------------
    println!("1. BSW band width B (Table II: B = 32)");
    println!("   {:>6} {:>12} {:>12} {:>14}", "B", "matched bp", "anchors", "tile cells (M)");
    for band in [4usize, 8, 16, 32, 64, 128] {
        let mut params = WgaParams::darwin_wga();
        if let FilterStage::Gapped(ref mut f) = params.filter {
            f.band = band;
        }
        let m = run_and_measure(params, &pair);
        // Cells per 320-tile ≈ 320·(2B+1); report the aggregate.
        let cells = m.report.workload.filter_tiles * 320 * (2 * band as u64 + 1);
        println!(
            "   {:>6} {:>12} {:>12} {:>14.1}",
            band,
            m.unique_matched,
            m.report.counters.anchors_passed,
            cells as f64 / 1e6
        );
    }
    println!("   → sensitivity saturates near B=32 while cost keeps doubling.\n");

    // ------------------------------------------------------------------
    println!("2. Filter threshold Hf (Table II: 3000; §VI-B adopts 4000)");
    println!("   {:>6} {:>12} {:>12} {:>12}", "Hf", "matched bp", "anchors", "ext tiles");
    for hf in [2000i64, 3000, 4000, 5000, 7000, 10000] {
        let params = WgaParams::darwin_wga().with_filter_threshold(hf);
        let m = run_and_measure(params, &pair);
        println!(
            "   {:>6} {:>12} {:>12} {:>12}",
            hf,
            m.unique_matched,
            m.report.counters.anchors_passed,
            m.report.workload.extension_tiles
        );
    }
    println!("   → anchors (and noise risk) grow fast below 4000 for little sensitivity.\n");

    // ------------------------------------------------------------------
    println!("3. GACT-X tile size Te (Table II: 1920, overlap 128)");
    println!(
        "   {:>6} {:>12} {:>12} {:>16}",
        "Te", "matched bp", "ext cells(M)", "peak traceback"
    );
    for te in [320usize, 640, 1280, 1920, 3840] {
        let mut params = WgaParams::darwin_wga();
        params.extension = ExtensionStage::GactX(TilingParams {
            tile_size: te,
            overlap: 128.min(te / 4),
            y: 9430,
            edge_traceback: false,
        });
        let m = run_and_measure(params, &pair);
        println!(
            "   {:>6} {:>12} {:>12.1} {:>13} KB",
            te,
            m.unique_matched,
            m.report.workload.extension_cells as f64 / 1e6,
            peak_traceback_kb(&pair, te)
        );
    }
    println!("   → quality is flat once the tile exceeds the Y-band; memory grows linearly.\n");

    // ------------------------------------------------------------------
    println!("4. D-SOFT seeding (defaults: transitions on, h = 1)");
    println!(
        "   {:<26} {:>12} {:>12} {:>12}",
        "variant", "seeds", "filt tiles", "matched bp"
    );
    for (label, transitions, threshold) in [
        ("transitions, h=1", true, 1u32),
        ("no transitions, h=1", false, 1),
        ("transitions, h=2", true, 2),
        ("transitions, h=4", true, 4),
    ] {
        let mut params = WgaParams::darwin_wga();
        params.dsoft.transitions = transitions;
        params.dsoft.threshold = threshold;
        let m = run_and_measure(params, &pair);
        println!(
            "   {:<26} {:>12} {:>12} {:>12}",
            label,
            m.report.workload.seeds,
            m.report.workload.filter_tiles,
            m.unique_matched
        );
    }
    println!("   → transition seeds cost 13x the lookups (§III-B) and buy sensitivity;");
    println!("     raising h sheds filter tiles at a sensitivity price.\n");

    // ------------------------------------------------------------------
    println!("5. Seed pattern (default: spaced 12-of-19)");
    println!("   {:<22} {:>12} {:>12}", "pattern", "filt tiles", "matched bp");
    for (label, pattern) in [
        ("spaced 12-of-19", SeedPattern::lastz_default()),
        ("contiguous 12-mer", SeedPattern::exact(12)),
        ("contiguous 14-mer", SeedPattern::exact(14)),
    ] {
        let mut params = WgaParams::darwin_wga();
        params.seed_pattern = pattern;
        let m = run_and_measure(params, &pair);
        println!(
            "   {:<22} {:>12} {:>12}",
            label,
            m.report.workload.filter_tiles,
            m.unique_matched
        );
    }
    println!("   → the spaced seed finds more than a contiguous seed of equal weight");
    println!("     (mismatches fall into don't-care positions).");
}

/// Peak traceback bytes for the given tile size under the Y=9430 band
/// (analytic: rows × band columns at 4 bits/cell).
fn peak_traceback_kb(_pair: &genome::evolve::SyntheticPair, te: usize) -> u64 {
    let band_cols = (2 * (9430 - 430) / 30 + 64) as u64; // ≈ both gap directions
    (te as u64 * band_cols.min(te as u64) / 2) / 1024
}
