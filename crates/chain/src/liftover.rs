//! Coordinate liftover across alignments.
//!
//! The intro's first use-case for WGA is the "identification and
//! prediction of functional elements" — annotate a region in one species,
//! lift it through the alignment, and study it in the other. This module
//! implements liftover over a set of alignments (typically a chain's
//! members): map a target position or interval to query coordinates.

use align::{AlignOp, Alignment};
use serde::{Deserialize, Serialize};

/// A liftover index over alignments, keyed by target position.
#[derive(Debug, Clone)]
pub struct Liftover<'a> {
    /// Alignments sorted by target start.
    alignments: Vec<&'a Alignment>,
}

/// A lifted interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiftedInterval {
    /// Query start (inclusive).
    pub query_start: usize,
    /// Query end (exclusive).
    pub query_end: usize,
    /// Target bases of the input interval that were actually lifted
    /// (aligned columns only).
    pub lifted_bases: usize,
}

impl<'a> Liftover<'a> {
    /// Builds an index over `alignments`.
    pub fn new<I: IntoIterator<Item = &'a Alignment>>(alignments: I) -> Liftover<'a> {
        let mut alignments: Vec<&Alignment> = alignments.into_iter().collect();
        alignments.sort_by_key(|a| a.target_start);
        Liftover { alignments }
    }

    /// Lifts a single target position to its query position, if aligned.
    ///
    /// # Examples
    ///
    /// ```
    /// use align::{AlignOp, Alignment, Cigar};
    /// use chain::liftover::Liftover;
    ///
    /// let mut c = Cigar::new();
    /// c.push(AlignOp::Match, 5);
    /// c.push(AlignOp::Delete, 2); // target 5..7 unaligned
    /// c.push(AlignOp::Match, 5);
    /// let a = Alignment::new(100, 200, c, 0);
    /// let lift = Liftover::new([&a]);
    /// assert_eq!(lift.lift_position(102), Some(202));
    /// assert_eq!(lift.lift_position(105), None);     // inside the deletion
    /// assert_eq!(lift.lift_position(108), Some(206)); // past the deletion
    /// ```
    pub fn lift_position(&self, target_pos: usize) -> Option<usize> {
        let candidate = self
            .alignments
            .partition_point(|a| a.target_start <= target_pos);
        for a in self.alignments[..candidate].iter().rev() {
            if a.target_end <= target_pos {
                // Overlapping alignments may interleave; keep scanning
                // earlier starts (they can still span `target_pos`).
                continue;
            }
            if let Some(q) = lift_within(a, target_pos) {
                return Some(q);
            }
        }
        None
    }

    /// Lifts an interval: the smallest query interval containing every
    /// lifted position, or `None` when nothing lifts.
    pub fn lift_interval(&self, start: usize, end: usize) -> Option<LiftedInterval> {
        let mut lo: Option<usize> = None;
        let mut hi: Option<usize> = None;
        let mut lifted = 0usize;
        for pos in start..end {
            if let Some(q) = self.lift_position(pos) {
                lifted += 1;
                lo = Some(lo.map_or(q, |v: usize| v.min(q)));
                hi = Some(hi.map_or(q, |v: usize| v.max(q)));
            }
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => Some(LiftedInterval {
                query_start: lo,
                query_end: hi + 1,
                lifted_bases: lifted,
            }),
            _ => None,
        }
    }
}

/// Query position of `target_pos` within one alignment, if it falls on an
/// aligned column.
fn lift_within(a: &Alignment, target_pos: usize) -> Option<usize> {
    if !(a.target_start..a.target_end).contains(&target_pos) {
        return None;
    }
    let (mut t, mut q) = (a.target_start, a.query_start);
    for &(op, count) in a.cigar.runs() {
        match op {
            AlignOp::Match | AlignOp::Subst => {
                if target_pos < t + count as usize {
                    return Some(q + (target_pos - t));
                }
                t += count as usize;
                q += count as usize;
            }
            AlignOp::Delete => {
                if target_pos < t + count as usize {
                    return None; // target-only bases have no query image
                }
                t += count as usize;
            }
            AlignOp::Insert => q += count as usize,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::Cigar;

    fn gapped() -> Alignment {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 10);
        c.push(AlignOp::Insert, 5);
        c.push(AlignOp::Match, 10);
        c.push(AlignOp::Delete, 4);
        c.push(AlignOp::Match, 10);
        Alignment::new(1000, 2000, c, 0)
    }

    #[test]
    fn positions_map_through_gaps() {
        let a = gapped();
        let lift = Liftover::new([&a]);
        assert_eq!(lift.lift_position(1000), Some(2000));
        assert_eq!(lift.lift_position(1009), Some(2009));
        // After the 5-base insertion, query is ahead by 5.
        assert_eq!(lift.lift_position(1010), Some(2015));
        assert_eq!(lift.lift_position(1019), Some(2024));
        // Inside the deletion: no image.
        assert_eq!(lift.lift_position(1020), None);
        assert_eq!(lift.lift_position(1023), None);
        // After the deletion.
        assert_eq!(lift.lift_position(1024), Some(2025));
        // Outside entirely.
        assert_eq!(lift.lift_position(999), None);
        assert_eq!(lift.lift_position(1034), None);
    }

    #[test]
    fn interval_lifting_reports_partial_coverage() {
        let a = gapped();
        let lift = Liftover::new([&a]);
        // Spans the deletion: 6 of 10 bases lift.
        let li = lift.lift_interval(1018, 1028).unwrap();
        assert_eq!(li.lifted_bases, 6);
        assert_eq!(li.query_start, 2023);
        assert_eq!(li.query_end, 2029);
        // Entirely inside the deletion.
        assert_eq!(lift.lift_interval(1020, 1024), None);
    }

    #[test]
    fn multiple_alignments_are_searched() {
        let mut c = Cigar::new();
        c.push(AlignOp::Match, 10);
        let a = Alignment::new(0, 500, c.clone(), 0);
        let b = Alignment::new(100, 900, c.clone(), 0);
        let lift = Liftover::new([&a, &b]);
        assert_eq!(lift.lift_position(5), Some(505));
        assert_eq!(lift.lift_position(105), Some(905));
        assert_eq!(lift.lift_position(50), None);
    }

    #[test]
    fn ground_truth_round_trip() {
        // Lift through a real pipeline alignment and verify against the
        // evolution model's coordinate map.
        use genome::evolve::{EvolutionParams, SyntheticPair};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pair = SyntheticPair::generate(2_000, &EvolutionParams::at_distance(0.1), &mut rng);
        let report = wga_core_free_pipeline(&pair);
        let alignments: Vec<&Alignment> = report.iter().collect();
        let lift = Liftover::new(alignments);
        let truth: std::collections::HashMap<usize, usize> =
            pair.orthologous_pairs().into_iter().collect();
        let (mut agree, mut total) = (0usize, 0usize);
        for (&t, &q) in truth.iter() {
            if let Some(lifted) = lift.lift_position(t) {
                total += 1;
                // Allow small gap-placement ambiguity around indels.
                if lifted.abs_diff(q) <= 3 {
                    agree += 1;
                }
            }
        }
        assert!(total > 1_200, "lifted {total}");
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.97, "agreement {frac}");
    }

    /// Minimal local re-implementation of the pipeline for this test
    /// (chain cannot depend on wga-core without a cycle): exact SW over
    /// the whole pair is fine at this size.
    fn wga_core_free_pipeline(
        pair: &genome::evolve::SyntheticPair,
    ) -> Vec<Alignment> {
        let r = align::sw::smith_waterman(
            pair.target.sequence.as_slice(),
            pair.query.sequence.as_slice(),
            &genome::SubstitutionMatrix::darwin_wga(),
            &genome::GapPenalties::darwin_wga(),
        );
        r.alignment.into_iter().collect()
    }
}
